//! # xplain
//!
//! A from-scratch Rust reproduction of **"Towards Safer Heuristics With
//! XPlain"** (Karimi et al., HotNets 2024): a tool that extends heuristic
//! analyzers so operators can see *all* the regions of the input space
//! where a heuristic underperforms (Type 1), *why* it underperforms there
//! (Type 2), and *which instance properties* make it worse (Type 3).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`lp`] — exact LP/MILP solver (two-phase simplex + branch & bound);
//! * [`stats`] — Wilcoxon signed-rank, DKW bounds, CART trees, rank
//!   correlation;
//! * [`flownet`] — the network-flow DSL, its compiler (with redundancy
//!   elimination), and the Appendix-A `LP -> flow` encoder;
//! * [`domains`] — traffic engineering with Demand Pinning, and vector
//!   bin packing with first-fit/best-fit/FFD plus exact optima;
//! * [`analyzer`] — the MetaOpt-style adversarial-input analyzers (exact
//!   bilevel MILPs and pattern search);
//! * [`core`] — the domain-agnostic XPlain pipeline: subspace
//!   generation, significance checking, explanation heat-maps,
//!   generalization — and the streaming [`core::AnalysisSession`]
//!   (typed event stream, budgets, cancellation, checkpoint/resume;
//!   `run_pipeline` is a thin drain over it);
//! * [`runtime`] — the serving layer: the pluggable [`runtime::Domain`]
//!   registry (Demand Pinning, first-fit, LPT scheduling), the parallel
//!   batch executor over JSONL manifests (whose jobs run sessions, with
//!   per-job budgets and event sinks), the content-addressed result
//!   store (results + session checkpoints), and the `runner` CLI
//!   (`--watch` NDJSON streaming, `--resume`, budget flags);
//! * [`tune`] — the repair loop over the adversarial regression bank:
//!   replay gating (`runner bank replay`) and candidate-based parameter
//!   search (`runner tune`, `POST /v1/tune`) that shrinks a heuristic's
//!   worst-case gap over every banked instance.
//!
//! ## Quickstart
//!
//! ```
//! use xplain::domains::te::{TeProblem, DemandPinning};
//!
//! // The paper's Fig. 1a instance: Demand Pinning underperforms by 100
//! // units (OPT 250 vs DP 150) at the adversarial demand vector.
//! let problem = TeProblem::fig1a();
//! let heuristic = DemandPinning::new(50.0);
//! let gap = heuristic.gap(&problem, &[50.0, 100.0, 100.0]).unwrap();
//! assert!((gap - 100.0).abs() < 1e-6);
//! ```
//!
//! ## Streaming
//!
//! ```no_run
//! use xplain::runtime::{build_session, CancelToken, DomainRegistry, SessionBudgets};
//! use xplain::core::{PipelineConfig, SessionEvent};
//!
//! let registry = DomainRegistry::builtin();
//! let domain = registry.get("sched").unwrap();
//! let mut session = build_session(
//!     domain,
//!     &PipelineConfig::default(),
//!     SessionBudgets { max_analyzer_calls: Some(4), ..Default::default() },
//!     CancelToken::new(),
//!     None, // or a checkpoint to resume
//! )
//! .unwrap();
//! for event in session.by_ref() {
//!     if let SessionEvent::ExplanationReady { index, finding } = &event {
//!         println!("finding #{index}: gap {:.2}", finding.subspace.seed_gap);
//!     }
//! }
//! let checkpoint = session.checkpoint(); // resumable if a budget fired
//! # let _ = checkpoint;
//! ```
//!
//! See `examples/` for the full tour: `quickstart`, `demand_pinning`,
//! `bin_packing`, `lp_to_flow`, `full_pipeline`, and
//! `streaming_session`. To run all of this as a long-lived HTTP
//! service (submit/stream/cancel/resume over the wire), see
//! [`serve`] and the README's "Explanation server" quickstart; to run
//! *several* of those servers as one sharded tier with consistent-hash
//! routing and work stealing, see [`mesh`] and the README's
//! "Mesh" quickstart (`runner mesh --shards N`).

pub use xplain_analyzer as analyzer;
pub use xplain_core as core;
pub use xplain_domains as domains;
pub use xplain_flownet as flownet;
pub use xplain_lp as lp;
pub use xplain_mesh as mesh;
pub use xplain_runtime as runtime;
pub use xplain_serve as serve;
pub use xplain_stats as stats;
pub use xplain_tune as tune;
