//! Cross-crate property tests on the system's core invariants.

use proptest::prelude::*;
use xplain::domains::te::{DemandPinning, TeProblem};
use xplain::domains::vbp::{best_fit, first_fit, first_fit_decreasing, optimal, VbpInstance};
use xplain::flownet::encode_lp::encode;
use xplain::flownet::CompileOptions;
use xplain::lp::{Cmp, LinExpr, Model, Sense, VarType};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DP never beats the optimal benchmark, anywhere in the input box.
    #[test]
    fn dp_gap_is_nonnegative(
        d0 in 0.0f64..100.0,
        d1 in 0.0f64..100.0,
        d2 in 0.0f64..100.0,
        threshold in 0.0f64..100.0,
    ) {
        let problem = TeProblem::fig1a();
        let dp = DemandPinning::new(threshold);
        let gap = dp.gap(&problem, &[d0, d1, d2]).expect("total function");
        prop_assert!(gap >= -1e-6, "negative gap {gap}");
    }

    /// DP allocations are always feasible (capacities, demand limits).
    #[test]
    fn dp_allocations_feasible(
        d0 in 0.0f64..100.0,
        d1 in 0.0f64..100.0,
        d2 in 0.0f64..100.0,
    ) {
        let problem = TeProblem::fig1a();
        let volumes = [d0, d1, d2];
        let alloc = DemandPinning::new(50.0).solve(&problem, &volumes).unwrap();
        prop_assert!(problem.check_allocation(&volumes, &alloc, 1e-6).is_none());
    }

    /// Every packing heuristic is feasible and bracketed by the optimum
    /// and the per-dimension lower bound.
    #[test]
    fn packing_heuristics_bracketed(
        sizes in proptest::collection::vec(0.05f64..0.95, 1..10),
    ) {
        let inst = VbpInstance::one_dim(&sizes);
        let opt = optimal(&inst);
        prop_assert!(opt.bins_used >= inst.lower_bound());
        for p in [first_fit(&inst), best_fit(&inst), first_fit_decreasing(&inst)] {
            prop_assert!(p.check(&inst, 1e-9).is_none());
            prop_assert!(p.bins_used >= opt.bins_used);
            // First-fit's classic guarantee: FF <= 2 * OPT (weak form).
            prop_assert!(p.bins_used <= 2 * opt.bins_used.max(1));
        }
    }

    /// Theorem A.1 on random bounded LPs: the flow encoding preserves the
    /// optimum.
    #[test]
    fn appendix_a_roundtrip_random_lp(
        n in 1usize..4,
        coefs in proptest::collection::vec(0.1f64..3.0, 9),
        rhs in proptest::collection::vec(1.0f64..8.0, 3),
        obj in proptest::collection::vec(0.1f64..4.0, 3),
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 5.0))
            .collect();
        for r in 0..2usize {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                e.add_term(v, coefs[r * 3 + i]);
            }
            m.add_constr(format!("c{r}"), e, Cmp::Le, rhs[r]);
        }
        let mut o = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            o.add_term(v, obj[i]);
        }
        m.set_objective(o);

        let direct = m.solve().expect("bounded");
        let encoded = encode(&m).expect("encodable");
        let (flow_obj, values) = encoded.solve(&CompileOptions::default()).expect("solvable");
        prop_assert!((direct.objective - flow_obj).abs() < 1e-4,
            "direct {} vs flow {}", direct.objective, flow_obj);
        // The recovered assignment must be feasible for the original.
        prop_assert!(m.check_feasible(&values, 1e-4).is_none());
    }

    /// The TE benchmark is monotone: more demand never reduces total flow.
    #[test]
    fn optimal_monotone_in_demand(
        d0 in 0.0f64..90.0,
        d1 in 0.0f64..90.0,
        d2 in 0.0f64..90.0,
        bump in 0.0f64..10.0,
    ) {
        let problem = TeProblem::fig1a();
        let base = problem.optimal(&[d0, d1, d2]).unwrap().total;
        let more = problem.optimal(&[d0 + bump, d1, d2]).unwrap().total;
        prop_assert!(more >= base - 1e-6, "{more} < {base}");
    }

    /// Pinning threshold monotonicity: raising the threshold can only pin
    /// more demands, never fewer.
    #[test]
    fn pinned_set_monotone_in_threshold(
        d in proptest::collection::vec(0.0f64..100.0, 3),
        t1 in 0.0f64..100.0,
        t2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = DemandPinning::new(lo).pinned(&d);
        let p_hi = DemandPinning::new(hi).pinned(&d);
        for k in 0..3 {
            prop_assert!(!p_lo[k] || p_hi[k], "pin lost when threshold rose");
        }
    }
}
