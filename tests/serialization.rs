//! JSON round-trips for every reportable artifact — downstream tooling
//! (dashboards, notebooks) consumes these.

use xplain::analyzer::geometry::{Halfspace, Polytope};
use xplain::core::pipeline::PipelineConfig;
use xplain::core::subspace::SubspaceParams;
use xplain::core::{ExplainerParams, SignificanceParams};
use xplain::domains::sched::SchedInstance;
use xplain::domains::te::TeProblem;
use xplain::domains::vbp::VbpInstance;
use xplain::runtime::{run_domain, FfDomain};

#[test]
fn polytope_roundtrip() {
    let mut p = Polytope::from_box(&[0.0, 1.0], &[2.0, 3.0]);
    p.intersect(Halfspace {
        coeffs: vec![1.0, 1.0],
        rhs: 4.0,
    });
    let json = serde_json::to_string(&p).unwrap();
    let back: Polytope = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
    assert!(back.contains(&[1.0, 2.0], 1e-9));
}

#[test]
fn te_problem_roundtrip() {
    let p = TeProblem::fig1a();
    let json = serde_json::to_string(&p).unwrap();
    let back: TeProblem = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_demands(), 3);
    assert_eq!(back.paths[0].len(), 2);
    // The deserialized problem still solves.
    let opt = back.optimal(&[50.0, 100.0, 100.0]).unwrap();
    assert!((opt.total - 250.0).abs() < 1e-6);
}

#[test]
fn sched_instance_roundtrip() {
    let inst = SchedInstance::lpt_tight(3);
    let json = serde_json::to_string(&inst).unwrap();
    let back: SchedInstance = serde_json::from_str(&json).unwrap();
    assert_eq!(back.machines, 3);
    assert_eq!(back.jobs, inst.jobs);
    assert_eq!(xplain::domains::sched::lpt(&back).makespan, 11.0);
}

#[test]
fn vbp_instance_roundtrip() {
    let inst = VbpInstance::fig2_example();
    let json = serde_json::to_string(&inst).unwrap();
    let back: VbpInstance = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_balls(), 17);
    assert_eq!(xplain::domains::vbp::first_fit(&back).bins_used, 9);
}

#[test]
fn pipeline_result_roundtrip() {
    let config = PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.3,
            dkw_delta: 0.3,
            max_expansions: 4,
            tree_sample_factor: 2,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = run_domain(&FfDomain::small(), &config);
    let json = serde_json::to_string(&result).unwrap();
    // Results are stamped with the current schema version (the store
    // rejects any other version as a cache miss).
    assert_eq!(result.schema_version, xplain::core::PIPELINE_SCHEMA_VERSION);
    assert!(json.contains(&format!(
        "\"schema_version\":{}",
        xplain::core::PIPELINE_SCHEMA_VERSION
    )));
    let back: xplain::core::PipelineResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.schema_version, result.schema_version);
    assert_eq!(back.findings.len(), result.findings.len());
    if let Some(f) = back.findings.first() {
        assert!(f.subspace.seed_gap > 0.0);
        // Polytope membership survives the round trip.
        assert!(f.subspace.contains(&f.subspace.seed));
    }
}

/// Pre-stamp JSON (no `schema_version` field) still deserializes — it
/// reads back as version 0, which consumers treat as stale.
#[test]
fn pipeline_result_without_schema_version_still_parses() {
    let json = r#"{"findings":[],"rejected":1,"analyzer_calls":2,"coverage":null,"oracle_evaluations":3,"wall_time_ms":0,"solver":{"lp_solves":0,"lp_iterations":0,"lp_dual_iterations":0,"lp_refactorizations":0,"lp_warm_hits":0,"lp_cold_starts":0,"bb_nodes":0}}"#;
    let back: xplain::core::PipelineResult = serde_json::from_str(json).unwrap();
    assert_eq!(back.schema_version, 0);
    assert_eq!(back.rejected, 1);
}

/// Session events and checkpoints are part of the serialized surface
/// now: NDJSON consumers (runner --watch) parse events, and checkpoints
/// round-trip through the store.
#[test]
fn session_event_roundtrip() {
    use xplain::core::SessionEvent;
    let event = SessionEvent::AnalyzerProbe {
        call: 2,
        gap: Some(1.5),
        accepted: true,
    };
    let json = serde_json::to_string(&event).unwrap();
    let back: SessionEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(back.kind(), "analyzer_probe");
    let SessionEvent::AnalyzerProbe {
        call,
        gap,
        accepted,
    } = back
    else {
        panic!("wrong variant");
    };
    assert_eq!((call, gap, accepted), (2, Some(1.5), true));
}

#[test]
fn lp_model_roundtrip() {
    use xplain::lp::{Cmp, Model, Sense};
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x");
    m.add_constr("c", x + 0.0, Cmp::Le, 7.0);
    m.set_objective(x + 0.0);
    let json = serde_json::to_string(&m).unwrap();
    let back: Model = serde_json::from_str(&json).unwrap();
    let sol = back.solve().unwrap();
    assert!((sol.objective - 7.0).abs() < 1e-6);
}
