//! Integration tests pinning every paper artifact (the E1–E9 index of
//! DESIGN.md §4) through the public workspace API.

use xplain_bench as bench;

/// E1 — Fig. 1a: the exact table.
#[test]
fn e1_fig1a_table() {
    let r = bench::fig1::run();
    assert_eq!(r.dp_total.round() as i64, 150);
    assert_eq!(r.opt_total.round() as i64, 250);
    // Per-row path choices from the figure.
    assert_eq!(r.rows[0].dp_path, "1-2-3");
    assert_eq!(r.rows[0].opt_path, "1-4-5-3");
}

/// E2 — §2: a 1-bin gap instance for FF with 4 balls / 3 bins, found by
/// the exact Fig. 1c MILP (the paper's sizes are one member of the
/// optimum equivalence class; we verify the gap and the verdicts).
#[test]
fn e2_sec2_adversarial_instance() {
    let r = bench::vbp_examples::run_sec2();
    assert_eq!(r.ff_bins, 3);
    assert_eq!(r.opt_bins, 2);
    assert!(r.exact, "exact MILP must succeed");
}

/// E3 — Fig. 2: FF 9 vs OPT 8 on the printed 17-ball instance.
#[test]
fn e3_fig2_instance() {
    let r = bench::vbp_examples::run_fig2(false);
    assert_eq!(r.paper_ff_bins, 9);
    assert_eq!(r.paper_opt_bins, 8);
}

/// E4 — Fig. 4 heat-maps: the red/blue pattern of both subfigures.
#[test]
fn e4_heatmaps() {
    let dp = bench::fig4::run_dp(500);
    let score = |label: &str| {
        dp.explanation
            .edges
            .iter()
            .find(|e| e.label == label)
            .map(|e| e.score)
            .unwrap_or(f64::NAN)
    };
    assert!(score("1~3->1-2-3") < -0.8, "heuristic-only red edge");
    assert!(score("1~3->1-4-5-3") > 0.8, "benchmark-only blue edge");

    let ff = bench::fig4::run_ff(400);
    let b0 = ff
        .explanation
        .edges
        .iter()
        .find(|e| e.label == "B0->Bin0")
        .expect("B0->Bin0 edge");
    assert!(b0.heuristic_frac > 0.9, "FF pins B0 into the first bin");
}

/// E5 — Fig. 5: both subspaces significant, DP's p-value far below FF's
/// (paper: 2e-60 vs 8e-11).
#[test]
fn e5_subspaces_and_significance() {
    let r = bench::fig5::run(200);
    let dp = r.dp.significance.as_ref().expect("dp sig");
    let ff = r.ff.significance.as_ref().expect("ff sig");
    assert!(dp.significant && ff.significant);
    assert!(dp.test.p_value < ff.test.p_value);
    assert!(dp.test.p_value < 1e-20);
    assert!(ff.test.p_value < 0.05);
}

/// E6 — §5.1: elimination shrinks and speeds up DP analysis; FF barely
/// moves (paper: 4.3x vs ~1x).
#[test]
fn e6_dsl_speedup_shape() {
    let r = bench::speedup::run(8);
    assert!(r.dp_eliminated.stats.vars < r.dp_raw.stats.vars);
    assert!(r.dp_speedup() > 1.0, "dp speedup {:.2}", r.dp_speedup());
    // FF's variable count barely changes.
    let ff_shrink = r.ff_raw.stats.vars as f64 / r.ff_eliminated.stats.vars.max(1) as f64;
    assert!(ff_shrink < 1.3, "ff shrink {ff_shrink:.2}");
}

/// E7 — the pipeline completes far inside the paper's 20-minute budget
/// and produces significant findings for every registered domain (the
/// paper's two plus makespan scheduling), run concurrently through the
/// batch engine.
#[test]
fn e7_pipeline_wall_clock() {
    let r = bench::pipeline_time::run(400);
    assert_eq!(r.outcomes.len(), 3);
    for o in &r.outcomes {
        let result = o.result.as_ref().expect("engine job succeeded");
        assert!(!result.findings.is_empty(), "{} found nothing", o.domain);
        assert!(o.wall_time_ms < 20 * 60 * 1000);
    }
}

/// E8 — §5.4: `increasing(pinned_path_length)` is discovered with
/// p < 0.05.
#[test]
fn e8_generalizer_predicate() {
    let r = bench::generalize::run();
    let f = r
        .dp_findings
        .iter()
        .find(|f| f.feature == "pinned_path_length")
        .expect("increasing(P)");
    assert!(matches!(f.trend, xplain::core::Trend::Increasing));
    assert!(f.p_value < 0.05);
}

/// E9 — Theorem A.1: the whole battery round-trips.
#[test]
fn e9_appendix_a_battery() {
    let r = bench::appendix_a::run();
    assert!(r.rows.iter().all(|row| row.agree));
}
