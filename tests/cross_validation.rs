//! Cross-validation between independent implementations of the same
//! quantity — the strongest correctness signal this reproduction has:
//!
//! * exact bilevel MILP analyzer vs black-box pattern search;
//! * specialized bin-packing branch & bound vs generic MILP;
//! * path-based max-flow LP vs the compiled DSL network;
//! * heuristic simulations vs their MetaOpt-style constraint encodings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xplain::analyzer::dp_metaopt::DpMetaOpt;
use xplain::analyzer::oracle::{DpOracle, GapOracle};
use xplain::analyzer::search::{dp_seeds, find_adversarial, SearchOptions};
use xplain::domains::te::{TeDsl, TeProblem};
use xplain::domains::vbp::{first_fit, optimal, optimal_milp, VbpInstance};
use xplain::flownet::CompileOptions;

/// The exact MILP and the pattern search agree on Fig. 1a's worst case.
#[test]
fn exact_and_search_agree_on_dp_gap() {
    let problem = TeProblem::fig1a();
    let exact = DpMetaOpt::new(problem.clone(), 50.0);
    let milp = exact.find_adversarial(&[]).expect("solvable");

    let oracle = DpOracle::new(problem, 50.0);
    let opts = SearchOptions {
        seeds: dp_seeds(3, 50.0, 100.0),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let search = find_adversarial(&oracle, &[], &opts, &mut rng).expect("found");

    assert!(
        (milp.gap - search.gap).abs() < 5.0,
        "exact {} vs search {}",
        milp.gap,
        search.gap
    );
    // Both must agree with direct simulation at their own points.
    assert!((exact.simulate_gap(&milp.input) - milp.gap).abs() < 1.0);
    assert!((oracle.gap(&search.input) - search.gap).abs() < 1e-9);
}

/// Specialized B&B and the generic MILP formulation agree on random
/// bin-packing instances.
#[test]
fn vbp_exact_solvers_agree() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let n = rng.gen_range(3..8);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
        let inst = VbpInstance::one_dim(&sizes);
        let bnb = optimal(&inst);
        let milp = optimal_milp(&inst, n).expect("solvable");
        assert_eq!(bnb.bins_used, milp.bins_used, "sizes {sizes:?}");
        assert!(bnb.check(&inst, 1e-9).is_none());
        assert!(milp.check(&inst, 1e-9).is_none());
    }
}

/// The compiled Fig. 4a DSL network computes the same benchmark as the
/// path-based LP at random demand vectors.
#[test]
fn dsl_benchmark_matches_path_lp() {
    let problem = TeProblem::fig1a();
    let dsl = TeDsl::build(&problem);
    let compiled = dsl
        .net
        .compile(&CompileOptions::default())
        .expect("compiles");
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..15 {
        let volumes: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..100.0)).collect();
        let lp = problem.optimal(&volumes).expect("solvable");
        let mut pins = BTreeMap::new();
        for (k, &node) in dsl.demand_nodes.iter().enumerate() {
            pins.insert(node, volumes[k]);
        }
        let model = compiled.with_source_values(&pins).expect("pinnable");
        let sol = model.solve().expect("solvable");
        assert!(
            (sol.objective - lp.total).abs() < 1e-5,
            "dsl {} vs lp {} at {volumes:?}",
            sol.objective,
            lp.total
        );
    }
}

/// Raw and eliminated DSL compilations agree everywhere (the eliminator
/// must be semantics-preserving).
#[test]
fn elimination_preserves_semantics() {
    let problem = TeProblem::fig4a();
    let dsl = TeDsl::build(&problem);
    let raw = dsl
        .net
        .compile(&CompileOptions {
            eliminate: false,
            ..Default::default()
        })
        .expect("compiles");
    let opt = dsl
        .net
        .compile(&CompileOptions::default())
        .expect("compiles");
    let mut rng = StdRng::seed_from_u64(51);
    for _ in 0..10 {
        let volumes: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut pins = BTreeMap::new();
        for (k, &node) in dsl.demand_nodes.iter().enumerate() {
            pins.insert(node, volumes[k]);
        }
        let a = raw
            .with_source_values(&pins)
            .unwrap()
            .solve()
            .expect("raw solvable");
        let b = opt
            .with_source_values(&pins)
            .unwrap()
            .solve()
            .expect("opt solvable");
        assert!(
            (a.objective - b.objective).abs() < 1e-5,
            "raw {} vs eliminated {}",
            a.objective,
            b.objective
        );
    }
}

/// The FF oracle (simulation) and the §2 gap structure: sampling the
/// paper's adversarial subspace always yields gap 1, sampling far away
/// yields gap 0.
#[test]
fn ff_gap_structure_sanity() {
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..20 {
        // The adversarial region is a knife edge (the paper's 1/49/51/51
        // pattern): the under-half ball must still pair with an over-half
        // ball (under + over <= 1), but once the filler joins it the bin
        // must reject every over ball (filler + under + over > 1).
        let filler: f64 = rng.gen_range(0.02..0.05);
        let over1: f64 = rng.gen_range(0.51..0.52);
        let over2: f64 = rng.gen_range(0.51..0.52);
        let over_min = over1.min(over2);
        let under: f64 = 1.0 - over_min - rng.gen_range(0.0..filler * 0.9);
        let inst = VbpInstance::one_dim(&[filler, under, over1, over2]);
        let gap = first_fit(&inst).bins_used as i64 - optimal(&inst).bins_used as i64;
        assert_eq!(gap, 1, "inside the adversarial subspace: {inst:?}");

        let benign = VbpInstance::one_dim(&[
            rng.gen_range(0.1..0.3),
            rng.gen_range(0.1..0.3),
            rng.gen_range(0.1..0.3),
            rng.gen_range(0.1..0.3),
        ]);
        let gap0 = first_fit(&benign).bins_used as i64 - optimal(&benign).bins_used as i64;
        assert_eq!(gap0, 0, "benign region: {benign:?}");
    }
}

/// The paper's Fig. 3 wiring with the *exact* analyzer in the loop: plug
/// the DP bilevel MILP into the pipeline as the finder and run the whole
/// subspace/significance/explanation chain off its output.
#[test]
fn pipeline_with_exact_milp_finder() {
    use xplain::analyzer::geometry::Polytope;
    use xplain::core::features::FeatureMap;
    use xplain::core::pipeline::{run_pipeline, PipelineConfig};
    use xplain::core::subspace::SubspaceParams;
    use xplain::core::{ExplainerParams, SignificanceParams};
    use xplain::runtime::DpDslMapper;

    let problem = TeProblem::fig1a();
    let exact = DpMetaOpt::new(problem.clone(), 50.0);
    let finder = move |excl: &[Polytope], _rng: &mut StdRng| {
        exact.find_adversarial(excl).ok().filter(|a| a.gap > 1.0)
    };

    let oracle = DpOracle::new(problem.clone(), 50.0);
    let mapper = DpDslMapper::new(problem.clone(), 50.0);
    let features = FeatureMap::identity_with_sum(3, &oracle.dim_names());
    let config = PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 5,
            tree_sample_factor: 2,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 60,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 120,
            ..Default::default()
        },
        coverage_samples: 500,
        ..Default::default()
    };
    let result = run_pipeline(&oracle, Some(&mapper), &features, &finder, &config);

    assert_eq!(result.findings.len(), 1, "rejected: {}", result.rejected);
    let f = &result.findings[0];
    // The exact finder starts from the global optimum (gap 100).
    assert!(
        (f.subspace.seed_gap - 100.0).abs() < 1.0,
        "{}",
        f.subspace.seed_gap
    );
    assert!(f.significance.as_ref().unwrap().significant);
    assert!(f.explanation.is_some());
    // Coverage of the discovered region is meaningful.
    let cov = result.coverage.as_ref().unwrap();
    assert!(cov.risk_precision > 0.5, "{cov:?}");
}
