//! Vendored stand-in for `serde`, written for this workspace because the
//! build environment has no network access to crates.io.
//!
//! It deliberately trades serde's zero-copy visitor architecture for a
//! simple value-tree model: `Serialize` lowers a type into a [`Value`],
//! `Deserialize` lifts it back. The public *surface* matches what the
//! workspace uses from real serde:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the `derive` feature and the
//!   companion `serde_derive` proc-macro crate);
//! * field attributes `#[serde(skip)]`, `#[serde(default)]`, and
//!   `#[serde(with = "module")]`;
//! * `serde::de::Error::custom(...)` for custom error construction;
//! * externally-tagged enum representation, newtype-struct transparency.
//!
//! Swapping back to the real serde later only requires restoring the
//! `Serializer`-based signatures in `#[serde(with = ...)]` modules.

pub mod de;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value — the interchange tree every
/// `Serialize`/`Deserialize` impl targets. JSON-shaped on purpose.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order is preserved, like serde_json
    /// with `preserve_order`).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// First value for key `k` in an insertion-ordered map body.
pub fn map_get<'a>(map: &'a [(String, Value)], k: &str) -> Option<&'a Value> {
    map.iter().find(|(key, _)| key == k).map(|(_, v)| v)
}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::custom(format!("expected bool, got {v:?}")))
    }
}

/// Largest magnitude an integer may have and still round-trip exactly
/// through the `f64`-backed [`Value::Num`]. Values beyond this would be
/// silently altered by the float conversion, so both directions refuse
/// them loudly instead (real serde_json carries `u64`/`i64` arms and does
/// not have this limit; callers needing such values should serialize them
/// as strings).
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0; // 2^53

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as f64;
                assert!(
                    n.abs() <= MAX_SAFE_INTEGER,
                    "{} value {} exceeds 2^53 and cannot be serialized exactly \
                     through the f64-backed Value; serialize it as a string instead",
                    stringify!($t),
                    self
                );
                Value::Num(n)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| de::Error::custom(format!("expected number, got {v:?}")))?;
                if n.fract() != 0.0 {
                    return Err(de::Error::custom(format!(
                        "expected integer, got {n}"
                    )));
                }
                if n.abs() > MAX_SAFE_INTEGER {
                    return Err(de::Error::custom(format!(
                        "integer {n} exceeds 2^53 and may have lost precision in transit"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(de::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom(format!(
                "expected single char, got {s:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_seq()
            .ok_or_else(|| de::Error::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(de::Error::custom(format!("expected 2-tuple, got {v:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(de::Error::custom(format!("expected 3-tuple, got {v:?}"))),
        }
    }
}

// Maps serialize as a sequence of `[key, value]` pairs. Real serde_json
// only allows string keys in JSON objects; the pair-sequence form keeps
// arbitrary serializable keys (e.g. `BTreeMap<VarId, f64>`) round-trippable
// with one uniform representation.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        map_entries(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect();
        // Sort the rendered pairs for deterministic output.
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(entries)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        map_entries(v)
    }
}

fn map_entries<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    v: &Value,
) -> Result<M, de::Error> {
    v.as_seq()
        .ok_or_else(|| de::Error::custom(format!("expected pair sequence, got {v:?}")))?
        .iter()
        .map(|pair| match pair.as_seq() {
            Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
            _ => Err(de::Error::custom(format!(
                "expected [key, value] pair, got {pair:?}"
            ))),
        })
        .collect()
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
