//! Deserialization error type, mirroring `serde::de::Error::custom`.

use std::fmt;

/// The single error type every `Deserialize` impl returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message (the `serde::de::Error`
    /// trait method the workspace calls).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }

    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}
