//! Vendored stand-in for `rand` (the build environment has no crates.io
//! access). API-compatible with the subset the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — deterministic
//!   xoshiro256++ seeded through splitmix64 (same construction rand itself
//!   recommends for seeding);
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   floats and integers), [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is deterministic given the seed; there is no OS entropy
//! source (`thread_rng` is intentionally absent).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution of `gen()` — the analogue of rand's `Standard`.
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        // Unlike real rand, the exact upper bound is never produced
        // (next_f64 is in [0, 1)); for continuous sampling the boundary
        // has measure zero, so callers cannot observe the difference
        // statistically — but do not rely on `hi` being attainable.
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans this workspace uses.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Expose the raw xoshiro256++ state words, so callers that need
        /// to persist a generator mid-stream (session checkpoints) can
        /// serialize it. The words are full-range `u64`s — JSON-bound
        /// callers must encode them as strings, not numbers.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`StdRng::state`] output; the restored
        /// generator continues the exact stream the snapshot interrupted.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let k = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&k));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    fn uses_impl_rng(rng: &mut impl Rng) -> f64 {
        rng.gen_range(0.0..1.0)
    }

    #[test]
    fn impl_rng_params_reborrow() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = uses_impl_rng(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
