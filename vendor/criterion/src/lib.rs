//! Vendored stand-in for `criterion` (no crates.io access). Keeps the
//! bench targets compiling and runnable: `cargo bench` executes each
//! benchmark a bounded number of times and prints mean wall-clock per
//! iteration. No statistics, plots, or baselines — this is a smoke-timing
//! harness, not a measurement instrument.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier (`BenchmarkId::from_parameter(n)` etc.).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing driver handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, then timed runs.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// The top-level harness state.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(label: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {label:<50} {:>12.3} us/iter", per_iter * 1e6);
}

impl Criterion {
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) {
        run_one(&name.to_string(), self.sample_size, &mut f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion interprets this as a statistical sample count; here it
    /// directly bounds timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
    }

    pub fn bench_with_input<N: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    pub fn throughput<T>(&mut self, _t: T) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        compile_error!("vendored criterion supports only criterion_group!(name, fn, ...)");
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
