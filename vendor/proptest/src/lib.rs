//! Vendored stand-in for `proptest` (no crates.io access in this build
//! environment). Call-compatible with the subset the workspace uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test] fn name(pat in strategy, ...)` items per block;
//! * range strategies (`0.0f64..3.0`, `1usize..6`, inclusive variants) and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest, on purpose: cases are sampled from a
//! fixed deterministic seed sequence (so failures reproduce exactly), and
//! there is **no shrinking** — a failing case panics with its values via
//! the assertion message.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// Re-exports used by the generated test bodies.
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Per-block configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use super::*;
    use rand::Rng;

    /// A value generator: the sampling core of proptest's `Strategy`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `Vec` of samples from an element strategy; the length itself may be
    /// fixed or sampled from a range (proptest's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.lo >= self.len.hi_exclusive {
                self.len.lo
            } else {
                rng.gen_range(self.len.lo..self.len.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Collection length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }
}

pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// `proptest::collection::vec(strategy, len)` where `len` is a fixed
    /// size or a range of sizes.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                // One deterministic rng per case: failures print a case
                // index that reruns identically.
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    0x5EED_0000_0000_0000u64 ^ (__case as u64),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            n in 1usize..6,
            xs in collection::vec(0.0f64..3.0, 12),
            k in 2u32..=4,
        ) {
            prop_assert!((1..6).contains(&n));
            prop_assert_eq!(xs.len(), 12);
            prop_assert!(xs.iter().all(|x| (0.0..3.0).contains(x)));
            prop_assert!((2..=4).contains(&k), "k was {}", k);
        }
    }
}
