//! Vendored `#[derive(Serialize, Deserialize)]` for the workspace's
//! value-based serde stand-in (see `vendor/serde`).
//!
//! Implemented without `syn`/`quote` (no network access to crates.io): the
//! input item is parsed by walking the raw token stream, and the generated
//! impls are emitted as formatted source text. Supports exactly the shapes
//! this workspace uses:
//!
//! * structs with named fields, tuple structs (newtype-transparent for a
//!   single field, sequences otherwise), unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"` / `{"Variant": payload}`);
//! * field attributes `#[serde(skip)]` (skip on serialize, `Default` on
//!   deserialize), `#[serde(default)]` (missing/null field deserializes
//!   to `Default::default()` — the forward-compat knob), and
//!   `#[serde(with = "module")]` (delegates to
//!   `module::serialize(&field) -> Value` and
//!   `module::deserialize(&Value) -> Result<T, serde::de::Error>`).
//!
//! Generics on derived types are intentionally unsupported (none in the
//! workspace) and produce a compile error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(Vec<FieldAttrs>),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extract `skip` / `with = "path"` from one attribute's bracket content,
/// i.e. the `serde(...)` inside `#[serde(...)]`. Non-serde attributes
/// (doc comments, `cfg`, ...) leave `attrs` untouched.
fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(g)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                if key == "skip" || key == "skip_serializing" || key == "skip_deserializing" {
                    attrs.skip = true;
                    i += 1;
                } else if key == "default" {
                    // `default` (bare form only): a missing field
                    // deserializes to `Default::default()` instead of
                    // erroring — the forward-compat knob schema-versioned
                    // payloads rely on.
                    attrs.default = true;
                    i += 1;
                } else if key == "with" {
                    // with = "path"
                    if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                        let s = lit.to_string();
                        attrs.with = Some(s.trim_matches('"').to_string());
                    }
                    i += 3;
                } else {
                    // Unknown key (default, rename, untagged, ...): skip it
                    // and any `= value` / `(...)` payload.
                    i += 1;
                    while i < inner.len()
                        && !matches!(&inner[i], TokenTree::Punct(p) if p.as_char() == ',')
                    {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
}

/// Consume leading attributes at `*i`, folding serde ones into the result.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while *i + 1 < toks.len() {
        let TokenTree::Punct(p) = &toks[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &toks[*i + 1] {
            parse_attr_group(g.stream(), &mut attrs);
        }
        *i += 2;
    }
    attrs
}

/// Skip `pub` / `pub(crate)` / `pub(in ...)` at `*i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip a type (everything up to a top-level `,`), tracking `<...>` depth.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        i += 1; // ','
        fields.push(NamedField { name, attrs });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<FieldAttrs> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        i += 1; // ','
        fields.push(attrs);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = take_attrs(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind_kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }
    match kind_kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Named(parse_named_fields(g.stream()))),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Tuple(parse_tuple_fields(g.stream()))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: ItemKind::Struct(Fields::Unit),
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------- Serialize

fn ser_named_body(fields: &[NamedField], accessor: &str) -> String {
    // `accessor` formats a field name into an expression, e.g. "&self.{}".
    let mut out = String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let expr = accessor.replace("{}", &f.name);
        match &f.attrs.with {
            Some(path) => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), {path}::serialize({expr})));\n",
                n = f.name
            )),
            None => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value({expr})));\n",
                n = f.name
            )),
        }
    }
    out.push_str("::serde::Value::Map(__m)");
    out
}

fn derive_serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => ser_named_body(fields, "&self.{}"),
        ItemKind::Struct(Fields::Tuple(attrs)) => {
            if attrs.len() == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..attrs.len())
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(attrs) => {
                        let binds: Vec<String> =
                            (0..attrs.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if attrs.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let payload = ser_named_body(fields, "{}");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {{ {payload} }})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

// -------------------------------------------------------------- Deserialize

fn de_named_body(fields: &[NamedField], map_expr: &str, ctor: &str) -> String {
    let mut out = format!(
        "let __m = {map_expr}.as_map().ok_or_else(|| ::serde::de::Error::custom(\
         format!(\"expected map for {ctor}, got {{:?}}\", {map_expr})))?;\n"
    );
    let mut inits = Vec::new();
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            inits.push(format!("{n}: ::std::default::Default::default()"));
            continue;
        }
        if f.attrs.default {
            // Absent (or explicit-null) fields fall back to `Default`;
            // present fields deserialize normally.
            let convert = match &f.attrs.with {
                Some(path) => format!("{path}::deserialize(__f)?"),
                None => "::serde::Deserialize::from_value(__f)?".to_string(),
            };
            inits.push(format!(
                "{n}: match ::serde::map_get(__m, \"{n}\") {{ \
                 Some(__f) if !__f.is_null() => {convert}, \
                 _ => ::std::default::Default::default() }}"
            ));
            continue;
        }
        let fetch = format!(
            "::serde::map_get(__m, \"{n}\").ok_or_else(|| \
             ::serde::de::Error::custom(\"missing field `{n}` in {ctor}\"))?"
        );
        match &f.attrs.with {
            Some(path) => inits.push(format!("{n}: {path}::deserialize({fetch})?")),
            None => inits.push(format!("{n}: ::serde::Deserialize::from_value({fetch})?")),
        }
    }
    out.push_str(&format!("Ok({ctor} {{ {} }})", inits.join(", ")));
    out
}

fn derive_deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => de_named_body(fields, "__v", name),
        ItemKind::Struct(Fields::Tuple(attrs)) => {
            if attrs.len() == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let n = attrs.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| ::serde::de::Error::custom(\
                     \"expected sequence for {name}\"))?;\n\
                     if __s.len() != {n} {{ return Err(::serde::de::Error::custom(\
                     \"wrong tuple length for {name}\")); }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
        }
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    Fields::Tuple(attrs) => {
                        let expr = if attrs.len() == 1 {
                            format!(
                                "Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?))"
                            )
                        } else {
                            let n_fields = attrs.len();
                            let items: Vec<String> = (0..n_fields)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::de::Error::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if __s.len() != {n_fields} {{ return Err(::serde::de::Error::custom(\
                                 \"wrong tuple length for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {expr},\n"));
                    }
                    Fields::Named(fields) => {
                        let body = de_named_body(fields, "__payload", &format!("{name}::{vn}"));
                        tagged_arms.push_str(&format!("\"{vn}\" => {{ {body} }},\n"));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => return Err(::serde::de::Error::custom(\
                 format!(\"unknown unit variant `{{__s}}` for {name}\"))), }}\n}}\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::de::Error::custom(\
                 format!(\"expected string or map for enum {name}, got {{:?}}\", __v)))?;\n\
                 let (__tag, __payload) = __m.first().ok_or_else(|| \
                 ::serde::de::Error::custom(\"empty map for enum {name}\"))?;\n\
                 match __tag.as_str() {{\n{tagged_arms}__other => Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))), }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         {body}\n}}\n}}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => derive_serialize_impl(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive emitted bad code: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => derive_deserialize_impl(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive emitted bad code: {e}"))),
        Err(e) => compile_error(&e),
    }
}
