//! Vendored stand-in for `serde_json`: renders the [`serde::Value`] tree to
//! JSON text and parses JSON text back, with the `to_string` /
//! `to_string_pretty` / `from_str` entry points the workspace uses.
//!
//! Numbers are written with Rust's shortest-roundtrip `Display` for `f64`
//! (so `2.5` → `2.5`, `250.0` → `250`), which both reads naturally and
//! round-trips exactly. Non-finite numbers serialize as `null`, matching
//! real serde_json — callers that need ±∞ use `xplain_lp::serde_inf`.

use serde::{de, Deserialize, Serialize, Value};
use std::fmt;

/// Error for both serialization and parsing (messages only, like
/// serde_json's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Self {
        Error(e.message().to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into the raw [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ------------------------------------------------------------------ writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, out, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    other => return Err(Error(format!("expected , or ] but got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    other => return Err(Error(format!("expected , or }} but got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| Error(e.to_string()))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| Error(e.to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2.5,null,true],"b":{"c":"x\"y\n"},"d":[]}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&250.0f64).unwrap(), "250");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&7usize).unwrap(), "7");
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
