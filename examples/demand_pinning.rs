//! Demand Pinning deep dive — the paper's §2 wide-area traffic
//! engineering example, exercised on every analyzer this reproduction
//! ships:
//!
//! 1. direct simulation of DP vs the optimal max-flow on Fig. 1a;
//! 2. the **exact** MetaOpt-style bilevel MILP (Fig. 1b + KKT rewriting);
//! 3. the pattern-search analyzer on the larger Fig. 4a instance;
//! 4. the DSL view: compile the Fig. 4a network and evaluate it.
//!
//! ```sh
//! cargo run --release --example demand_pinning
//! ```

use std::collections::BTreeMap;
use xplain::analyzer::dp_metaopt::DpMetaOpt;
use xplain::analyzer::oracle::{DpOracle, GapOracle};
use xplain::analyzer::search::{dp_seeds, find_adversarial, SearchOptions};
use xplain::domains::te::{DemandPinning, TeDsl, TeProblem};
use xplain::flownet::CompileOptions;

fn main() {
    // --- 1. Direct simulation on the Fig. 1a table -----------------------
    let problem = TeProblem::fig1a();
    let dp = DemandPinning::new(50.0);
    let volumes = [50.0, 100.0, 100.0];
    let alloc = dp.solve(&problem, &volumes).expect("feasible");
    let opt = problem.optimal(&volumes).expect("feasible");
    println!("Fig. 1a simulation:");
    for k in 0..problem.num_demands() {
        println!(
            "  {}: DP routes {:>5.1}, OPT routes {:>5.1}",
            problem.demand_name(k),
            alloc.flows[k].iter().sum::<f64>(),
            opt.flows[k].iter().sum::<f64>()
        );
    }
    println!("  totals: DP {} vs OPT {}\n", alloc.total, opt.total);

    // --- 2. Exact bilevel MILP (the MetaOpt substitute) ------------------
    let exact = DpMetaOpt::new(problem.clone(), 50.0);
    let adv = exact.find_adversarial(&[]).expect("solvable");
    println!(
        "exact MILP analyzer: worst-case gap {:.2} at d = [{}]",
        adv.gap,
        adv.input
            .iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  cross-check by simulation: gap {:.2}\n",
        exact.simulate_gap(&adv.input)
    );

    // --- 3. Pattern search on the 8-demand Fig. 4a instance --------------
    let big = TeProblem::fig4a();
    let oracle = DpOracle::new(big.clone(), 50.0);
    let opts = SearchOptions {
        seeds: dp_seeds(oracle.dims(), 50.0, big.demand_cap),
        ..Default::default()
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    if let Some(found) = find_adversarial(&oracle, &[], &opts, &mut rng) {
        println!(
            "search analyzer on Fig. 4a (8 demands): gap {:.2} at d = [{}]",
            found.gap,
            found
                .input
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // --- 4. The DSL view --------------------------------------------------
    let dsl = TeDsl::build(&problem);
    let compiled = dsl
        .net
        .compile(&CompileOptions::default())
        .expect("compiles");
    println!(
        "\nDSL compilation of Fig. 4a-style network: {} edges -> {} LP variables ({} merged away)",
        dsl.net.num_edges(),
        compiled.stats.vars,
        compiled.stats.merged_edges
    );
    let mut pins = BTreeMap::new();
    for (k, &node) in dsl.demand_nodes.iter().enumerate() {
        pins.insert(node, volumes[k]);
    }
    let model = compiled.with_source_values(&pins).expect("pinnable");
    let sol = model.solve().expect("solvable");
    println!(
        "  compiled-DSL benchmark at the Fig. 1a demands: {:.1} (matches OPT {})",
        sol.objective, opt.total
    );
}
