//! The complete Fig. 3 architecture in one run, for both running
//! examples: DSL → compiler → analyzer → adversarial subspace generator →
//! significance checker → explainer → (instance generator → generalizer).
//!
//! Produces Type-1 (subspace polytopes), Type-2 (edge heat-maps), and
//! Type-3 (grammar predicates) outputs, plus a JSON dump of the whole DP
//! result for downstream tooling.
//!
//! ```sh
//! cargo run --release --example full_pipeline
//! ```

use xplain::core::pipeline::PipelineConfig;
use xplain::core::report::{render_findings, render_pipeline};
use xplain::core::ExplainerParams;
use xplain::runtime::{run_domain, run_domain_full, DomainRegistry};

fn main() {
    let config = PipelineConfig {
        max_subspaces: 3,
        explainer: ExplainerParams {
            samples: 1500,
            ..Default::default()
        },
        ..Default::default()
    };
    // Every domain comes out of the registry — the same way the batch
    // runner and the repro harness address them.
    let registry = DomainRegistry::builtin();

    // ---------- Demand Pinning (Fig. 4a path) ----------------------------
    println!("=== Demand Pinning on Fig. 1a ===\n");
    let dp = registry.get("dp").expect("built-in");
    let dp_analysis = run_domain_full(dp, &config);
    let dp_result = &dp_analysis.pipeline;
    print!("{}", render_pipeline(dp_result, &dp.oracle().dim_names()));

    // ---------- First-fit (Fig. 4b path) ----------------------------------
    println!("=== First-fit, 4 balls / 3 bins ===\n");
    let ff = registry.get("ff").expect("built-in");
    let ff_result = run_domain(ff, &config);
    print!("{}", render_pipeline(&ff_result, &ff.oracle().dim_names()));

    // ---------- LPT scheduling: all three types through one call ----------
    println!("=== LPT makespan scheduling, 5 jobs / 2 machines ===\n");
    let sched = registry.get("sched").expect("built-in");
    let sched_analysis = run_domain_full(sched, &config);
    print!(
        "{}",
        render_pipeline(&sched_analysis.pipeline, &sched.oracle().dim_names())
    );

    // ---------- Type 3: instance generator + generalizer -------------------
    println!("=== Generalizer (Type 3) ===\n");
    println!("DP predicates (chain family, L = pinned path length):");
    print!("{}", render_findings(&dp_analysis.trends));
    println!("scheduling predicates (Graham-tight family):");
    print!("{}", render_findings(&sched_analysis.trends));

    // ---------- JSON export -----------------------------------------------
    let json = serde_json::to_string_pretty(&dp_result).expect("serializable");
    std::fs::write("dp_pipeline_result.json", &json).expect("writable");
    println!(
        "\nwrote dp_pipeline_result.json ({} KiB) for downstream tooling",
        json.len() / 1024
    );
}
