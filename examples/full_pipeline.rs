//! The complete Fig. 3 architecture in one run, for both running
//! examples: DSL → compiler → analyzer → adversarial subspace generator →
//! significance checker → explainer → (instance generator → generalizer).
//!
//! Produces Type-1 (subspace polytopes), Type-2 (edge heat-maps), and
//! Type-3 (grammar predicates) outputs, plus a JSON dump of the whole DP
//! result for downstream tooling.
//!
//! ```sh
//! cargo run --release --example full_pipeline
//! ```

use rand::SeedableRng;
use xplain::core::generalizer::{generalize, GeneralizerParams};
use xplain::core::instances::{generate_dp_instances, DpFamily};
use xplain::core::pipeline::{run_dp_pipeline, run_ff_pipeline, PipelineConfig};
use xplain::core::report::{render_findings, render_pipeline};
use xplain::core::{ExplainerParams, Observation};
use xplain::domains::te::TeProblem;

fn main() {
    let config = PipelineConfig {
        max_subspaces: 3,
        explainer: ExplainerParams {
            samples: 1500,
            ..Default::default()
        },
        ..Default::default()
    };

    // ---------- Demand Pinning (Fig. 4a path) ----------------------------
    println!("=== Demand Pinning on Fig. 1a ===\n");
    let problem = TeProblem::fig1a();
    let dp_result = run_dp_pipeline(&problem, 50.0, &config);
    let dp_names: Vec<String> = (0..problem.num_demands())
        .map(|k| format!("d[{}]", problem.demand_name(k)))
        .collect();
    print!("{}", render_pipeline(&dp_result, &dp_names));

    // ---------- First-fit (Fig. 4b path) ----------------------------------
    println!("=== First-fit, 4 balls / 3 bins ===\n");
    let ff_result = run_ff_pipeline(4, 3, &config);
    let ff_names: Vec<String> = (0..4).map(|i| format!("B{i}")).collect();
    print!("{}", render_pipeline(&ff_result, &ff_names));

    // ---------- Type 3: instance generator + generalizer -------------------
    println!("=== Generalizer (Type 3) ===\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF00D);
    let instances = generate_dp_instances(&DpFamily::default(), &mut rng);
    println!("instance family (chain length L, measured gap):");
    for inst in &instances {
        let len = inst
            .observation
            .features
            .iter()
            .find(|(n, _)| n == "pinned_path_length")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!("  L = {len:>2}: gap = {:>6.1}", inst.observation.gap);
    }
    let observations: Vec<Observation> = instances.iter().map(|i| i.observation.clone()).collect();
    let findings = generalize(&observations, &GeneralizerParams::default());
    println!("\ndiscovered predicates:");
    print!("{}", render_findings(&findings));

    // ---------- JSON export -----------------------------------------------
    let json = serde_json::to_string_pretty(&dp_result).expect("serializable");
    std::fs::write("dp_pipeline_result.json", &json).expect("writable");
    println!(
        "\nwrote dp_pipeline_result.json ({} KiB) for downstream tooling",
        json.len() / 1024
    );
}
