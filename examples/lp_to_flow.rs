//! Theorem A.1 live: encode an arbitrary MILP into the six DSL node
//! behaviors, print the resulting network, and verify the optimum
//! survives the round trip.
//!
//! ```sh
//! cargo run --release --example lp_to_flow
//! ```

use xplain::flownet::dot::to_dot;
use xplain::flownet::encode_lp::encode;
use xplain::flownet::CompileOptions;
use xplain::lp::{Cmp, Model, Sense, VarType};

fn main() {
    // A small mixed-integer model: continuous production + a binary
    // "open the second machine" decision.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("output_a", VarType::Continuous, 0.0, 6.0);
    let y = m.add_var("output_b", VarType::Continuous, 0.0, 6.0);
    let open = m.add_var("open_machine2", VarType::Binary, 0.0, 1.0);
    m.add_constr("machine1", x + y, Cmp::Le, 5.0);
    // Machine 2 adds 4 units of capacity for b, but costs 3.
    m.add_constr("machine2", y - open * 4.0, Cmp::Le, 0.0);
    m.set_objective(x * 2.0 + y * 3.0 - open * 3.0);

    let direct = m.solve().expect("solvable");
    println!("direct MILP optimum: {:.3}", direct.objective);
    println!(
        "  output_a = {:.2}, output_b = {:.2}, open_machine2 = {}",
        direct.values[0], direct.values[1], direct.values[2] as i64
    );

    // Appendix-A construction: split nodes per row, multiply nodes per
    // coefficient, all-equal per variable, pick sources per binary.
    let encoded = encode(&m).expect("encodable per Theorem A.1");
    println!(
        "\nencoded as a flow network: {} nodes, {} edges",
        encoded.net.num_nodes(),
        encoded.net.num_edges()
    );
    let behaviors: Vec<String> = encoded
        .net
        .nodes()
        .iter()
        .map(|n| format!("{:?}", n.behavior))
        .collect();
    let count = |pat: &str| behaviors.iter().filter(|b| b.contains(pat)).count();
    println!(
        "  behavior census: {} Split, {} Multiply, {} AllEqual, {} Source, {} Sink",
        count("Split") - count("Source(Split"),
        count("Multiply"),
        count("AllEqual"),
        count("Source"),
        count("Sink"),
    );

    let (flow_obj, values) = encoded
        .solve(&CompileOptions::default())
        .expect("flow model solvable");
    println!("\nflow-network optimum: {flow_obj:.3} (must match the direct solve)");
    assert!((flow_obj - direct.objective).abs() < 1e-4);
    println!(
        "  recovered assignment: output_a = {:.2}, output_b = {:.2}, open_machine2 = {}",
        values[0],
        values[1],
        values[2].round() as i64
    );

    // Graphviz rendering of the construction (pipe into `dot -Tsvg`).
    let dot = to_dot(&encoded.net);
    println!(
        "\nDOT rendering: {} lines (print with `cargo run --example lp_to_flow | tail`)",
        dot.lines().count()
    );
    println!("{}", dot.lines().take(12).collect::<Vec<_>>().join("\n"));
    println!("  ...");
}
