//! Quickstart: analyze a heuristic end to end in ~40 lines.
//!
//! Runs the paper's Fig. 1a scenario: find an adversarial demand vector
//! for Demand Pinning, grow the adversarial subspace around it, check its
//! statistical significance, and print why the heuristic loses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xplain::core::pipeline::PipelineConfig;
use xplain::core::report::render_pipeline;
use xplain::core::ExplainerParams;
use xplain::runtime::{run_domain, Domain, DpDomain};

fn main() {
    // The 5-node topology and three demands of Fig. 1a, with the Demand
    // Pinning threshold at 50, packaged as a runtime domain.
    let domain = DpDomain::fig1a();

    // Default pipeline: pattern-search analyzer -> subspace generator ->
    // Wilcoxon significance checker -> 3000-sample explainer.
    let config = PipelineConfig {
        max_subspaces: 2,
        explainer: ExplainerParams {
            samples: 1000,
            ..Default::default()
        },
        ..Default::default()
    };

    let result = run_domain(&domain, &config);

    let dim_names = domain.oracle().dim_names();
    print!("{}", render_pipeline(&result, &dim_names));

    // The headline numbers, programmatically:
    if let Some(first) = result.findings.first() {
        println!(
            "largest gap found: {:.1} (the paper's Fig. 1a gap is 100)",
            first.subspace.seed_gap
        );
        if let Some(sig) = &first.significance {
            println!(
                "subspace p-value: {:.2e} (reported if < 0.05)",
                sig.test.p_value
            );
        }
    }
}
