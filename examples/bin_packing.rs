//! Vector bin packing tour — §2's second running example.
//!
//! Replays the Fig. 2 instance (first-fit 9 bins vs optimal 8), compares
//! the three shipped heuristics, finds a fresh adversarial instance with
//! the exact Fig. 1c MILP, and prints the explainer's view of why
//! first-fit loses.
//!
//! ```sh
//! cargo run --release --example bin_packing
//! ```

use xplain::analyzer::ff_metaopt::FfMetaOpt;
use xplain::analyzer::geometry::Polytope;
use xplain::core::explainer::{explain, DslMapper, ExplainerParams};
use xplain::core::report::render_explanation;
use xplain::core::subspace::Subspace;
use xplain::domains::vbp::{best_fit, first_fit, first_fit_decreasing, optimal, VbpInstance};
use xplain::runtime::FfDslMapper;

fn main() {
    // --- Fig. 2 replay ----------------------------------------------------
    let inst = VbpInstance::fig2_example();
    let ff = first_fit(&inst);
    let bf = best_fit(&inst);
    let ffd = first_fit_decreasing(&inst);
    let opt = optimal(&inst);
    println!("Fig. 2 instance (17 balls):");
    println!("  first-fit            : {} bins (paper: 9)", ff.bins_used);
    println!("  best-fit             : {} bins", bf.bins_used);
    println!("  first-fit-decreasing : {} bins", ffd.bins_used);
    println!(
        "  optimal              : {} bins (paper: 8)\n",
        opt.bins_used
    );

    // Show the first-fit layout like the figure's stacked bins.
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); ff.bins_used];
    for (i, &b) in ff.assignment.iter().enumerate() {
        bins[b].push(inst.balls[i][0]);
    }
    println!("first-fit layout:");
    for (j, bin) in bins.iter().enumerate() {
        let load: f64 = bin.iter().sum();
        println!(
            "  bin {j}: [{}] (load {load:.2})",
            bin.iter()
                .map(|s| format!("{s:.2}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // --- Exact adversarial analysis (4 balls, 3 bins) ----------------------
    let analyzer = FfMetaOpt::sec2();
    let adv = analyzer.find_adversarial(&[]).expect("solvable");
    println!(
        "\nexact Fig. 1c MILP: gap {:.0} bin(s) at sizes [{}] (paper's instance: 1%, 49%, 51%, 51%)",
        adv.gap,
        adv.input
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- Why does FF lose? The explainer's heat-map ------------------------
    let mapper = FfDslMapper::new(4, 3, 1.0);
    let lo = vec![0.01, 0.44, 0.51, 0.51];
    let hi = vec![0.06, 0.49, 0.56, 0.56];
    let subspace = Subspace {
        polytope: Polytope::from_box(&lo, &hi),
        rough_lo: lo,
        rough_hi: hi,
        seed: vec![0.01, 0.49, 0.51, 0.51],
        seed_gap: 1.0,
        predicate_descriptions: Vec::new(),
        leaf_mean_gap: 1.0,
        leaf_samples: 0,
        evaluations: 0,
    };
    let explanation = explain(
        &mapper,
        &subspace,
        &ExplainerParams {
            samples: 1000,
            ..Default::default()
        },
        11,
    );
    println!();
    print!("{}", render_explanation(&explanation, 8));
    println!("\n(negative scores = only first-fit uses the edge; positive = only the optimal)");
    let _ = mapper.net(); // the DOT export lives in `repro fig4`
}
