//! The `.flow` textual DSL format: author a heuristic-analysis network in
//! a plain file, parse it, compile it, solve it, round-trip it.
//!
//! This is the standalone counterpart of the embedded builder — the form
//! an operator would version-control or paste into a review (and the
//! natural target for the paper's §6 "natural-language interface to
//! generate the DSL" future work).
//!
//! ```sh
//! cargo run --release --example flow_file
//! ```

use xplain::flownet::text::{parse, to_text};
use xplain::flownet::CompileOptions;

const FIG1A_AS_FLOW: &str = r#"
# Fig. 1a as a .flow file: three demands over the 5-node topology.
net "fig1a"

# DEMANDS row: adversarial-input sources.
node d13 source split var 0 100 group DEMANDS
node d12 source split var 0 100 group DEMANDS
node d23 source split var 0 100 group DEMANDS

# PATHS row: copy nodes duplicate a path's flow onto its links + the sink.
node p13_short copy group PATHS   # 1-2-3
node p13_long  copy group PATHS   # 1-4-5-3
node p12       copy group PATHS   # 1-2
node p23       copy group PATHS   # 2-3

# EDGES row: one split node per link, drain capacity = link capacity.
node e12 split group EDGES
node e23 split group EDGES
node e14 split group EDGES
node e45 split group EDGES
node e53 split group EDGES

node met    sink 1 group SINKS
node unmet  sink 0 group SINKS
node ground sink 0 group SINKS

edge d13 -> p13_short label "d13->1-2-3"
edge d13 -> p13_long  label "d13->1-4-5-3"
edge d13 -> unmet
edge d12 -> p12 label "d12->1-2"
edge d12 -> unmet
edge d23 -> p23 label "d23->2-3"
edge d23 -> unmet

edge p13_short -> met
edge p13_short -> e12
edge p13_short -> e23
edge p13_long -> met
edge p13_long -> e14
edge p13_long -> e45
edge p13_long -> e53
edge p12 -> met
edge p12 -> e12
edge p23 -> met
edge p23 -> e23

edge e12 -> ground cap 100
edge e23 -> ground cap 100
edge e14 -> ground cap 50
edge e45 -> ground cap 50
edge e53 -> ground cap 50
"#;

fn main() {
    let net = parse(FIG1A_AS_FLOW).expect("well-formed .flow source");
    println!(
        "parsed '{}': {} nodes, {} edges",
        net.name,
        net.num_nodes(),
        net.num_edges()
    );

    let compiled = net.compile(&CompileOptions::default()).expect("compiles");
    println!(
        "compiled: {} LP variables, {} constraints ({} edges merged by elimination)",
        compiled.stats.vars, compiled.stats.constraints, compiled.stats.merged_edges
    );

    // Pin the three demand sources to the Fig. 1a adversarial input and
    // maximize: the benchmark routes 250 (the paper's OPT total).
    let mut pins = std::collections::BTreeMap::new();
    for (label, value) in [("d13", 50.0), ("d12", 100.0), ("d23", 100.0)] {
        let node = net.node_by_label(label).expect("declared above");
        pins.insert(node, value);
    }
    let model = compiled.with_source_values(&pins).expect("pinnable");
    let sol = model.solve().expect("solvable");
    println!(
        "benchmark at the Fig. 1a demands: {:.0} (paper OPT: 250)",
        sol.objective
    );
    assert!((sol.objective - 250.0).abs() < 1e-6);

    // Round-trip: write the network back out and re-parse it.
    let text = to_text(&net);
    let back = parse(&text).expect("round-trips");
    assert_eq!(back.num_edges(), net.num_edges());
    println!(
        "round-trip through to_text(): {} lines, identical structure",
        text.lines().count()
    );
}
