//! Streaming analysis: watch findings arrive one event at a time,
//! interrupt the session mid-loop, and resume it from a checkpoint.
//!
//! ```sh
//! cargo run --release --example streaming_session
//! ```

use xplain::core::{FinishReason, PipelineConfig, SessionBudgets, SessionEvent};
use xplain::runtime::{build_session, CancelToken, DomainRegistry};

fn main() {
    let registry = DomainRegistry::builtin();
    let domain = registry.get("sched").expect("builtin domain");
    let config = PipelineConfig {
        max_subspaces: 3,
        ..Default::default()
    };

    // --- Pass 1: a budgeted session stops mid-loop -----------------------
    let mut session = build_session(
        domain,
        &config,
        SessionBudgets {
            max_analyzer_calls: Some(1),
            ..Default::default()
        },
        CancelToken::new(),
        None,
    )
    .expect("fresh session builds");

    println!("== streaming (budget: 1 analyzer call) ==");
    for event in session.by_ref() {
        match &event {
            SessionEvent::AnalyzerProbe {
                call,
                gap,
                accepted,
            } => {
                println!("probe #{call}: gap {gap:?} (accepted: {accepted})");
            }
            SessionEvent::SubspaceGrown { index, subspace } => {
                println!(
                    "subspace #{index}: grown around gap {:.2} ({} oracle evals)",
                    subspace.seed_gap, subspace.evaluations
                );
            }
            SessionEvent::SignificanceVerdict {
                index, significant, ..
            } => {
                println!("subspace #{index}: significant = {significant}");
            }
            SessionEvent::ExplanationReady { index, finding } => {
                // The finding is usable NOW — no waiting for loop exit.
                println!(
                    "finding #{index} delivered: leaf mean gap {:.3}, explanation: {}",
                    finding.subspace.leaf_mean_gap,
                    finding.explanation.is_some()
                );
            }
            SessionEvent::InsignificantRetry { strikes, .. } => {
                println!("insignificant region excluded (strike {strikes})");
            }
            SessionEvent::CoverageEstimated { report } => {
                println!("coverage: recall {:.2}", report.risk_recall);
            }
            SessionEvent::Finished { reason, result } => {
                println!(
                    "finished: {reason:?} with {} finding(s) after {} analyzer call(s)",
                    result.findings.len(),
                    result.analyzer_calls
                );
            }
        }
    }
    assert!(!session.finished_naturally());

    // --- Pass 2: resume the checkpoint without the budget ----------------
    let checkpoint = session.checkpoint();
    println!("\n== resumed from checkpoint (no budget) ==");
    let mut resumed = build_session(
        domain,
        &config,
        SessionBudgets::unlimited(),
        CancelToken::new(),
        Some(checkpoint),
    )
    .expect("checkpoint resumes");
    let result = resumed.drain_with(|event| {
        if let SessionEvent::Finished { reason, .. } = event {
            assert!(matches!(
                reason,
                FinishReason::MaxSubspaces
                    | FinishReason::SpaceExhausted
                    | FinishReason::GapBelowThreshold
                    | FinishReason::InsignificantRetriesExhausted
            ));
        }
    });
    println!(
        "complete: {} finding(s), {} analyzer call(s), coverage recall {:?}",
        result.findings.len(),
        result.analyzer_calls,
        result.coverage.map(|c| c.risk_recall)
    );
}
