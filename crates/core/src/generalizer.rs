//! The generalizer (§5.4): from instance-based explanations to
//! instance-agnostic ones (Type 3).
//!
//! The paper sketches a grammar over instance features, e.g.
//!
//! ```text
//! increasing(P): ∀a,b ∈ P, |a| >= |b| -> gap(a) >= gap(b)
//! ```
//!
//! and imagines checking which predicates "are statistically significant"
//! across instances produced by the instance generator. We realize the
//! monotone fragment of that grammar: `increasing(f)` / `decreasing(f)`
//! over named instance features, validated with Kendall's τ (tie-adjusted,
//! one-sided) at the same α = 0.05 bar the subspace checker uses.

use serde::{Deserialize, Serialize};
use xplain_stats::rank::kendall_tau;
use xplain_stats::wilcoxon::Alternative;

/// One instance's worth of evidence: named features plus the measured gap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Observation {
    pub features: Vec<(String, f64)>,
    pub gap: f64,
}

/// A grammar predicate that held with significance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trend {
    Increasing,
    Decreasing,
}

/// A validated Type-3 finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    pub feature: String,
    pub trend: Trend,
    /// Kendall's τ-b between the feature and the gap.
    pub tau: f64,
    pub p_value: f64,
    pub n: usize,
}

impl Finding {
    /// Grammar-style rendering: `increasing(pinned_path_length)`.
    pub fn render(&self) -> String {
        let verb = match self.trend {
            Trend::Increasing => "increasing",
            Trend::Decreasing => "decreasing",
        };
        format!(
            "{verb}({}) [tau = {:.3}, p = {:.2e}, n = {}]",
            self.feature, self.tau, self.p_value, self.n
        )
    }
}

/// Generalizer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizerParams {
    pub alpha: f64,
    /// Require at least this many observations per feature.
    pub min_observations: usize,
}

impl Default for GeneralizerParams {
    fn default() -> Self {
        GeneralizerParams {
            alpha: 0.05,
            min_observations: 5,
        }
    }
}

/// Check every feature for significant monotone association with the gap.
pub fn generalize(observations: &[Observation], params: &GeneralizerParams) -> Vec<Finding> {
    // Collect feature names preserving first-seen order.
    let mut names: Vec<String> = Vec::new();
    for obs in observations {
        for (name, _) in &obs.features {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    }

    let mut findings = Vec::new();
    for name in &names {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for obs in observations {
            if let Some((_, v)) = obs.features.iter().find(|(n, _)| n == name) {
                xs.push(*v);
                ys.push(obs.gap);
            }
        }
        if xs.len() < params.min_observations {
            continue;
        }
        let Ok(inc) = kendall_tau(&xs, &ys, Alternative::Greater) else {
            continue;
        };
        if inc.p_value < params.alpha {
            findings.push(Finding {
                feature: name.clone(),
                trend: Trend::Increasing,
                tau: inc.statistic,
                p_value: inc.p_value,
                n: inc.n,
            });
            continue;
        }
        let Ok(dec) = kendall_tau(&xs, &ys, Alternative::Less) else {
            continue;
        };
        if dec.p_value < params.alpha {
            findings.push(Finding {
                feature: name.clone(),
                trend: Trend::Decreasing,
                tau: dec.statistic,
                p_value: dec.p_value,
                n: dec.n,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(feature: &str, v: f64, gap: f64) -> Observation {
        Observation {
            features: vec![(feature.to_string(), v)],
            gap,
        }
    }

    #[test]
    fn detects_increasing_trend() {
        let observations: Vec<Observation> = (1..=12)
            .map(|i| obs("pinned_path_length", i as f64, 10.0 * i as f64))
            .collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].trend, Trend::Increasing);
        assert!(findings[0]
            .render()
            .contains("increasing(pinned_path_length)"));
    }

    #[test]
    fn detects_decreasing_trend() {
        let observations: Vec<Observation> = (1..=12)
            .map(|i| obs("min_capacity", i as f64, 100.0 / i as f64))
            .collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].trend, Trend::Decreasing);
    }

    #[test]
    fn noise_produces_no_finding() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let gaps = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let observations: Vec<Observation> = vals
            .iter()
            .zip(&gaps)
            .map(|(&v, &g)| obs("noise", v, g))
            .collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn multiple_features_handled_independently() {
        let observations: Vec<Observation> = (1..=10)
            .map(|i| Observation {
                features: vec![
                    ("grows".to_string(), i as f64),
                    ("shrinks".to_string(), -(i as f64)),
                ],
                gap: i as f64,
            })
            .collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert_eq!(findings.len(), 2);
        let grows = findings.iter().find(|f| f.feature == "grows").unwrap();
        assert_eq!(grows.trend, Trend::Increasing);
        let shrinks = findings.iter().find(|f| f.feature == "shrinks").unwrap();
        assert_eq!(shrinks.trend, Trend::Decreasing);
    }

    #[test]
    fn too_few_observations_skipped() {
        let observations: Vec<Observation> =
            (1..=3).map(|i| obs("f", i as f64, i as f64)).collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert!(findings.is_empty());
    }

    #[test]
    fn missing_features_tolerated() {
        // Feature present in only some observations.
        let mut observations: Vec<Observation> =
            (1..=10).map(|i| obs("a", i as f64, i as f64)).collect();
        observations.push(Observation {
            features: vec![("b".to_string(), 1.0)],
            gap: 1.0,
        });
        let findings = generalize(&observations, &GeneralizerParams::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].feature, "a");
    }
}
