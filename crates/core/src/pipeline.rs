//! The XPlain pipeline (Fig. 3): analyzer → adversarial subspace
//! generator → significance checker → explainer, iterating with
//! exclusions until the input space holds no further adversarial regions.
//!
//! This module is deliberately domain-agnostic: it knows about gap
//! oracles, DSL mappers, feature maps, and finders — never about Demand
//! Pinning, first-fit, or any other concrete heuristic. Domains are bound
//! to the pipeline through the `xplain-runtime` crate's `Domain` trait
//! and registry; this keeps the loop reusable for any heuristic an
//! operator registers (the paper's §6 "it is important for XPlain to be
//! usable for many heuristics" requirement).

use crate::coverage::CoverageReport;
use crate::explainer::{DslMapper, ExplainerParams, Explanation};
use crate::features::FeatureMap;
use crate::session::SessionBuilder;
use crate::significance::{SignificanceParams, SignificanceReport};
use crate::subspace::{Subspace, SubspaceParams};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::GapOracle;
use xplain_analyzer::search::Adversarial;
use xplain_lp::SolverCounters;

/// Version stamp of the serialized [`PipelineResult`] layout. The result
/// store treats entries bearing any other version (including pre-stamp
/// entries, which deserialize to 0) as cache misses, so schema evolution
/// degrades to recomputation instead of misreads.
pub const PIPELINE_SCHEMA_VERSION: u32 = 1;

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Stop after this many subspaces.
    pub max_subspaces: usize,
    /// Stop when a newly found gap drops below this fraction of the first
    /// (largest) gap.
    pub min_gap_frac: f64,
    pub subspace: SubspaceParams,
    pub significance: SignificanceParams,
    pub explainer: ExplainerParams,
    pub seed: u64,
    /// Re-examination budget for regions that fail the significance test
    /// (the paper: "they need to include the number of times they are
    /// willing to re-examine an area to avoid an infinite cycle").
    pub max_insignificant_retries: usize,
    /// Samples for the final risk-surface coverage estimate (0 disables).
    pub coverage_samples: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_subspaces: 8,
            min_gap_frac: 0.2,
            subspace: SubspaceParams::default(),
            significance: SignificanceParams::default(),
            explainer: ExplainerParams::default(),
            seed: 0xD5,
            max_insignificant_retries: 2,
            coverage_samples: 2000,
        }
    }
}

/// One discovered subspace with its companion analyses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubspaceFinding {
    pub subspace: Subspace,
    pub significance: Option<SignificanceReport>,
    pub explanation: Option<Explanation>,
    /// The concrete adversarial instance that triggered significance —
    /// the analyzer's seed point and its measured gap. Optional with a
    /// serde default so results stored before this field existed remain
    /// readable (they read back as `None`). This is what the regression
    /// bank persists: the polytope describes *where* the heuristic
    /// underperforms, the witness is a replayable *proof*.
    #[serde(default)]
    pub witness: Option<Witness>,
}

/// A replayable adversarial input: the point the analyzer surfaced and
/// the gap it exhibited at discovery time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Witness {
    pub input: Vec<f64>,
    pub gap: f64,
}

/// Full pipeline output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// [`PIPELINE_SCHEMA_VERSION`] at production time. `#[serde(default)]`
    /// so pre-stamp JSON still parses — it reads back as 0, which the
    /// store rejects as a miss (forward/backward compat by recompute).
    #[serde(default)]
    pub schema_version: u32,
    /// Statistically significant subspaces, in discovery order (Type 1 +
    /// Type 2 outputs).
    pub findings: Vec<SubspaceFinding>,
    /// Regions found but rejected by the significance checker.
    pub rejected: usize,
    /// Analyzer invocations.
    pub analyzer_calls: usize,
    /// Monte-Carlo risk-surface coverage of the discovered subspaces
    /// (how much of §3's "full risk surface" was found).
    pub coverage: Option<CoverageReport>,
    /// Total gap-oracle evaluations across all phases.
    pub oracle_evaluations: usize,
    /// Wall-clock. `u64` (not `u128`): the JSON layer is f64-backed and
    /// rejects integers beyond 2^53, and stored results must stay
    /// serializable; 2^64 ms is ~585 million years of pipeline anyway.
    pub wall_time_ms: u64,
    /// LP/MILP work observed during this run (iterations, warm-start
    /// hits, branch-and-bound nodes). Measured as a delta of the
    /// process-wide `xplain_lp::counters`, so with concurrent pipelines
    /// in one process it is a superset; the batch executor normalizes
    /// the stored copy to zero (like `wall_time_ms`) and reports the
    /// measured delta on the job outcome instead.
    pub solver: SolverCounters,
}

/// A pluggable adversarial-input finder (exact MILP or search).
pub type Finder<'a> = dyn Fn(&[Polytope], &mut StdRng) -> Option<Adversarial> + 'a;

/// Run the full loop against an oracle.
///
/// `mapper` enables the explainer stage when provided; `features` controls
/// the tree-refinement space (identity(+sum) is the paper's default).
///
/// Since the streaming redesign this is a thin drain over
/// [`crate::session::AnalysisSession`] — the batch and streaming paths
/// share one state machine, so they cannot diverge (the replay-pin tests
/// hold the drained result byte-identical to the pre-redesign loop).
pub fn run_pipeline(
    oracle: &dyn GapOracle,
    mapper: Option<&dyn DslMapper>,
    features: &FeatureMap,
    finder: &Finder<'_>,
    config: &PipelineConfig,
) -> PipelineResult {
    let mut builder = SessionBuilder::new(oracle)
        .features(features.clone())
        .finder(move |excl: &[Polytope], rng: &mut StdRng| finder(excl, rng))
        .config(config.clone());
    if let Some(m) = mapper {
        builder = builder.mapper(m);
    }
    builder
        .build()
        .expect("a fresh, fully-specified session always builds")
        .drain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_analyzer::search::{find_adversarial, SearchOptions};

    /// A synthetic domain-free oracle: the gap is positive only inside a
    /// corner box of the unit square, peaking at the corner itself.
    struct CornerOracle;

    impl GapOracle for CornerOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            if x.iter().any(|v| !v.is_finite()) {
                return f64::NEG_INFINITY;
            }
            let inside = x[0] > 0.7 && x[1] > 0.7;
            if inside {
                (x[0] + x[1] - 1.4) * 10.0
            } else {
                0.0
            }
        }
    }

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            max_subspaces: 2,
            subspace: SubspaceParams {
                dkw_eps: 0.25,
                dkw_delta: 0.25,
                max_expansions: 6,
                tree_sample_factor: 3,
                ..Default::default()
            },
            significance: SignificanceParams {
                pairs: 60,
                ..Default::default()
            },
            explainer: ExplainerParams {
                samples: 150,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn corner_finder(
        oracle: &CornerOracle,
    ) -> impl Fn(&[Polytope], &mut StdRng) -> Option<Adversarial> + '_ {
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        move |excl: &[Polytope], rng: &mut StdRng| find_adversarial(oracle, excl, &search, rng)
    }

    #[test]
    fn generic_pipeline_finds_the_corner() {
        let oracle = CornerOracle;
        let features = FeatureMap::identity_with_sum(2, &oracle.dim_names());
        let finder = corner_finder(&oracle);
        let result = run_pipeline(&oracle, None, &features, &finder, &fast_config());
        assert!(
            !result.findings.is_empty(),
            "pipeline found no significant subspace (rejected {})",
            result.rejected
        );
        let f = &result.findings[0];
        // The seed should sit at (or near) the peak gap of 6.
        assert!(f.subspace.seed_gap > 4.0, "{}", f.subspace.seed_gap);
        assert!(f.significance.as_ref().unwrap().significant);
        // No mapper wired: Type 2 is absent by construction.
        assert!(f.explanation.is_none());
        assert!(result.oracle_evaluations > 0);
        assert!(result.analyzer_calls >= result.findings.len());
    }

    #[test]
    fn exclusions_accumulate_on_synthetic_oracle() {
        let oracle = CornerOracle;
        let features = FeatureMap::identity_with_sum(2, &oracle.dim_names());
        let finder = corner_finder(&oracle);
        let config = PipelineConfig {
            max_subspaces: 3,
            ..fast_config()
        };
        let result = run_pipeline(&oracle, None, &features, &finder, &config);
        if result.findings.len() >= 2 {
            let first = &result.findings[0].subspace;
            for later in &result.findings[1..] {
                assert!(
                    !first.contains(&later.subspace.seed),
                    "later seed inside earlier subspace"
                );
            }
        }
    }

    #[test]
    fn pipeline_result_wall_time_fits_json_safe_integers() {
        let oracle = CornerOracle;
        let features = FeatureMap::identity(2, &oracle.dim_names());
        let finder = corner_finder(&oracle);
        let result = run_pipeline(&oracle, None, &features, &finder, &fast_config());
        // u64 ms always fits the f64-backed JSON layer's 2^53 window for
        // any realistic runtime; the field must stay u64, not u128.
        assert!(result.wall_time_ms < (1u64 << 53));
    }
}
