//! The XPlain pipeline (Fig. 3): analyzer → adversarial subspace
//! generator → significance checker → explainer, iterating with
//! exclusions until the input space holds no further adversarial regions.

use crate::coverage::{estimate_coverage, CoverageReport};
use crate::explainer::{
    explain, DpDslMapper, DslMapper, ExplainerParams, Explanation, FfDslMapper,
};
use crate::features::FeatureMap;
use crate::significance::{check_significance, SignificanceParams, SignificanceReport};
use crate::subspace::{grow_subspace, Subspace, SubspaceParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::{DpOracle, FfOracle, GapOracle};
use xplain_analyzer::search::{dp_seeds, ff_seeds, find_adversarial, Adversarial, SearchOptions};
use xplain_domains::te::TeProblem;

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Stop after this many subspaces.
    pub max_subspaces: usize,
    /// Stop when a newly found gap drops below this fraction of the first
    /// (largest) gap.
    pub min_gap_frac: f64,
    pub subspace: SubspaceParams,
    pub significance: SignificanceParams,
    pub explainer: ExplainerParams,
    pub seed: u64,
    /// Re-examination budget for regions that fail the significance test
    /// (the paper: "they need to include the number of times they are
    /// willing to re-examine an area to avoid an infinite cycle").
    pub max_insignificant_retries: usize,
    /// Samples for the final risk-surface coverage estimate (0 disables).
    pub coverage_samples: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_subspaces: 8,
            min_gap_frac: 0.2,
            subspace: SubspaceParams::default(),
            significance: SignificanceParams::default(),
            explainer: ExplainerParams::default(),
            seed: 0xD5,
            max_insignificant_retries: 2,
            coverage_samples: 2000,
        }
    }
}

/// One discovered subspace with its companion analyses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubspaceFinding {
    pub subspace: Subspace,
    pub significance: Option<SignificanceReport>,
    pub explanation: Option<Explanation>,
}

/// Full pipeline output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Statistically significant subspaces, in discovery order (Type 1 +
    /// Type 2 outputs).
    pub findings: Vec<SubspaceFinding>,
    /// Regions found but rejected by the significance checker.
    pub rejected: usize,
    /// Analyzer invocations.
    pub analyzer_calls: usize,
    /// Monte-Carlo risk-surface coverage of the discovered subspaces
    /// (how much of §3's "full risk surface" was found).
    pub coverage: Option<CoverageReport>,
    /// Total gap-oracle evaluations across all phases.
    pub oracle_evaluations: usize,
    pub wall_time_ms: u128,
}

/// A pluggable adversarial-input finder (exact MILP or search).
pub type Finder<'a> = dyn Fn(&[Polytope], &mut StdRng) -> Option<Adversarial> + 'a;

/// Run the full loop against an oracle.
///
/// `mapper` enables the explainer stage when provided; `features` controls
/// the tree-refinement space (identity(+sum) is the paper's default).
pub fn run_pipeline(
    oracle: &dyn GapOracle,
    mapper: Option<&dyn DslMapper>,
    features: &FeatureMap,
    finder: &Finder<'_>,
    config: &PipelineConfig,
) -> PipelineResult {
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut exclusions: Vec<Polytope> = Vec::new();
    let mut findings: Vec<SubspaceFinding> = Vec::new();
    let mut rejected = 0usize;
    let mut analyzer_calls = 0usize;
    let mut oracle_evaluations = 0usize;
    let mut first_gap: Option<f64> = None;
    let mut insignificant_strikes = 0usize;

    while findings.len() < config.max_subspaces {
        analyzer_calls += 1;
        let Some(adv) = finder(&exclusions, &mut rng) else {
            break; // no adversarial input left outside the exclusions
        };
        let reference = *first_gap.get_or_insert(adv.gap);
        if adv.gap < config.min_gap_frac * reference {
            break; // remaining regions are below the interest threshold
        }

        let subspace = grow_subspace(oracle, &adv, features, &config.subspace, &mut rng);
        oracle_evaluations += subspace.evaluations;

        let significance =
            check_significance(oracle, &subspace, &config.significance, &mut rng).ok();
        oracle_evaluations += config.significance.pairs * 2;

        let significant = significance.as_ref().is_some_and(|r| r.significant);

        // Exclude the region either way so the finder moves on; track the
        // re-examination budget for insignificant ones.
        exclusions.push(subspace.polytope.clone());

        if significant {
            insignificant_strikes = 0;
            let explanation = mapper.map(|m| {
                explain(
                    m,
                    &subspace,
                    &config.explainer,
                    config.seed ^ (findings.len() as u64 + 1),
                )
            });
            if let Some(e) = &explanation {
                oracle_evaluations += e.samples_used * 2;
            }
            findings.push(SubspaceFinding {
                subspace,
                significance,
                explanation,
            });
        } else {
            rejected += 1;
            insignificant_strikes += 1;
            if insignificant_strikes > config.max_insignificant_retries {
                break;
            }
        }
    }

    // Final Type-1 quality metric: how much of the risk surface did the
    // discovered subspaces capture?
    let coverage = if config.coverage_samples > 0 && !findings.is_empty() {
        let threshold = config.min_gap_frac * first_gap.unwrap_or(0.0);
        let subspaces: Vec<Subspace> = findings.iter().map(|f| f.subspace.clone()).collect();
        let report = estimate_coverage(
            oracle,
            &subspaces,
            threshold.max(1e-9),
            config.coverage_samples,
            &mut rng,
        );
        oracle_evaluations += report.samples;
        Some(report)
    } else {
        None
    };

    PipelineResult {
        findings,
        rejected,
        analyzer_calls,
        coverage,
        oracle_evaluations,
        wall_time_ms: start.elapsed().as_millis(),
    }
}

/// Convenience: run the full pipeline for Demand Pinning on a TE problem,
/// using the pattern-search analyzer with DP-specific seeds.
pub fn run_dp_pipeline(
    problem: &TeProblem,
    threshold: f64,
    config: &PipelineConfig,
) -> PipelineResult {
    let oracle = DpOracle::new(problem.clone(), threshold);
    let mapper = DpDslMapper::new(problem.clone(), threshold);
    let names = oracle.dim_names();
    let features = FeatureMap::identity_with_sum(oracle.dims(), &names);
    let search = SearchOptions {
        seeds: dp_seeds(oracle.dims(), threshold, problem.demand_cap),
        ..Default::default()
    };
    let finder =
        move |excl: &[Polytope], rng: &mut StdRng| find_adversarial(&oracle, excl, &search, rng);
    let oracle2 = DpOracle::new(problem.clone(), threshold);
    run_pipeline(&oracle2, Some(&mapper), &features, &finder, config)
}

/// Convenience: run the full pipeline for first-fit bin packing.
pub fn run_ff_pipeline(n_balls: usize, n_bins: usize, config: &PipelineConfig) -> PipelineResult {
    let oracle = FfOracle::new(n_balls);
    let mapper = FfDslMapper::new(n_balls, n_bins, oracle.bin_capacity);
    let names = oracle.dim_names();
    let features = FeatureMap::identity_with_sum(n_balls, &names);
    let search = SearchOptions {
        seeds: ff_seeds(n_balls, oracle.bin_capacity, oracle.min_size),
        ..Default::default()
    };
    let inner_oracle = FfOracle::new(n_balls);
    let finder = move |excl: &[Polytope], rng: &mut StdRng| {
        find_adversarial(&inner_oracle, excl, &search, rng)
    };
    run_pipeline(&oracle, Some(&mapper), &features, &finder, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            max_subspaces: 2,
            subspace: SubspaceParams {
                dkw_eps: 0.25,
                dkw_delta: 0.25,
                max_expansions: 6,
                tree_sample_factor: 3,
                ..Default::default()
            },
            significance: SignificanceParams {
                pairs: 60,
                ..Default::default()
            },
            explainer: ExplainerParams {
                samples: 150,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn dp_pipeline_end_to_end() {
        let result = run_dp_pipeline(&TeProblem::fig1a(), 50.0, &fast_config());
        assert!(
            !result.findings.is_empty(),
            "pipeline found no significant subspace (rejected {})",
            result.rejected
        );
        let f = &result.findings[0];
        // The seed gap should be near the true maximum of 100.
        assert!(f.subspace.seed_gap > 80.0, "{}", f.subspace.seed_gap);
        // Significance at the paper's bar.
        let sig = f.significance.as_ref().unwrap();
        assert!(sig.significant);
        assert!(sig.test.p_value < 0.05);
        // Type-2 explanation present and pointing at the right edges.
        let ex = f.explanation.as_ref().unwrap();
        let short = ex.edges.iter().find(|e| e.label == "1~3->1-2-3").unwrap();
        let long = ex.edges.iter().find(|e| e.label == "1~3->1-4-5-3").unwrap();
        assert!(short.score < -0.5, "short score {}", short.score);
        assert!(long.score > 0.5, "long score {}", long.score);
    }

    #[test]
    fn ff_pipeline_end_to_end() {
        let result = run_ff_pipeline(4, 3, &fast_config());
        assert!(
            !result.findings.is_empty(),
            "pipeline found no significant subspace (rejected {})",
            result.rejected
        );
        let f = &result.findings[0];
        assert!(f.subspace.seed_gap >= 1.0);
        assert!(f.significance.as_ref().unwrap().significant);
    }

    #[test]
    fn exclusions_accumulate() {
        let config = PipelineConfig {
            max_subspaces: 3,
            ..fast_config()
        };
        let result = run_dp_pipeline(&TeProblem::fig1a(), 50.0, &config);
        // Later findings must not overlap the first subspace's seed.
        if result.findings.len() >= 2 {
            let first = &result.findings[0].subspace;
            for later in &result.findings[1..] {
                assert!(
                    !first.contains(&later.subspace.seed),
                    "later seed inside earlier subspace"
                );
            }
        }
        assert!(result.analyzer_calls >= result.findings.len());
        assert!(result.oracle_evaluations > 0);
    }
}
