//! Risk-surface coverage (Type 1 quality metric).
//!
//! §3 frames XPlain's promise as identifying "the full risk surface of
//! the heuristic (the set of inputs where the heuristic underperforms)".
//! This module measures how close a set of discovered subspaces comes:
//! Monte-Carlo estimates of
//!
//! * **volume coverage** — the fraction of the input box inside at least
//!   one subspace;
//! * **risk recall** — among sampled points whose gap exceeds a
//!   threshold, the fraction inside a discovered subspace (did we find
//!   the places that matter?);
//! * **risk precision** — among sampled points inside subspaces, the
//!   fraction whose gap actually exceeds the threshold (are the regions
//!   we report truly bad?).

use crate::subspace::Subspace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::oracle::GapOracle;

/// Coverage estimates (all in `[0, 1]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    pub volume_fraction: f64,
    pub risk_recall: f64,
    pub risk_precision: f64,
    /// Gap threshold used to classify a point as "bad".
    pub gap_threshold: f64,
    pub samples: usize,
    /// Raw counts for downstream re-aggregation.
    pub bad_points: usize,
    pub covered_points: usize,
}

/// Estimate coverage of `subspaces` over the oracle's input box.
///
/// `gap_threshold` classifies a sampled point as part of the risk
/// surface; a natural choice is a fraction of the largest discovered gap.
///
/// Volume fraction and recall come from uniform sampling of the whole
/// input box. Precision is estimated from a *dedicated* pass that
/// rejection-samples inside each subspace's bounding box — discovered
/// regions are often a sliver of the global volume, so the global pass
/// would see too few interior points to judge them.
pub fn estimate_coverage(
    oracle: &dyn GapOracle,
    subspaces: &[Subspace],
    gap_threshold: f64,
    samples: usize,
    rng: &mut impl Rng,
) -> CoverageReport {
    let bounds = oracle.bounds();
    let dims = bounds.len();

    // --- Global pass: volume fraction and recall -------------------------
    let mut covered = 0usize;
    let mut bad = 0usize;
    let mut bad_and_covered = 0usize;
    let mut valid = 0usize;

    for _ in 0..samples {
        let x: Vec<f64> = (0..dims)
            .map(|d| rng.gen_range(bounds[d].0..=bounds[d].1))
            .collect();
        let g = oracle.gap(&x);
        if !g.is_finite() {
            continue;
        }
        valid += 1;
        let inside = subspaces.iter().any(|s| s.contains(&x));
        let is_bad = g >= gap_threshold;
        if inside {
            covered += 1;
        }
        if is_bad {
            bad += 1;
            if inside {
                bad_and_covered += 1;
            }
        }
    }

    // --- Interior pass: precision ----------------------------------------
    let per_subspace = (samples / subspaces.len().max(1)).clamp(50, 1000);
    let mut interior = 0usize;
    let mut interior_bad = 0usize;
    for s in subspaces {
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < per_subspace && attempts < per_subspace * 40 {
            attempts += 1;
            let x: Vec<f64> = (0..dims)
                .map(|d| rng.gen_range(s.rough_lo[d]..=s.rough_hi[d]))
                .collect();
            if !s.contains(&x) {
                continue;
            }
            let g = oracle.gap(&x);
            if !g.is_finite() {
                continue;
            }
            produced += 1;
            interior += 1;
            if g >= gap_threshold {
                interior_bad += 1;
            }
        }
    }

    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };

    CoverageReport {
        volume_fraction: frac(covered, valid),
        risk_recall: frac(bad_and_covered, bad),
        risk_precision: frac(interior_bad, interior),
        gap_threshold,
        samples: valid + interior,
        bad_points: bad,
        covered_points: covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_analyzer::geometry::Polytope;

    struct BoxOracle;
    impl GapOracle for BoxOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            if x[0] >= 0.5 && x[1] >= 0.5 {
                10.0
            } else {
                0.0
            }
        }
    }

    fn subspace(lo: Vec<f64>, hi: Vec<f64>) -> Subspace {
        Subspace {
            polytope: Polytope::from_box(&lo, &hi),
            seed: lo.clone(),
            seed_gap: 10.0,
            rough_lo: lo,
            rough_hi: hi,
            predicate_descriptions: Vec::new(),
            leaf_mean_gap: 10.0,
            leaf_samples: 0,
            evaluations: 0,
        }
    }

    #[test]
    fn perfect_subspace_scores_high() {
        // The subspace IS the bad quadrant.
        let s = subspace(vec![0.5, 0.5], vec![1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let r = estimate_coverage(&BoxOracle, &[s], 5.0, 4000, &mut rng);
        assert!((r.volume_fraction - 0.25).abs() < 0.03, "{r:?}");
        assert!(r.risk_recall > 0.97, "{r:?}");
        assert!(r.risk_precision > 0.97, "{r:?}");
    }

    #[test]
    fn missing_subspace_scores_zero_recall() {
        // A subspace in the wrong corner.
        let s = subspace(vec![0.0, 0.0], vec![0.2, 0.2]);
        let mut rng = StdRng::seed_from_u64(2);
        let r = estimate_coverage(&BoxOracle, &[s], 5.0, 2000, &mut rng);
        assert!(r.risk_recall < 0.02, "{r:?}");
        assert_eq!(r.risk_precision, 0.0, "{r:?}");
    }

    #[test]
    fn partial_coverage_in_between() {
        // Covers half the bad quadrant.
        let s = subspace(vec![0.5, 0.5], vec![1.0, 0.75]);
        let mut rng = StdRng::seed_from_u64(3);
        let r = estimate_coverage(&BoxOracle, &[s], 5.0, 4000, &mut rng);
        assert!(r.risk_recall > 0.4 && r.risk_recall < 0.6, "{r:?}");
        assert!(r.risk_precision > 0.95, "{r:?}");
    }

    #[test]
    fn no_subspaces_zero_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = estimate_coverage(&BoxOracle, &[], 5.0, 500, &mut rng);
        assert_eq!(r.volume_fraction, 0.0);
        assert_eq!(r.risk_recall, 0.0);
        assert_eq!(r.covered_points, 0);
    }

    #[test]
    fn multiple_subspaces_union() {
        let a = subspace(vec![0.5, 0.5], vec![1.0, 0.75]);
        let b = subspace(vec![0.5, 0.75], vec![1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let r = estimate_coverage(&BoxOracle, &[a, b], 5.0, 4000, &mut rng);
        assert!(r.risk_recall > 0.95, "{r:?}");
    }
}
