//! The significance checker (§5.2).
//!
//! "The significance checker ensures the subspaces we find are
//! statistically significant: the points in a subspace cause a higher
//! performance gap compared to those immediately outside it. We only
//! report those subspaces with a low p-value (less than 0.05) as
//! adversarial. We use the Wilcoxon signed-rank test, which allows for
//! dependent samples."
//!
//! Dependence is by construction: each inside sample is paired with its
//! **mirror** — the same point reflected through the nearest face of the
//! rough box to just outside the subspace. The subspace fully determines
//! which member of the pair is in and which is out.

use crate::subspace::Subspace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::oracle::GapOracle;
use xplain_stats::wilcoxon::{wilcoxon_signed_rank, Alternative, WilcoxonResult};
use xplain_stats::StatsError;

/// Significance-checking configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignificanceParams {
    /// Number of inside/outside pairs.
    pub pairs: usize,
    /// Report threshold (the paper uses 0.05).
    pub alpha: f64,
    /// How far beyond the boundary the mirror lands, as a fraction of the
    /// box width in the reflected dimension.
    pub margin_frac: f64,
}

impl Default for SignificanceParams {
    fn default() -> Self {
        SignificanceParams {
            pairs: 200,
            alpha: 0.05,
            margin_frac: 0.25,
        }
    }
}

/// Outcome of a significance check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignificanceReport {
    pub test: WilcoxonResult,
    pub mean_inside: f64,
    pub mean_outside: f64,
    pub pairs_used: usize,
    pub significant: bool,
}

/// Check that gaps inside `subspace` stochastically dominate gaps just
/// outside it (one-sided Wilcoxon signed-rank on mirrored pairs).
pub fn check_significance(
    oracle: &dyn GapOracle,
    subspace: &Subspace,
    params: &SignificanceParams,
    rng: &mut impl Rng,
) -> Result<SignificanceReport, StatsError> {
    let bounds = oracle.bounds();
    let dims = bounds.len();
    let lo = &subspace.rough_lo;
    let hi = &subspace.rough_hi;

    let mut inside_gaps = Vec::with_capacity(params.pairs);
    let mut outside_gaps = Vec::with_capacity(params.pairs);
    let mut attempts = 0usize;
    let max_attempts = params.pairs * 30;

    while inside_gaps.len() < params.pairs && attempts < max_attempts {
        attempts += 1;
        // Draw inside the polytope (rejection-sample the rough box).
        let x: Vec<f64> = (0..dims).map(|d| rng.gen_range(lo[d]..=hi[d])).collect();
        if !subspace.contains(&x) {
            continue;
        }

        // Mirror: push the point just past the nearest box face, trying
        // dimensions in order of proximity until the result leaves the
        // subspace but stays in the domain.
        let mut dims_by_proximity: Vec<(f64, usize, bool)> = (0..dims)
            .flat_map(|d| {
                let width = (hi[d] - lo[d]).max(1e-12);
                [
                    ((x[d] - lo[d]) / width, d, false), // near the low face
                    ((hi[d] - x[d]) / width, d, true),  // near the high face
                ]
            })
            .collect();
        dims_by_proximity
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut mirror: Option<Vec<f64>> = None;
        for &(_, d, high_face) in &dims_by_proximity {
            let width = (hi[d] - lo[d]).max(1e-12);
            let offset = params.margin_frac * width * (0.5 + rng.gen::<f64>());
            let mut y = x.clone();
            y[d] = if high_face {
                hi[d] + offset
            } else {
                lo[d] - offset
            };
            if y[d] < bounds[d].0 || y[d] > bounds[d].1 {
                continue; // would leave the domain
            }
            if subspace.contains(&y) {
                continue; // still inside (tree-carved regions)
            }
            mirror = Some(y);
            break;
        }
        let Some(y) = mirror else {
            continue;
        };

        let gi = oracle.gap(&x);
        let go = oracle.gap(&y);
        if gi.is_finite() && go.is_finite() {
            inside_gaps.push(gi);
            outside_gaps.push(go);
        }
    }

    if inside_gaps.is_empty() {
        return Err(StatsError::NoData);
    }

    let test = wilcoxon_signed_rank(&inside_gaps, &outside_gaps, Alternative::Greater)?;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Ok(SignificanceReport {
        significant: test.p_value < params.alpha,
        mean_inside: mean(&inside_gaps),
        mean_outside: mean(&outside_gaps),
        pairs_used: inside_gaps.len(),
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureMap;
    use crate::subspace::{grow_subspace, SubspaceParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_analyzer::search::Adversarial;

    struct BoxOracle;
    impl GapOracle for BoxOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            if x[0] >= 0.6 && x[0] <= 0.9 && x[1] >= 0.1 && x[1] <= 0.4 {
                10.0
            } else {
                0.0
            }
        }
    }

    fn grown_subspace(seed_val: u64) -> Subspace {
        let seed = Adversarial {
            input: vec![0.75, 0.25],
            gap: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(seed_val);
        let fm = FeatureMap::identity(2, &[]);
        let params = SubspaceParams {
            dkw_eps: 0.2,
            dkw_delta: 0.2,
            ..Default::default()
        };
        grow_subspace(&BoxOracle, &seed, &fm, &params, &mut rng)
    }

    #[test]
    fn true_subspace_is_significant() {
        let s = grown_subspace(1);
        let mut rng = StdRng::seed_from_u64(2);
        let report =
            check_significance(&BoxOracle, &s, &SignificanceParams::default(), &mut rng).unwrap();
        assert!(report.significant, "p = {}", report.test.p_value);
        assert!(report.test.p_value < 1e-6);
        assert!(report.mean_inside > report.mean_outside);
    }

    #[test]
    fn flat_oracle_not_significant() {
        struct Flat;
        impl GapOracle for Flat {
            fn dims(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0); 2]
            }
            fn gap(&self, _: &[f64]) -> f64 {
                1.0 // same gap everywhere: no contrast
            }
        }
        let s = grown_subspace(3);
        let mut rng = StdRng::seed_from_u64(4);
        // All paired differences are zero -> NoData (no evidence), which
        // the pipeline treats as not significant.
        let r = check_significance(&Flat, &s, &SignificanceParams::default(), &mut rng);
        assert!(matches!(r, Err(StatsError::NoData)));
    }

    #[test]
    fn anti_subspace_is_not_significant() {
        // Gap is higher OUTSIDE the box: the one-sided test must not fire.
        struct Inverted;
        impl GapOracle for Inverted {
            fn dims(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0); 2]
            }
            fn gap(&self, x: &[f64]) -> f64 {
                if x[0] >= 0.6 && x[0] <= 0.9 && x[1] >= 0.1 && x[1] <= 0.4 {
                    0.0
                } else {
                    10.0
                }
            }
        }
        let s = grown_subspace(5);
        let mut rng = StdRng::seed_from_u64(6);
        let report =
            check_significance(&Inverted, &s, &SignificanceParams::default(), &mut rng).unwrap();
        assert!(!report.significant, "p = {}", report.test.p_value);
    }

    #[test]
    fn pair_count_respected() {
        let s = grown_subspace(7);
        let mut rng = StdRng::seed_from_u64(8);
        let params = SignificanceParams {
            pairs: 50,
            ..Default::default()
        };
        let report = check_significance(&BoxOracle, &s, &params, &mut rng).unwrap();
        assert!(report.pairs_used <= 50);
        assert!(report.pairs_used >= 30, "{}", report.pairs_used);
    }
}
