//! The adversarial subspace generator (§5.2, Fig. 5).
//!
//! From a single adversarial point found by the analyzer:
//!
//! 1. start with a small cube around the point;
//! 2. treat the `2n` axis-aligned **slices** (slabs just beyond each face)
//!    as expansion directions; sample each slice — the per-slice sample
//!    count comes from the DKW inequality — and expand while the density
//!    of *bad* samples (gap above a fraction of the seed gap) stays high;
//!    stop a direction when its density drops (Fig. 5a);
//! 3. refine the rough cube with a regression tree trained to predict the
//!    gap, keeping the root-to-leaf path containing the seed (Fig. 5b);
//! 4. report the polytope `[I; -I] x <= [hi; -lo]` ∩ tree predicates —
//!    exactly the `A/T/V` form of Fig. 5c.

use crate::features::FeatureMap;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::GapOracle;
use xplain_analyzer::search::Adversarial;
use xplain_stats::dkw::dkw_samples;
use xplain_stats::tree::{RegressionTree, TreeParams};

/// Tuning for the subspace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubspaceParams {
    /// Initial cube half-width, as a fraction of each dimension's range.
    pub initial_frac: f64,
    /// Slice thickness per expansion, as a fraction of the range.
    pub expand_frac: f64,
    /// A sample is *bad* when `gap >= bad_frac * seed_gap`.
    pub bad_frac: f64,
    /// Keep expanding a direction while its bad-sample density is at
    /// least this.
    pub density_threshold: f64,
    /// DKW accuracy for the per-slice density estimate.
    pub dkw_eps: f64,
    /// DKW confidence for the per-slice density estimate.
    pub dkw_delta: f64,
    /// Cap on expansions per direction (safety valve).
    pub max_expansions: usize,
    /// Regression-tree refinement settings.
    pub tree: TreeParams,
    /// Samples drawn inside the rough box to train the tree, as a
    /// multiple of the per-slice DKW count.
    pub tree_sample_factor: usize,
    /// Skip step 3 entirely (rough box only).
    pub refine_with_tree: bool,
}

impl Default for SubspaceParams {
    fn default() -> Self {
        SubspaceParams {
            initial_frac: 0.05,
            expand_frac: 0.05,
            bad_frac: 0.5,
            density_threshold: 0.5,
            dkw_eps: 0.15,
            dkw_delta: 0.1,
            max_expansions: 20,
            tree: TreeParams {
                max_depth: 4,
                min_leaf: 12,
                min_gain: 1e-9,
            },
            tree_sample_factor: 6,
            refine_with_tree: true,
        }
    }
}

/// A discovered adversarial subspace, in the paper's reporting form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subspace {
    /// The analyzer's adversarial point this subspace grew from.
    pub seed: Vec<f64>,
    pub seed_gap: f64,
    /// Rough cube from the slice-expansion phase.
    pub rough_lo: Vec<f64>,
    pub rough_hi: Vec<f64>,
    /// Tree-path predicates, rendered over the feature map.
    pub predicate_descriptions: Vec<String>,
    /// The final region: rough box ∩ tree half-spaces (Fig. 5c).
    pub polytope: Polytope,
    /// Mean gap and sample count of the tree leaf containing the seed.
    pub leaf_mean_gap: f64,
    pub leaf_samples: usize,
    /// Total oracle evaluations spent growing this subspace.
    pub evaluations: usize,
}

impl Subspace {
    /// A box-only subspace around a known adversarial point, skipping the
    /// generator entirely — for hand-specified regions (the Fig. 4
    /// reproductions pin the paper's exact subspaces this way) and tests.
    pub fn from_rough_box(lo: Vec<f64>, hi: Vec<f64>, seed: Vec<f64>, seed_gap: f64) -> Self {
        Subspace {
            polytope: Polytope::from_box(&lo, &hi),
            rough_lo: lo,
            rough_hi: hi,
            seed_gap,
            seed,
            predicate_descriptions: Vec::new(),
            leaf_mean_gap: seed_gap,
            leaf_samples: 0,
            evaluations: 0,
        }
    }

    /// Membership test.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.polytope.contains(x, 1e-9)
    }

    /// Center of the rough box.
    pub fn center(&self) -> Vec<f64> {
        self.rough_lo
            .iter()
            .zip(&self.rough_hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }
}

/// Grow a subspace around `seed` (§5.2 steps 1–2 plus tree refinement).
///
/// `features` drives the tree refinement; identity features reproduce raw
/// coordinate predicates, identity+sum reproduces Fig. 5b.
pub fn grow_subspace(
    oracle: &dyn GapOracle,
    seed: &Adversarial,
    features: &FeatureMap,
    params: &SubspaceParams,
    rng: &mut impl Rng,
) -> Subspace {
    let bounds = oracle.bounds();
    let dims = bounds.len();
    let ranges: Vec<f64> = bounds.iter().map(|(lo, hi)| hi - lo).collect();
    let bad_gap = (params.bad_frac * seed.gap).max(1e-12);
    let n_slice = dkw_samples(params.dkw_eps, params.dkw_delta);
    let mut evaluations = 0usize;

    // Step 1: initial cube around the seed.
    let mut lo: Vec<f64> = (0..dims)
        .map(|d| (seed.input[d] - params.initial_frac * ranges[d]).max(bounds[d].0))
        .collect();
    let mut hi: Vec<f64> = (0..dims)
        .map(|d| (seed.input[d] + params.initial_frac * ranges[d]).min(bounds[d].1))
        .collect();

    // All samples seen (reused to train the tree).
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();

    // Step 2: slice-by-slice expansion.
    // Directions: (dim, +1) grows hi, (dim, -1) grows lo.
    let mut alive: Vec<bool> = (0..2 * dims).map(|_| true).collect();
    let mut expansions = vec![0usize; 2 * dims];
    loop {
        let mut any = false;
        for dir in 0..2 * dims {
            if !alive[dir] {
                continue;
            }
            let d = dir / 2;
            let positive = dir % 2 == 0;
            if expansions[d * 2 + if positive { 0 } else { 1 }] >= params.max_expansions {
                alive[dir] = false;
                continue;
            }
            let step = params.expand_frac * ranges[d];
            // The candidate slice spans the current box in every other
            // dimension and the new slab in dimension d.
            let (slab_lo, slab_hi) = if positive {
                let new_hi = (hi[d] + step).min(bounds[d].1);
                if new_hi - hi[d] < 1e-12 {
                    alive[dir] = false;
                    continue;
                }
                (hi[d], new_hi)
            } else {
                let new_lo = (lo[d] - step).max(bounds[d].0);
                if lo[d] - new_lo < 1e-12 {
                    alive[dir] = false;
                    continue;
                }
                (new_lo, lo[d])
            };

            // Sample the slice.
            let mut bad = 0usize;
            for _ in 0..n_slice {
                let mut x: Vec<f64> = (0..dims).map(|dd| rng.gen_range(lo[dd]..=hi[dd])).collect();
                x[d] = rng.gen_range(slab_lo..=slab_hi);
                let g = oracle.gap(&x);
                evaluations += 1;
                if g.is_finite() {
                    if g >= bad_gap {
                        bad += 1;
                    }
                    xs.push(x);
                    ys.push(g.max(0.0));
                }
            }
            let density = bad as f64 / n_slice as f64;
            if density >= params.density_threshold {
                if positive {
                    hi[d] = slab_hi;
                } else {
                    lo[d] = slab_lo;
                }
                expansions[dir] += 1;
                any = true;
            } else {
                alive[dir] = false;
            }
        }
        if !any {
            break;
        }
    }

    // Fill samples inside the final rough box for tree training.
    let fill = params.tree_sample_factor * n_slice;
    for _ in 0..fill {
        let x: Vec<f64> = (0..dims).map(|d| rng.gen_range(lo[d]..=hi[d])).collect();
        let g = oracle.gap(&x);
        evaluations += 1;
        if g.is_finite() {
            xs.push(x);
            ys.push(g.max(0.0));
        }
    }
    // Make sure the seed itself is in the training set.
    xs.push(seed.input.clone());
    ys.push(seed.gap);

    let mut polytope = Polytope::from_box(&lo, &hi);
    let mut predicate_descriptions = Vec::new();
    let mut leaf_mean_gap = seed.gap;
    let mut leaf_samples = xs.len();

    // Step 3: regression-tree refinement in feature space.
    if params.refine_with_tree && xs.len() >= 2 * params.tree.min_leaf {
        let feat_rows: Vec<Vec<f64>> = xs.iter().map(|x| features.eval(x)).collect();
        if let Ok(tree) = RegressionTree::fit(&feat_rows, &ys, &params.tree) {
            let seed_feats = features.eval(&seed.input);
            for pred in tree.path_for(&seed_feats) {
                let f = &features.features[pred.feature];
                polytope.intersect(f.halfspace(pred.threshold, pred.leq));
                predicate_descriptions.push(format!(
                    "{} {} {:.4}",
                    f.name,
                    if pred.leq { "<=" } else { ">" },
                    pred.threshold
                ));
            }
            let (mean, n) = tree.leaf_stats(&seed_feats);
            leaf_mean_gap = mean;
            leaf_samples = n;
        }
    }

    Subspace {
        seed: seed.input.clone(),
        seed_gap: seed.gap,
        rough_lo: lo,
        rough_hi: hi,
        predicate_descriptions,
        polytope,
        leaf_mean_gap,
        leaf_samples,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic oracle with a known adversarial box: gap is 10 inside
    /// `[0.6, 0.9] x [0.1, 0.4]`, else 0.
    struct BoxOracle;
    impl GapOracle for BoxOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            if x[0] >= 0.6 && x[0] <= 0.9 && x[1] >= 0.1 && x[1] <= 0.4 {
                10.0
            } else {
                0.0
            }
        }
    }

    fn params_fast() -> SubspaceParams {
        SubspaceParams {
            dkw_eps: 0.2,
            dkw_delta: 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_known_box() {
        let seed = Adversarial {
            input: vec![0.75, 0.25],
            gap: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let fm = FeatureMap::identity(2, &[]);
        let s = grow_subspace(&BoxOracle, &seed, &fm, &params_fast(), &mut rng);
        // The rough box must cover most of the true box and not leak far
        // outside it.
        assert!(s.rough_lo[0] <= 0.67 && s.rough_hi[0] >= 0.83, "{s:?}");
        assert!(s.rough_lo[1] <= 0.17 && s.rough_hi[1] >= 0.33, "{s:?}");
        assert!(s.rough_lo[0] >= 0.45, "leaked left: {:?}", s.rough_lo);
        assert!(s.rough_hi[0] <= 1.0);
        // Seed stays inside the final polytope.
        assert!(s.contains(&seed.input));
        // The leaf containing the seed should have a high mean gap.
        assert!(s.leaf_mean_gap > 5.0, "{}", s.leaf_mean_gap);
    }

    #[test]
    fn expansion_stops_at_bounds() {
        // Seed near the domain corner: expansion must clip, not panic.
        struct CornerOracle;
        impl GapOracle for CornerOracle {
            fn dims(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0); 2]
            }
            fn gap(&self, x: &[f64]) -> f64 {
                if x[0] >= 0.9 && x[1] >= 0.9 {
                    5.0
                } else {
                    0.0
                }
            }
        }
        let seed = Adversarial {
            input: vec![0.97, 0.97],
            gap: 5.0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let fm = FeatureMap::identity(2, &[]);
        let s = grow_subspace(&CornerOracle, &seed, &fm, &params_fast(), &mut rng);
        assert!(s.rough_hi[0] <= 1.0 + 1e-12);
        assert!(s.rough_hi[1] <= 1.0 + 1e-12);
        assert!(s.contains(&[0.97, 0.97]));
    }

    #[test]
    fn no_tree_mode_keeps_plain_box() {
        let seed = Adversarial {
            input: vec![0.75, 0.25],
            gap: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let fm = FeatureMap::identity(2, &[]);
        let params = SubspaceParams {
            refine_with_tree: false,
            ..params_fast()
        };
        let s = grow_subspace(&BoxOracle, &seed, &fm, &params, &mut rng);
        assert!(s.predicate_descriptions.is_empty());
        // Box polytope: 2 uppers + 2 lowers.
        assert_eq!(s.polytope.halfspaces.len(), 4);
    }

    #[test]
    fn half_space_count_includes_tree_predicates() {
        let seed = Adversarial {
            input: vec![0.75, 0.25],
            gap: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(10);
        let fm = FeatureMap::identity_with_sum(2, &[]);
        let s = grow_subspace(&BoxOracle, &seed, &fm, &params_fast(), &mut rng);
        assert!(s.polytope.halfspaces.len() >= 4);
        assert_eq!(
            s.polytope.halfspaces.len(),
            4 + s.predicate_descriptions.len()
        );
    }

    #[test]
    fn evaluation_budget_reported() {
        let seed = Adversarial {
            input: vec![0.75, 0.25],
            gap: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let fm = FeatureMap::identity(2, &[]);
        let s = grow_subspace(&BoxOracle, &seed, &fm, &params_fast(), &mut rng);
        assert!(s.evaluations > 0);
    }
}
