//! The streaming analysis session — XPlain's iterative loop (Fig. 3)
//! exposed as a resumable state machine instead of a blocking call.
//!
//! The pipeline is inherently incremental: analyzer probe → subspace
//! growth → significance verdict → explanation, repeating under
//! exclusions. [`AnalysisSession`] walks exactly that loop one *event* at
//! a time, so callers see each significant [`SubspaceFinding`] the moment
//! it clears the significance checker rather than at loop exit (X-SYS's
//! "explanations must arrive progressively" argument, and the shape
//! Ignatiev-style validate/repair/refine loops assume).
//!
//! * **Events** — [`SessionEvent`]: a typed stream consumed either as a
//!   pull iterator ([`AnalysisSession::next_event`], `Iterator` impl) or
//!   through an observer callback ([`AnalysisSession::drain_with`]).
//! * **Budgets** — [`SessionBudgets`]: wall-clock deadline, analyzer-call
//!   cap, and solver-iteration cap, all enforced at event boundaries (the
//!   analyzer's own search additionally honors a cooperative stop flag;
//!   see `xplain_analyzer::search::SearchOptions::stop`).
//! * **Cancellation** — [`CancelToken`]: cooperative, checked between
//!   events and inside the analyzer search. A cancelled (or
//!   budget-stopped) session emits a terminal [`SessionEvent::Finished`]
//!   carrying the partial result, and stays resumable.
//! * **Resume** — [`AnalysisSession::checkpoint`] snapshots the complete
//!   loop state (including the RNG mid-stream) as a serializable
//!   [`SessionCheckpoint`]; [`SessionBuilder::resume_from`] continues it.
//!   Because every state transition is committed only at event
//!   boundaries, a run interrupted after any event and resumed from its
//!   checkpoint produces a final [`PipelineResult`] byte-identical to the
//!   uninterrupted run (modulo the `wall_time_ms` execution-metadata
//!   field) — the contract the determinism-under-interruption tests pin.
//!
//! `run_pipeline` is now a thin drain over this machine, so the batch
//! and streaming paths cannot diverge.

use crate::coverage::{estimate_coverage, CoverageReport};
use crate::explainer::{explain, DslMapper};
use crate::features::FeatureMap;
use crate::pipeline::{PipelineConfig, PipelineResult, SubspaceFinding, PIPELINE_SCHEMA_VERSION};
use crate::significance::{check_significance, SignificanceReport};
use crate::subspace::{grow_subspace, Subspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::GapOracle;
use xplain_analyzer::search::{Adversarial, StopFlag};
use xplain_lp::SolverCounters;

/// Version stamp of the serialized [`SessionCheckpoint`] layout. Loaders
/// refuse other versions ([`SessionError::SchemaVersion`]) rather than
/// misinterpreting state; stores treat them as absent checkpoints.
pub const SESSION_CHECKPOINT_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------- errors

/// Structured errors for the session stack — replaces the stringly-typed
/// errors the executor and manifest parser used to hand around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionError {
    /// A manifest or CLI named a domain the registry does not know.
    UnknownDomain { id: String },
    /// A JSONL manifest line failed to parse. `line` is 1-based;
    /// `snippet` is the offending text (truncated for display).
    Manifest {
        line: usize,
        snippet: String,
        message: String,
    },
    /// A checkpoint exists but its contents are unusable.
    Checkpoint { message: String },
    /// A checkpoint (or stored payload) was written by an incompatible
    /// schema version.
    SchemaVersion { found: u32, expected: u32 },
    /// The session was assembled inconsistently (e.g. no finder).
    InvalidConfig { message: String },
    /// The session (or the stage driving it) failed unexpectedly — e.g.
    /// a panic caught at an execution boundary so one bad job cannot
    /// take a long-lived worker down with it.
    Internal { message: String },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownDomain { id } => write!(f, "unknown domain id '{id}'"),
            SessionError::Manifest {
                line,
                snippet,
                message,
            } => write!(f, "manifest line {line}: {message} (near `{snippet}`)"),
            SessionError::Checkpoint { message } => {
                write!(f, "unusable session checkpoint: {message}")
            }
            SessionError::SchemaVersion { found, expected } => write!(
                f,
                "checkpoint schema version {found} is not supported (expected {expected})"
            ),
            SessionError::InvalidConfig { message } => {
                write!(f, "invalid session configuration: {message}")
            }
            SessionError::Internal { message } => {
                write!(f, "internal session failure: {message}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

// --------------------------------------------------------------- budgets

/// Execution budgets, all optional and all enforced at event boundaries
/// (granularity: one pipeline stage). A session stopped by a budget emits
/// [`SessionEvent::Finished`] with the matching [`FinishReason`], carries
/// the partial result, and remains resumable from its checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionBudgets {
    /// Cumulative wall-clock cap in milliseconds, counted across resumed
    /// segments (a session resumed after 300ms of a 500ms deadline has
    /// 200ms left, regardless of how long the checkpoint sat on disk).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Cap on analyzer invocations (finder calls).
    #[serde(default)]
    pub max_analyzer_calls: Option<usize>,
    /// Cap on LP simplex iterations (primal + dual) attributed to the
    /// session.
    ///
    /// Attribution rides the process-global `xplain_lp` counters: exact
    /// when nothing else solves concurrently, a *superset* otherwise —
    /// so under a multi-worker executor, concurrent jobs' iterations
    /// count against this cap too and it fires earlier (and at a
    /// run-dependent event) compared to a serial run. The final result
    /// is unaffected — budget-limited partials never enter the result
    /// cache, and resuming to natural completion converges on the same
    /// bytes — but for a precisely-attributed cap, run with 1 worker.
    #[serde(default)]
    pub max_solver_iterations: Option<u64>,
}

impl SessionBudgets {
    /// No limits — the batch default.
    pub fn unlimited() -> Self {
        SessionBudgets::default()
    }

    pub fn is_unlimited(&self) -> bool {
        *self == SessionBudgets::default()
    }
}

/// Cooperative cancellation handle. Clone it, hand one side to the
/// session and keep the other; [`CancelToken::cancel`] makes the session
/// finish (with reason [`FinishReason::Cancelled`]) at its next check —
/// between events, or inside the analyzer search via [`StopFlag`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, in the shape the analyzer's search accepts
    /// (`SearchOptions::stop`) so one token interrupts both layers.
    pub fn stop_flag(&self) -> StopFlag {
        self.flag.clone()
    }
}

// ---------------------------------------------------------------- events

/// Why a session's event stream terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinishReason {
    /// The analyzer found no adversarial input outside the exclusions.
    SpaceExhausted,
    /// The newest gap fell below `min_gap_frac` of the first gap.
    GapBelowThreshold,
    /// `max_subspaces` significant findings collected.
    MaxSubspaces,
    /// Too many consecutive insignificant regions
    /// (`max_insignificant_retries`).
    InsignificantRetriesExhausted,
    /// [`SessionBudgets::deadline_ms`] elapsed.
    DeadlineExceeded,
    /// [`SessionBudgets::max_analyzer_calls`] reached.
    AnalyzerBudgetExhausted,
    /// [`SessionBudgets::max_solver_iterations`] reached.
    SolverBudgetExhausted,
    /// The [`CancelToken`] fired.
    Cancelled,
}

impl FinishReason {
    /// Natural completions ran the loop to its own stopping rule (and the
    /// coverage estimate); the rest stopped early, left `coverage` unset,
    /// and can be resumed from a checkpoint.
    pub fn is_natural(&self) -> bool {
        matches!(
            self,
            FinishReason::SpaceExhausted
                | FinishReason::GapBelowThreshold
                | FinishReason::MaxSubspaces
                | FinishReason::InsignificantRetriesExhausted
        )
    }
}

/// One step of the iterate-and-exclude loop, emitted as it completes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The analyzer ran. `gap` is `None` when no adversarial input was
    /// found; `accepted` is false when the probe ends the loop (space
    /// exhausted, or gap below the interest threshold).
    AnalyzerProbe {
        call: usize,
        gap: Option<f64>,
        accepted: bool,
    },
    /// The subspace generator grew a region around the probe point.
    /// `index` is the would-be finding index (== number of findings so
    /// far).
    SubspaceGrown { index: usize, subspace: Subspace },
    /// The significance checker ruled on the grown region.
    SignificanceVerdict {
        index: usize,
        significant: bool,
        report: Option<SignificanceReport>,
    },
    /// A significant finding is complete — delivered the moment it
    /// clears the checker (plus the explainer, when the domain has a DSL
    /// mapper; `finding.explanation` is `None` otherwise).
    ExplanationReady {
        index: usize,
        finding: SubspaceFinding,
    },
    /// An insignificant region was excluded and the re-examination budget
    /// ticked down. `exhausted` means the retry budget is spent and the
    /// loop ends.
    InsignificantRetry { strikes: usize, exhausted: bool },
    /// The final Monte-Carlo risk-surface coverage estimate (natural
    /// completions only, and only when configured).
    CoverageEstimated { report: CoverageReport },
    /// Terminal event: the assembled [`PipelineResult`] (partial when the
    /// reason is non-natural) and why the stream ended. Always the last
    /// event of a stream.
    Finished {
        reason: FinishReason,
        result: PipelineResult,
    },
}

impl SessionEvent {
    /// Short machine-friendly tag (NDJSON consumers key on this).
    pub fn kind(&self) -> &'static str {
        match self {
            SessionEvent::AnalyzerProbe { .. } => "analyzer_probe",
            SessionEvent::SubspaceGrown { .. } => "subspace_grown",
            SessionEvent::SignificanceVerdict { .. } => "significance_verdict",
            SessionEvent::ExplanationReady { .. } => "explanation_ready",
            SessionEvent::InsignificantRetry { .. } => "insignificant_retry",
            SessionEvent::CoverageEstimated { .. } => "coverage_estimated",
            SessionEvent::Finished { .. } => "finished",
        }
    }
}

// ------------------------------------------------------------ checkpoint

/// Where the loop stands, between two events. Payload-carrying phases
/// persist the intermediate artifact so a resumed session continues
/// *mid-iteration*, not from the top of the loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Phase {
    /// Next: run the analyzer (or conclude the loop).
    Probe,
    /// Next: grow a subspace around this probe.
    Grow { adv: Adversarial },
    /// Next: significance-check this subspace.
    Check { subspace: Subspace },
    /// Next: bookkeeping for an insignificant region.
    Retry,
    /// Next: explain and deliver this significant finding.
    Explain {
        subspace: Subspace,
        significance: Option<SignificanceReport>,
    },
    /// Next: the final coverage estimate (if configured), then finish.
    Coverage { reason: FinishReason },
    /// Next: emit [`SessionEvent::Finished`] (idempotent on resume).
    Finishing { reason: FinishReason },
}

/// Full serialized bit-stream state of the RNG, hex-encoded because the
/// state words are full-range `u64`s and the JSON layer is f64-backed
/// (integers beyond 2^53 do not survive it).
mod rng_state_serde {
    pub fn serialize(words: &[u64; 4]) -> serde::Value {
        serde::Value::Seq(
            words
                .iter()
                .map(|w| serde::Value::Str(format!("{w:016x}")))
                .collect(),
        )
    }

    pub fn deserialize(v: &serde::Value) -> Result<[u64; 4], serde::de::Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| serde::de::Error::custom("rng state: expected sequence"))?;
        if seq.len() != 4 {
            return Err(serde::de::Error::custom(format!(
                "rng state: expected 4 words, got {}",
                seq.len()
            )));
        }
        let mut words = [0u64; 4];
        for (i, w) in seq.iter().enumerate() {
            let s = w
                .as_str()
                .ok_or_else(|| serde::de::Error::custom("rng state: expected hex string"))?;
            words[i] = u64::from_str_radix(s, 16)
                .map_err(|e| serde::de::Error::custom(format!("rng state word {i}: {e}")))?;
        }
        Ok(words)
    }
}

/// Complete, serializable session state at an event boundary.
///
/// A checkpoint restored through [`SessionBuilder::resume_from`] (with
/// the same domain components and config) continues the event stream
/// exactly where it stopped; the final result is byte-identical to an
/// uninterrupted run apart from `wall_time_ms`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// [`SESSION_CHECKPOINT_SCHEMA_VERSION`] at write time.
    #[serde(default)]
    pub schema_version: u32,
    /// The config the session runs under (a resumed session always uses
    /// the checkpoint's config — budgets, by contrast, are supplied
    /// fresh by the builder).
    pub config: PipelineConfig,
    phase: Phase,
    exclusions: Vec<Polytope>,
    findings: Vec<SubspaceFinding>,
    rejected: usize,
    analyzer_calls: usize,
    oracle_evaluations: usize,
    first_gap: Option<f64>,
    insignificant_strikes: usize,
    coverage: Option<CoverageReport>,
    #[serde(with = "rng_state_serde")]
    rng_state: [u64; 4],
    /// Cumulative wall-clock across all segments, microseconds.
    elapsed_us: u64,
    /// Cumulative solver work across all segments.
    solver: SolverCounters,
    /// Events emitted so far (diagnostics; not part of the replay state).
    pub events_emitted: u64,
}

impl SessionCheckpoint {
    fn fresh(config: PipelineConfig) -> Self {
        let rng_state = StdRng::seed_from_u64(config.seed).state();
        SessionCheckpoint {
            schema_version: SESSION_CHECKPOINT_SCHEMA_VERSION,
            config,
            phase: Phase::Probe,
            exclusions: Vec::new(),
            findings: Vec::new(),
            rejected: 0,
            analyzer_calls: 0,
            oracle_evaluations: 0,
            first_gap: None,
            insignificant_strikes: 0,
            coverage: None,
            rng_state,
            elapsed_us: 0,
            solver: SolverCounters::default(),
            events_emitted: 0,
        }
    }

    /// Findings delivered so far (useful when inspecting a checkpoint
    /// without resuming it).
    pub fn findings(&self) -> &[SubspaceFinding] {
        &self.findings
    }

    /// Whether the checkpointed session had already finished naturally
    /// (resuming such a checkpoint just re-emits `Finished`).
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Finishing { .. })
    }
}

// --------------------------------------------------------------- builder

/// The adversarial-input finder a session drives. `FnMut` (not `Fn`) so
/// stateful finders — e.g. ones maintaining a solver session pool — fit.
pub type SessionFinder<'a> = Box<dyn FnMut(&[Polytope], &mut StdRng) -> Option<Adversarial> + 'a>;

/// Assembles an [`AnalysisSession`] from domain components, pipeline
/// config, budgets, a cancel token, and optionally a checkpoint to
/// resume.
pub struct SessionBuilder<'a> {
    oracle: Box<dyn GapOracle + 'a>,
    mapper: Option<Box<dyn DslMapper + 'a>>,
    features: Option<FeatureMap>,
    finder: Option<SessionFinder<'a>>,
    config: PipelineConfig,
    budgets: SessionBudgets,
    cancel: CancelToken,
    checkpoint: Option<SessionCheckpoint>,
}

impl<'a> SessionBuilder<'a> {
    /// Start from a gap oracle (owned, or a `&dyn GapOracle` borrow — the
    /// reference blanket-impl forwards).
    pub fn new(oracle: impl GapOracle + 'a) -> Self {
        Self::from_boxed(Box::new(oracle))
    }

    /// Start from an already-boxed oracle (the shape `Domain::oracle()`
    /// factories produce).
    pub fn from_boxed(oracle: Box<dyn GapOracle + 'a>) -> Self {
        SessionBuilder {
            oracle,
            mapper: None,
            features: None,
            finder: None,
            config: PipelineConfig::default(),
            budgets: SessionBudgets::unlimited(),
            cancel: CancelToken::new(),
            checkpoint: None,
        }
    }

    /// Enable the Type-2 explainer stage.
    pub fn mapper(mut self, mapper: impl DslMapper + 'a) -> Self {
        self.mapper = Some(Box::new(mapper));
        self
    }

    /// Enable the explainer stage with an already-boxed mapper (the shape
    /// `Domain::mapper()` factories produce).
    pub fn mapper_boxed(mut self, mapper: Box<dyn DslMapper + 'a>) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// Feature schema for tree refinement (default: the paper's
    /// identity-plus-sum map over the oracle's dimensions).
    pub fn features(mut self, features: FeatureMap) -> Self {
        self.features = Some(features);
        self
    }

    /// The adversarial-input finder (required).
    pub fn finder(
        mut self,
        finder: impl FnMut(&[Polytope], &mut StdRng) -> Option<Adversarial> + 'a,
    ) -> Self {
        self.finder = Some(Box::new(finder));
        self
    }

    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    pub fn budgets(mut self, budgets: SessionBudgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Shorthand for a wall-clock deadline budget.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budgets.deadline_ms = Some(ms);
        self
    }

    /// Shorthand for an analyzer-call budget.
    pub fn max_analyzer_calls(mut self, calls: usize) -> Self {
        self.budgets.max_analyzer_calls = Some(calls);
        self
    }

    /// Shorthand for a solver-iteration budget.
    pub fn max_solver_iterations(mut self, iterations: u64) -> Self {
        self.budgets.max_solver_iterations = Some(iterations);
        self
    }

    /// Observe/raise cancellation through this token (callers keep a
    /// clone).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Continue from a checkpoint instead of starting fresh. The
    /// checkpoint's config wins over any `config(...)` set on the
    /// builder; budgets and cancellation are taken from the builder
    /// (fresh limits for the new segment — `deadline_ms` still counts
    /// cumulative elapsed time recorded in the checkpoint).
    pub fn resume_from(mut self, checkpoint: SessionCheckpoint) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    pub fn build(self) -> Result<AnalysisSession<'a>, SessionError> {
        let finder = self.finder.ok_or_else(|| SessionError::InvalidConfig {
            message: "an adversarial-input finder is required".to_string(),
        })?;
        let dims = self.oracle.dims();
        let state = match self.checkpoint {
            Some(cp) => {
                if cp.schema_version != SESSION_CHECKPOINT_SCHEMA_VERSION {
                    return Err(SessionError::SchemaVersion {
                        found: cp.schema_version,
                        expected: SESSION_CHECKPOINT_SCHEMA_VERSION,
                    });
                }
                let bad_dims = cp
                    .exclusions
                    .iter()
                    .flat_map(|p| p.halfspaces.iter())
                    .any(|h| h.coeffs.len() != dims)
                    || cp.findings.iter().any(|f| f.subspace.seed.len() != dims);
                if bad_dims {
                    return Err(SessionError::Checkpoint {
                        message: format!(
                            "checkpoint geometry does not match the oracle's {dims} dimensions"
                        ),
                    });
                }
                cp
            }
            None => SessionCheckpoint::fresh(self.config),
        };
        let features = self
            .features
            .unwrap_or_else(|| FeatureMap::identity_with_sum(dims, &self.oracle.dim_names()));
        let rng = StdRng::from_state(state.rng_state);
        Ok(AnalysisSession {
            oracle: self.oracle,
            mapper: self.mapper,
            features,
            finder,
            budgets: self.budgets,
            cancel: self.cancel,
            state,
            rng,
            exhausted: false,
        })
    }
}

// --------------------------------------------------------------- session

/// The streaming pipeline state machine. See the module docs for the
/// event/budget/resume contracts.
pub struct AnalysisSession<'a> {
    oracle: Box<dyn GapOracle + 'a>,
    mapper: Option<Box<dyn DslMapper + 'a>>,
    features: FeatureMap,
    finder: SessionFinder<'a>,
    budgets: SessionBudgets,
    cancel: CancelToken,
    state: SessionCheckpoint,
    rng: StdRng,
    /// `Finished` emitted by *this* object — the stream is over.
    exhausted: bool,
}

impl<'a> AnalysisSession<'a> {
    /// Pull the next event. `None` once `Finished` has been emitted.
    pub fn next_event(&mut self) -> Option<SessionEvent> {
        if self.exhausted {
            return None;
        }
        let event = loop {
            // Interruption guards, at event (stage) granularity. A
            // session already in its finishing step just finishes.
            if !matches!(self.state.phase, Phase::Finishing { .. }) {
                if self.cancel.is_cancelled() {
                    break self.interrupt(FinishReason::Cancelled);
                }
                if self
                    .budgets
                    .deadline_ms
                    .is_some_and(|d| self.state.elapsed_us / 1000 >= d)
                {
                    break self.interrupt(FinishReason::DeadlineExceeded);
                }
                let spent_iterations =
                    self.state.solver.lp_iterations + self.state.solver.lp_dual_iterations;
                if self
                    .budgets
                    .max_solver_iterations
                    .is_some_and(|m| spent_iterations >= m)
                {
                    break self.interrupt(FinishReason::SolverBudgetExhausted);
                }
            }
            match self.step() {
                Some(event) => break event,
                None => continue, // silent transition, keep stepping
            }
        };
        self.state.events_emitted += 1;
        Some(event)
    }

    /// Snapshot the state at the current event boundary. Hand the result
    /// to [`SessionBuilder::resume_from`] (with the same domain
    /// components) to continue the stream later — in this process or
    /// another.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        let mut cp = self.state.clone();
        cp.rng_state = self.rng.state();
        cp
    }

    /// Whether the loop ran to its own stopping rule (as opposed to a
    /// budget/cancellation interrupt, or not being done yet).
    pub fn finished_naturally(&self) -> bool {
        self.state.is_finished()
    }

    /// The budgets this session enforces.
    pub fn budgets(&self) -> &SessionBudgets {
        &self.budgets
    }

    /// Drain the stream, forwarding every event to `observer`, and return
    /// the terminal result (partial if a budget or cancellation stopped
    /// the session first).
    pub fn drain_with(&mut self, mut observer: impl FnMut(&SessionEvent)) -> PipelineResult {
        let mut result = None;
        while let Some(event) = self.next_event() {
            if let SessionEvent::Finished { result: r, .. } = &event {
                result = Some(r.clone());
            }
            observer(&event);
        }
        result.expect("an unexhausted session always terminates with Finished")
    }

    /// Drain the stream discarding intermediate events — the batch path
    /// (`run_pipeline` is exactly this).
    pub fn drain(&mut self) -> PipelineResult {
        self.drain_with(|_| {})
    }

    // ------------------------------------------------------------ steps

    /// Run one micro-step: returns the event it produced, or `None` for a
    /// silent phase transition.
    fn step(&mut self) -> Option<SessionEvent> {
        match self.state.phase.clone() {
            Phase::Probe => self.step_probe(),
            Phase::Grow { adv } => Some(self.step_grow(adv)),
            Phase::Check { subspace } => Some(self.step_check(subspace)),
            Phase::Retry => Some(self.step_retry()),
            Phase::Explain {
                subspace,
                significance,
            } => Some(self.step_explain(subspace, significance)),
            Phase::Coverage { reason } => self.step_coverage(reason),
            Phase::Finishing { reason } => {
                self.exhausted = true;
                Some(SessionEvent::Finished {
                    reason,
                    result: self.assemble_result(),
                })
            }
        }
    }

    /// Emit `Finished` for a budget/cancellation interrupt *without*
    /// advancing the phase — the checkpoint stays resumable mid-loop.
    fn interrupt(&mut self, reason: FinishReason) -> SessionEvent {
        self.exhausted = true;
        SessionEvent::Finished {
            reason,
            result: self.assemble_result(),
        }
    }

    fn step_probe(&mut self) -> Option<SessionEvent> {
        if self.state.findings.len() >= self.state.config.max_subspaces {
            self.state.phase = Phase::Coverage {
                reason: FinishReason::MaxSubspaces,
            };
            return None;
        }
        if self
            .budgets
            .max_analyzer_calls
            .is_some_and(|m| self.state.analyzer_calls >= m)
        {
            return Some(self.interrupt(FinishReason::AnalyzerBudgetExhausted));
        }

        // Run the finder on a scratch RNG: if cancellation aborts the
        // search mid-stream, the step is discarded wholesale and the
        // resumed session replays it from the last event boundary —
        // that's what keeps interrupted runs byte-identical.
        let mut probe_rng = self.rng.clone();
        let adv = self.timed(|s| (s.finder)(&s.state.exclusions, &mut probe_rng));
        if self.cancel.is_cancelled() {
            return Some(self.interrupt(FinishReason::Cancelled));
        }
        self.rng = probe_rng;
        self.state.analyzer_calls += 1;
        let call = self.state.analyzer_calls;

        Some(match adv {
            None => {
                self.state.phase = Phase::Coverage {
                    reason: FinishReason::SpaceExhausted,
                };
                SessionEvent::AnalyzerProbe {
                    call,
                    gap: None,
                    accepted: false,
                }
            }
            Some(adv) => {
                let reference = *self.state.first_gap.get_or_insert(adv.gap);
                if adv.gap < self.state.config.min_gap_frac * reference {
                    self.state.phase = Phase::Coverage {
                        reason: FinishReason::GapBelowThreshold,
                    };
                    SessionEvent::AnalyzerProbe {
                        call,
                        gap: Some(adv.gap),
                        accepted: false,
                    }
                } else {
                    let gap = adv.gap;
                    self.state.phase = Phase::Grow { adv };
                    SessionEvent::AnalyzerProbe {
                        call,
                        gap: Some(gap),
                        accepted: true,
                    }
                }
            }
        })
    }

    fn step_grow(&mut self, adv: Adversarial) -> SessionEvent {
        let subspace = self.timed(|s| {
            grow_subspace(
                s.oracle.as_ref(),
                &adv,
                &s.features,
                &s.state.config.subspace,
                &mut s.rng,
            )
        });
        self.state.oracle_evaluations += subspace.evaluations;
        let event = SessionEvent::SubspaceGrown {
            index: self.state.findings.len(),
            subspace: subspace.clone(),
        };
        self.state.phase = Phase::Check { subspace };
        event
    }

    fn step_check(&mut self, subspace: Subspace) -> SessionEvent {
        let significance = self.timed(|s| {
            check_significance(
                s.oracle.as_ref(),
                &subspace,
                &s.state.config.significance,
                &mut s.rng,
            )
            .ok()
        });
        self.state.oracle_evaluations += self.state.config.significance.pairs * 2;
        let significant = significance.as_ref().is_some_and(|r| r.significant);
        // Exclude the region either way so the finder moves on.
        self.state.exclusions.push(subspace.polytope.clone());
        let event = SessionEvent::SignificanceVerdict {
            index: self.state.findings.len(),
            significant,
            report: significance.clone(),
        };
        self.state.phase = if significant {
            Phase::Explain {
                subspace,
                significance,
            }
        } else {
            Phase::Retry
        };
        event
    }

    fn step_retry(&mut self) -> SessionEvent {
        self.state.rejected += 1;
        self.state.insignificant_strikes += 1;
        let exhausted =
            self.state.insignificant_strikes > self.state.config.max_insignificant_retries;
        let event = SessionEvent::InsignificantRetry {
            strikes: self.state.insignificant_strikes,
            exhausted,
        };
        self.state.phase = if exhausted {
            Phase::Coverage {
                reason: FinishReason::InsignificantRetriesExhausted,
            }
        } else {
            Phase::Probe
        };
        event
    }

    fn step_explain(
        &mut self,
        subspace: Subspace,
        significance: Option<SignificanceReport>,
    ) -> SessionEvent {
        self.state.insignificant_strikes = 0;
        let explainer_seed = self.state.config.seed ^ (self.state.findings.len() as u64 + 1);
        let explanation = self.timed(|s| {
            s.mapper.as_ref().map(|m| {
                explain(
                    m.as_ref(),
                    &subspace,
                    &s.state.config.explainer,
                    explainer_seed,
                )
            })
        });
        if let Some(e) = &explanation {
            self.state.oracle_evaluations += e.samples_used * 2;
        }
        // The subspace's seed is the analyzer point that triggered this
        // finding — capture it as a replayable witness before the move.
        let witness = Some(crate::pipeline::Witness {
            input: subspace.seed.clone(),
            gap: subspace.seed_gap,
        });
        let finding = SubspaceFinding {
            subspace,
            significance,
            explanation,
            witness,
        };
        self.state.findings.push(finding.clone());
        let event = SessionEvent::ExplanationReady {
            index: self.state.findings.len() - 1,
            finding,
        };
        self.state.phase = Phase::Probe;
        event
    }

    fn step_coverage(&mut self, reason: FinishReason) -> Option<SessionEvent> {
        let config = &self.state.config;
        let event = if config.coverage_samples > 0 && !self.state.findings.is_empty() {
            let threshold = config.min_gap_frac * self.state.first_gap.unwrap_or(0.0);
            let samples = config.coverage_samples;
            let subspaces: Vec<Subspace> = self
                .state
                .findings
                .iter()
                .map(|f| f.subspace.clone())
                .collect();
            let report = self.timed(|s| {
                estimate_coverage(
                    s.oracle.as_ref(),
                    &subspaces,
                    threshold.max(1e-9),
                    samples,
                    &mut s.rng,
                )
            });
            self.state.oracle_evaluations += report.samples;
            self.state.coverage = Some(report.clone());
            Some(SessionEvent::CoverageEstimated { report })
        } else {
            None
        };
        self.state.phase = Phase::Finishing { reason };
        event
    }

    fn assemble_result(&self) -> PipelineResult {
        PipelineResult {
            schema_version: PIPELINE_SCHEMA_VERSION,
            findings: self.state.findings.clone(),
            rejected: self.state.rejected,
            analyzer_calls: self.state.analyzer_calls,
            coverage: self.state.coverage.clone(),
            oracle_evaluations: self.state.oracle_evaluations,
            wall_time_ms: self.state.elapsed_us / 1000,
            solver: self.state.solver,
        }
    }

    /// Run a stage under wall-clock + solver-counter accounting, so the
    /// accumulated totals match what a single delta around an
    /// uninterrupted run would report (assuming no concurrent solves —
    /// the same process-global caveat `SolverCounters` documents).
    fn timed<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = std::time::Instant::now();
        let before = SolverCounters::snapshot();
        let out = f(self);
        self.state.solver = self
            .state
            .solver
            .plus(&SolverCounters::snapshot().since(&before));
        self.state.elapsed_us += t0.elapsed().as_micros() as u64;
        out
    }
}

impl Iterator for AnalysisSession<'_> {
    type Item = SessionEvent;

    fn next(&mut self) -> Option<SessionEvent> {
        self.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use crate::subspace::SubspaceParams;
    use crate::{ExplainerParams, SignificanceParams};
    use xplain_analyzer::search::{find_adversarial, SearchOptions};

    /// The pipeline module's synthetic corner oracle, shared shape.
    struct CornerOracle;

    impl GapOracle for CornerOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            if x.iter().any(|v| !v.is_finite()) {
                return f64::NEG_INFINITY;
            }
            if x[0] > 0.7 && x[1] > 0.7 {
                (x[0] + x[1] - 1.4) * 10.0
            } else {
                0.0
            }
        }
    }

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            max_subspaces: 2,
            subspace: SubspaceParams {
                dkw_eps: 0.25,
                dkw_delta: 0.25,
                max_expansions: 6,
                tree_sample_factor: 3,
                ..Default::default()
            },
            significance: SignificanceParams {
                pairs: 60,
                ..Default::default()
            },
            explainer: ExplainerParams {
                samples: 150,
                ..Default::default()
            },
            coverage_samples: 400,
            ..Default::default()
        }
    }

    fn corner_session(config: &PipelineConfig) -> AnalysisSession<'static> {
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        SessionBuilder::new(CornerOracle)
            .config(config.clone())
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search, rng)
            })
            .build()
            .expect("fresh session builds")
    }

    fn normalized(result: &PipelineResult) -> String {
        let mut r = result.clone();
        r.wall_time_ms = 0; // execution metadata, nondeterministic
        serde_json::to_string(&r).unwrap()
    }

    #[test]
    fn event_stream_matches_batch_result() {
        let config = fast_config();
        let mut session = corner_session(&config);
        let mut events = Vec::new();
        let streamed = session.drain_with(|e| events.push(e.kind()));
        assert!(matches!(events.last(), Some(&"finished")));
        assert!(events.contains(&"analyzer_probe"));
        assert!(events.contains(&"subspace_grown"));
        assert!(events.contains(&"significance_verdict"));
        assert!(events.contains(&"explanation_ready"));
        assert!(events.contains(&"coverage_estimated"));
        assert!(session.finished_naturally());

        // The batch entry point is a drain over the same machine.
        let oracle = CornerOracle;
        let features = FeatureMap::identity_with_sum(2, &oracle.dim_names());
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        let finder = move |excl: &[Polytope], rng: &mut StdRng| {
            find_adversarial(&oracle, excl, &search, rng)
        };
        let batch = run_pipeline(&CornerOracle, None, &features, &finder, &config);
        assert_eq!(normalized(&streamed), normalized(&batch));
    }

    #[test]
    fn findings_arrive_before_the_stream_ends() {
        let mut session = corner_session(&fast_config());
        let mut first_finding_at = None;
        let mut total = 0usize;
        for (i, event) in session.by_ref().enumerate() {
            total = i + 1;
            if first_finding_at.is_none() && matches!(event, SessionEvent::ExplanationReady { .. })
            {
                first_finding_at = Some(i);
            }
        }
        let at = first_finding_at.expect("corner oracle yields a finding");
        assert!(
            at + 1 < total,
            "finding delivered only at stream end ({at} of {total})"
        );
    }

    #[test]
    fn iterator_and_pull_are_the_same_stream() {
        let config = fast_config();
        let pulled: Vec<String> = {
            let mut s = corner_session(&config);
            let mut kinds = Vec::new();
            while let Some(e) = s.next_event() {
                kinds.push(e.kind().to_string());
            }
            kinds
        };
        let iterated: Vec<String> = corner_session(&config)
            .map(|e| e.kind().to_string())
            .collect();
        assert_eq!(pulled, iterated);
    }

    #[test]
    fn interrupt_after_every_event_and_resume_identically() {
        let config = fast_config();
        let reference = corner_session(&config).drain();

        // Stop after every event index k, checkpoint, resume, and demand
        // the identical final result — the determinism-under-interruption
        // contract, at the core layer.
        let total_events = corner_session(&config).count();
        for k in 0..total_events {
            let mut session = corner_session(&config);
            for _ in 0..k {
                session.next_event().expect("event before interruption");
            }
            let checkpoint = session.checkpoint();
            let mut resumed = SessionBuilder::new(CornerOracle)
                .finder({
                    let search = SearchOptions {
                        seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
                        ..Default::default()
                    };
                    move |excl: &[Polytope], rng: &mut StdRng| {
                        find_adversarial(&CornerOracle, excl, &search, rng)
                    }
                })
                .resume_from(checkpoint)
                .build()
                .expect("checkpoint resumes");
            let result = resumed.drain();
            assert_eq!(
                normalized(&reference),
                normalized(&result),
                "resume after event {k} diverged"
            );
        }
    }

    #[test]
    fn cancelled_session_emits_partial_finished_and_resumes() {
        let config = fast_config();
        let cancel = CancelToken::new();
        let mut session = corner_session(&config);
        // Consume two events, then cancel.
        session.next_event().unwrap();
        session.next_event().unwrap();
        cancel.cancel();
        // The session was built with its own token; attach ours instead.
        let checkpoint = session.checkpoint();
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        let mut cancelled = SessionBuilder::new(CornerOracle)
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search, rng)
            })
            .cancel_token(cancel.clone())
            .resume_from(checkpoint.clone())
            .build()
            .unwrap();
        let Some(SessionEvent::Finished { reason, .. }) = cancelled.next_event() else {
            panic!("cancelled session must emit Finished immediately");
        };
        assert_eq!(reason, FinishReason::Cancelled);
        assert!(!cancelled.finished_naturally());
        assert!(
            cancelled.next_event().is_none(),
            "stream ends after Finished"
        );

        // The same checkpoint without the cancelled token runs to the end.
        let search2 = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        let mut resumed = SessionBuilder::new(CornerOracle)
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search2, rng)
            })
            .resume_from(checkpoint)
            .build()
            .unwrap();
        let reference = corner_session(&config).drain();
        assert_eq!(normalized(&reference), normalized(&resumed.drain()));
    }

    #[test]
    fn analyzer_budget_stops_early_with_partial_result() {
        let session = corner_session(&fast_config());
        // Rebuild with a 1-call budget.
        let checkpoint = session.checkpoint();
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        let mut budgeted = SessionBuilder::new(CornerOracle)
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search, rng)
            })
            .max_analyzer_calls(1)
            .resume_from(checkpoint)
            .build()
            .unwrap();
        let mut finished = None;
        while let Some(event) = budgeted.next_event() {
            if let SessionEvent::Finished { reason, result } = event {
                finished = Some((reason, result));
            }
        }
        let (reason, result) = finished.unwrap();
        assert_eq!(reason, FinishReason::AnalyzerBudgetExhausted);
        assert_eq!(result.analyzer_calls, 1);
        assert!(result.coverage.is_none(), "interrupted runs skip coverage");
        assert!(!budgeted.finished_naturally());
    }

    #[test]
    fn deadline_zero_finishes_immediately() {
        let config = fast_config();
        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0]],
            ..Default::default()
        };
        let mut session = SessionBuilder::new(CornerOracle)
            .config(config)
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search, rng)
            })
            .deadline_ms(0)
            .build()
            .unwrap();
        let Some(SessionEvent::Finished { reason, result }) = session.next_event() else {
            panic!("expected immediate Finished");
        };
        assert_eq!(reason, FinishReason::DeadlineExceeded);
        assert!(result.findings.is_empty());
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let mut session = corner_session(&fast_config());
        for _ in 0..3 {
            session.next_event().unwrap();
        }
        let checkpoint = session.checkpoint();
        let json = serde_json::to_string(&checkpoint).unwrap();
        let back: SessionCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SESSION_CHECKPOINT_SCHEMA_VERSION);
        assert_eq!(back.events_emitted, 3);

        let search = SearchOptions {
            seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
            ..Default::default()
        };
        let mut resumed = SessionBuilder::new(CornerOracle)
            .finder(move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(&CornerOracle, excl, &search, rng)
            })
            .resume_from(back)
            .build()
            .unwrap();
        let reference = corner_session(&fast_config()).drain();
        let mut resumed_direct = SessionBuilder::new(CornerOracle)
            .finder({
                let search = SearchOptions {
                    seeds: vec![vec![1.0, 1.0], vec![0.8, 0.8]],
                    ..Default::default()
                };
                move |excl: &[Polytope], rng: &mut StdRng| {
                    find_adversarial(&CornerOracle, excl, &search, rng)
                }
            })
            .resume_from(session.checkpoint())
            .build()
            .unwrap();
        assert_eq!(
            normalized(&reference),
            normalized(&resumed.drain()),
            "JSON-roundtripped checkpoint diverged"
        );
        assert_eq!(normalized(&reference), normalized(&resumed_direct.drain()));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut session = corner_session(&fast_config());
        session.next_event().unwrap();
        let mut checkpoint = session.checkpoint();
        checkpoint.schema_version = 999;
        let err = SessionBuilder::new(CornerOracle)
            .finder(|_: &[Polytope], _: &mut StdRng| None)
            .resume_from(checkpoint)
            .build()
            .err()
            .expect("unknown schema version must be rejected");
        assert_eq!(
            err,
            SessionError::SchemaVersion {
                found: 999,
                expected: SESSION_CHECKPOINT_SCHEMA_VERSION
            }
        );
    }

    #[test]
    fn missing_finder_is_invalid_config() {
        let err = SessionBuilder::new(CornerOracle).build().err().unwrap();
        assert!(matches!(err, SessionError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("finder"));
    }

    #[test]
    fn finished_checkpoint_re_emits_finished_on_resume() {
        let mut session = corner_session(&fast_config());
        let reference = session.drain();
        let checkpoint = session.checkpoint();
        assert!(checkpoint.is_finished());
        let mut resumed = SessionBuilder::new(CornerOracle)
            .finder(|_: &[Polytope], _: &mut StdRng| None)
            .resume_from(checkpoint)
            .build()
            .unwrap();
        let Some(SessionEvent::Finished { reason, result }) = resumed.next_event() else {
            panic!("finished checkpoint must re-emit Finished");
        };
        assert!(reason.is_natural());
        assert_eq!(normalized(&reference), normalized(&result));
        assert!(resumed.next_event().is_none());
    }

    #[test]
    fn session_error_display_is_informative() {
        let e = SessionError::Manifest {
            line: 3,
            snippet: "{not json}".into(),
            message: "expected value".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 3") && s.contains("{not json}"), "{s}");
        assert!(SessionError::UnknownDomain { id: "zz".into() }
            .to_string()
            .contains("'zz'"));
    }
}
