//! The instance generator (§5.4): diverse problem instances whose
//! subspace/explainer outputs feed the generalizer.
//!
//! "To discover patterns, we need to consider a diverse set of instances
//! and identify trends … We build an instance generator that uses the
//! problem description in the DSL to create such instances and feeds them
//! into the pipeline."
//!
//! Two families are provided, one per running example:
//!
//! * **DP**: Fig. 1a generalized — chains of varying length with an
//!   end-to-end bypass. The features expose exactly the properties the
//!   paper's Type-3 sketch names: the pinned demand's shortest-path
//!   length and the capacity along it.
//! * **FF**: random ball-size vectors whose features count the
//!   structural suspects (balls just over half a bin, small fillers).

use crate::generalizer::Observation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_domains::te::{DemandPair, DemandPinning, TeProblem, Topology};
use xplain_domains::vbp::{first_fit, optimal, VbpInstance};

/// Parameters of the DP instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpFamily {
    /// Chain lengths (pinned-path lengths) to generate.
    pub lengths: Vec<usize>,
    pub chain_cap: f64,
    pub bypass_cap: f64,
    pub threshold: f64,
    /// Random capacity jitter (fraction of the base capacity).
    pub cap_jitter: f64,
}

impl Default for DpFamily {
    fn default() -> Self {
        DpFamily {
            // Lengths start at 2: with a single hop the per-hop demand is
            // the end-to-end pair itself and can escape over the bypass,
            // so the gap degenerates to zero.
            lengths: (2..=7).collect(),
            chain_cap: 100.0,
            bypass_cap: 60.0,
            threshold: 50.0,
            cap_jitter: 0.0,
        }
    }
}

/// A generated DP instance with its adversarial input and features.
#[derive(Debug, Clone)]
pub struct DpInstance {
    pub problem: TeProblem,
    pub threshold: f64,
    /// The structured adversarial input (pinnable end-to-end demand at the
    /// threshold, per-hop demands saturating).
    pub adversarial_input: Vec<f64>,
    pub observation: Observation,
}

/// Generate the DP family: one instance per requested chain length.
///
/// Instance `L`: chain of `L` hops (capacity `chain_cap`) with an
/// end-to-end bypass of `L + 1` hops (capacity `bypass_cap`); demands are
/// the pinnable end-to-end pair plus one per-hop demand. At the structured
/// adversarial input the gap is `L * T` — growing with the pinned path
/// length, which is what the generalizer should discover.
pub fn generate_dp_instances(family: &DpFamily, rng: &mut impl Rng) -> Vec<DpInstance> {
    let mut out = Vec::with_capacity(family.lengths.len());
    for &len in &family.lengths {
        let mut jitter = |base: f64| -> f64 {
            if family.cap_jitter > 0.0 {
                base * (1.0 + family.cap_jitter * rng.gen_range(-1.0..1.0))
            } else {
                base
            }
        };
        let chain_cap = jitter(family.chain_cap);
        let bypass_cap = jitter(family.bypass_cap).max(family.threshold + 1.0);
        let topo = Topology::chain_with_long_bypass(len, chain_cap, bypass_cap);

        let mut demands = vec![DemandPair { src: 0, dst: len }];
        for i in 0..len {
            demands.push(DemandPair { src: i, dst: i + 1 });
        }
        let problem = TeProblem::new(topo, demands, 2 * len + 2, chain_cap.max(bypass_cap))
            .expect("chain instance is well-formed");

        // Structured adversarial input: pinnable demand at the threshold,
        // hop demands saturating their direct links.
        let mut input = vec![family.threshold];
        input.extend(std::iter::repeat_n(chain_cap, len));

        let dp = DemandPinning::new(family.threshold);
        let gap = dp.gap(&problem, &input).unwrap_or(0.0);

        let pinned_path = &problem.paths[0][0];
        let min_cap = pinned_path.min_capacity(&problem.topology);
        let observation = Observation {
            features: vec![
                ("pinned_path_length".to_string(), pinned_path.len() as f64),
                ("pinned_path_min_capacity".to_string(), min_cap),
                ("num_demands".to_string(), problem.num_demands() as f64),
            ],
            gap,
        };

        out.push(DpInstance {
            problem,
            threshold: family.threshold,
            adversarial_input: input,
            observation,
        });
    }
    out
}

/// Parameters of the FF instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FfFamily {
    /// Number of random size-vectors to generate.
    pub instances: usize,
    pub n_balls: usize,
    pub capacity: f64,
    pub min_size: f64,
}

impl Default for FfFamily {
    fn default() -> Self {
        FfFamily {
            instances: 40,
            n_balls: 12,
            capacity: 1.0,
            min_size: 0.01,
        }
    }
}

/// A generated FF instance (a concrete ball-size vector) plus features.
#[derive(Debug, Clone)]
pub struct FfInstance {
    pub sizes: Vec<f64>,
    pub observation: Observation,
}

/// Generate random FF instances and their structural features.
///
/// Features: the count of balls over half a bin, the count of small
/// fillers, and the total volume. The Type-3 trends the generalizer
/// discovers on this family: *more small fillers → larger gap* (FF
/// strands them in early bins that over-half balls can no longer join)
/// and *more over-half balls → smaller gap* (they cost FF and the
/// optimal the same bin each).
pub fn generate_ff_instances(family: &FfFamily, rng: &mut impl Rng) -> Vec<FfInstance> {
    let cap = family.capacity;
    let mut out = Vec::with_capacity(family.instances);
    for _ in 0..family.instances {
        // Mix of size classes so the over-half count varies by instance.
        let over_half = rng.gen_range(0..=family.n_balls / 2 * 2);
        let sizes: Vec<f64> = (0..family.n_balls)
            .map(|i| {
                if i < over_half {
                    rng.gen_range(0.51 * cap..0.60 * cap)
                } else {
                    rng.gen_range(family.min_size..0.45 * cap)
                }
            })
            .collect();
        let inst = VbpInstance {
            bin_capacity: vec![cap],
            balls: sizes.iter().map(|&s| vec![s]).collect(),
        };
        let gap = first_fit(&inst).bins_used as f64 - optimal(&inst).bins_used as f64;
        let count_over = sizes.iter().filter(|&&s| s > 0.5 * cap).count() as f64;
        let count_small = sizes.iter().filter(|&&s| s < 0.25 * cap).count() as f64;
        let total: f64 = sizes.iter().sum();
        out.push(FfInstance {
            observation: Observation {
                features: vec![
                    ("balls_over_half".to_string(), count_over),
                    ("small_fillers".to_string(), count_small),
                    ("total_volume".to_string(), total),
                ],
                gap,
            },
            sizes,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalizer::{generalize, GeneralizerParams, Trend};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dp_family_gap_grows_linearly_with_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = DpFamily::default();
        let instances = generate_dp_instances(&family, &mut rng);
        assert_eq!(instances.len(), 6);
        for (ix, inst) in instances.iter().enumerate() {
            let len = (ix + 2) as f64;
            // Gap = L * T (chain pinning starves every hop demand by T).
            let expect = len * family.threshold;
            assert!(
                (inst.observation.gap - expect).abs() < 1e-4,
                "L = {len}: gap {} != {expect}",
                inst.observation.gap
            );
        }
    }

    #[test]
    fn dp_family_features_present() {
        let mut rng = StdRng::seed_from_u64(2);
        let instances = generate_dp_instances(&DpFamily::default(), &mut rng);
        let names: Vec<&str> = instances[0]
            .observation
            .features
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pinned_path_length"));
        assert!(names.contains(&"pinned_path_min_capacity"));
    }

    /// The paper's E8 headline: the generalizer emits `increasing(P)` for
    /// the pinned-path-length feature.
    #[test]
    fn generalizer_discovers_increasing_pinned_path_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let instances = generate_dp_instances(&DpFamily::default(), &mut rng);
        let observations: Vec<Observation> =
            instances.iter().map(|i| i.observation.clone()).collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        let f = findings
            .iter()
            .find(|f| f.feature == "pinned_path_length")
            .expect("increasing(pinned_path_length) must be discovered");
        assert_eq!(f.trend, Trend::Increasing);
        assert!(f.p_value < 0.05);
    }

    #[test]
    fn ff_family_gap_correlates_with_over_half_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let family = FfFamily {
            instances: 100,
            ..Default::default()
        };
        let instances = generate_ff_instances(&family, &mut rng);
        assert_eq!(instances.len(), 100);
        let observations: Vec<Observation> =
            instances.iter().map(|i| i.observation.clone()).collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        // The over-half count should show up as an increasing trend.
        let f = findings.iter().find(|f| f.feature == "balls_over_half");
        assert!(f.is_some(), "findings: {findings:?}");
    }

    #[test]
    fn ff_instances_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let family = FfFamily::default();
        for inst in generate_ff_instances(&family, &mut rng) {
            for &s in &inst.sizes {
                assert!(s >= family.min_size - 1e-12 && s <= family.capacity);
            }
            assert!(inst.observation.gap >= 0.0);
        }
    }
}
