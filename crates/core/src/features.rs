//! Feature maps `F(I)` over the input space.
//!
//! §5.2's open question — "we need to define functions F(I) of the input I
//! that allow us to describe these subspaces efficiently" — is answered
//! here for the linear case: a feature is a linear functional of the input
//! vector, so every regression-tree predicate `F(I) <= t` converts *exactly*
//! into a half-space `a·x <= t` of the Fig. 5c polytope. Raw coordinates
//! (identity features), sums (Fig. 5b's `Σ B_n <= 1.5`), and arbitrary
//! user-supplied linear combinations all fit.

use serde::{Deserialize, Serialize};
use xplain_analyzer::geometry::Halfspace;

/// One linear feature: `value(x) = coeffs · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearFeature {
    pub name: String,
    pub coeffs: Vec<f64>,
}

impl LinearFeature {
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// The half-space `feature <= t` (or `> t` flipped to `-a·x <= -t`
    /// *exclusive* boundaries are approximated by the closed complement,
    /// consistent with how the tree partitions samples).
    pub fn halfspace(&self, threshold: f64, leq: bool) -> Halfspace {
        if leq {
            Halfspace {
                coeffs: self.coeffs.clone(),
                rhs: threshold,
            }
        } else {
            Halfspace {
                coeffs: self.coeffs.iter().map(|c| -c).collect(),
                rhs: -threshold,
            }
        }
    }
}

/// A set of features over a `dims`-dimensional input space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap {
    pub dims: usize,
    pub features: Vec<LinearFeature>,
}

impl FeatureMap {
    /// Identity features: one per raw input dimension.
    pub fn identity(dims: usize, names: &[String]) -> Self {
        let features = (0..dims)
            .map(|d| {
                let mut coeffs = vec![0.0; dims];
                coeffs[d] = 1.0;
                LinearFeature {
                    name: names.get(d).cloned().unwrap_or_else(|| format!("x{d}")),
                    coeffs,
                }
            })
            .collect();
        FeatureMap { dims, features }
    }

    /// Identity features plus the total-sum feature (Fig. 5b's `Σ B_n`).
    pub fn identity_with_sum(dims: usize, names: &[String]) -> Self {
        let mut fm = Self::identity(dims, names);
        fm.features.push(LinearFeature {
            name: "sum".into(),
            coeffs: vec![1.0; dims],
        });
        fm
    }

    /// Evaluate all features at `x`.
    pub fn eval(&self, x: &[f64]) -> Vec<f64> {
        self.features.iter().map(|f| f.eval(x)).collect()
    }

    pub fn names(&self) -> Vec<String> {
        self.features.iter().map(|f| f.name.clone()).collect()
    }

    pub fn len(&self) -> usize {
        self.features.len()
    }

    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_evaluates_to_input() {
        let fm = FeatureMap::identity(3, &[]);
        assert_eq!(fm.eval(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(fm.names(), vec!["x0", "x1", "x2"]);
    }

    #[test]
    fn sum_feature() {
        let fm = FeatureMap::identity_with_sum(3, &[]);
        let vals = fm.eval(&[1.0, 2.0, 3.0]);
        assert_eq!(vals[3], 6.0);
        assert_eq!(fm.names()[3], "sum");
    }

    #[test]
    fn halfspace_conversion_leq() {
        let f = LinearFeature {
            name: "sum".into(),
            coeffs: vec![1.0, 1.0],
        };
        let h = f.halfspace(1.5, true);
        assert!(h.contains(&[0.7, 0.7], 0.0));
        assert!(!h.contains(&[0.9, 0.9], 0.0));
    }

    #[test]
    fn halfspace_conversion_gt() {
        let f = LinearFeature {
            name: "x0".into(),
            coeffs: vec![1.0, 0.0],
        };
        let h = f.halfspace(0.5, false); // x0 > 0.5
        assert!(h.contains(&[0.9, 0.0], 0.0));
        assert!(!h.contains(&[0.1, 0.0], 0.0));
    }

    #[test]
    fn custom_names_used() {
        let fm = FeatureMap::identity(2, &["d[1~3]".to_string(), "d[1~2]".to_string()]);
        assert_eq!(fm.names()[0], "d[1~3]");
    }
}
