//! # xplain-core
//!
//! The XPlain system itself (Fig. 3 of the paper): everything downstream
//! of the heuristic analyzer.
//!
//! * [`subspace`] — the adversarial subspace generator (§5.2): cube
//!   sampling, DKW-sized slice-by-slice expansion, regression-tree
//!   refinement into the Fig. 5c polytope form;
//! * [`significance`] — the Wilcoxon signed-rank significance checker on
//!   mirrored inside/outside pairs (§5.2);
//! * [`explainer`] — the −1/0/+1 edge heat-map over DSL graphs (§5.3,
//!   Fig. 4); concrete domain adapters live in `xplain-runtime`;
//! * [`generalizer`] — the Type-3 machinery (§5.4): the
//!   `increasing`/`decreasing` grammar, validated by rank correlation
//!   (the per-domain instance generators live with the runtime's domain
//!   adapters);
//! * [`features`] — linear feature maps `F(I)` bridging tree predicates
//!   and polytope half-spaces;
//! * [`pipeline`] — the iterate-and-exclude orchestration loop, fully
//!   domain-agnostic (domains are bound via `xplain-runtime`'s registry);
//! * [`session`] — the streaming [`session::AnalysisSession`]: the same
//!   loop as a resumable state machine emitting typed events, with
//!   budgets, cancellation, and checkpoint/resume (`run_pipeline` is a
//!   thin drain over it);
//! * [`report`] — text/DOT/JSON rendering of Types 1–3.

pub mod coverage;
pub mod explainer;
pub mod features;
pub mod generalizer;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod significance;
pub mod subspace;

pub use coverage::{estimate_coverage, CoverageReport};
pub use explainer::{explain, DslMapper, EdgeScore, ExplainerParams, Explanation};
pub use features::{FeatureMap, LinearFeature};
pub use generalizer::{generalize, Finding, GeneralizerParams, Observation, Trend};
pub use pipeline::{
    run_pipeline, PipelineConfig, PipelineResult, SubspaceFinding, Witness, PIPELINE_SCHEMA_VERSION,
};
pub use session::{
    AnalysisSession, CancelToken, FinishReason, SessionBudgets, SessionBuilder, SessionCheckpoint,
    SessionError, SessionEvent, SESSION_CHECKPOINT_SCHEMA_VERSION,
};
pub use significance::{check_significance, SignificanceParams, SignificanceReport};
pub use subspace::{grow_subspace, Subspace, SubspaceParams};
