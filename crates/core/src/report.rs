//! Human-readable rendering of XPlain's outputs: Type-1 subspaces in the
//! Fig. 5c polytope form, Type-2 heat-maps as tables and DOT, Type-3
//! grammar findings, and a pipeline summary.

use crate::explainer::Explanation;
use crate::generalizer::Finding;
use crate::pipeline::PipelineResult;
use crate::subspace::Subspace;
use xplain_flownet::dot::to_dot_with_scores;
use xplain_flownet::FlowNet;

/// Render a subspace as Fig. 5c does: the box `A x <= C` plus the tree
/// path `T x <= V`.
pub fn render_subspace(s: &Subspace, dim_names: &[String], index: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Subspace D{index}  (seed gap = {:.4}, leaf mean gap = {:.4}, leaf n = {})\n",
        s.seed_gap, s.leaf_mean_gap, s.leaf_samples
    ));
    out.push_str(&format!(
        "  seed: [{}]\n",
        s.seed
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  box constraints (A x <= C):\n");
    for (d, name) in dim_names.iter().enumerate().take(s.rough_lo.len()) {
        out.push_str(&format!(
            "    {:.4} <= {name} <= {:.4}\n",
            s.rough_lo[d], s.rough_hi[d]
        ));
    }
    if !s.predicate_descriptions.is_empty() {
        out.push_str("  tree refinement (T x <= V):\n");
        for p in &s.predicate_descriptions {
            out.push_str(&format!("    {p}\n"));
        }
    }
    out
}

/// Render a heat-map as a sorted table (strongest disagreements first).
///
/// Scores follow the paper's convention: negative = only the heuristic
/// uses the edge (red), positive = only the benchmark does (blue).
pub fn render_explanation(e: &Explanation, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Explainer heat-map ({} samples)\n",
        e.samples_used
    ));
    out.push_str(&format!(
        "  {:<34} {:>8} {:>10} {:>10} {:>10}\n",
        "edge", "score", "heur-use", "bench-use", "flow-delta"
    ));
    for row in e.strongest_disagreements(top) {
        let tag = if row.score < -0.25 {
            " [heuristic-only]"
        } else if row.score > 0.25 {
            " [benchmark-only]"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {:<34} {:>8.3} {:>10.3} {:>10.3} {:>10.3}{tag}\n",
            row.label, row.score, row.heuristic_frac, row.benchmark_frac, row.mean_flow_delta
        ));
    }
    out
}

/// DOT rendering of the heat-map over the DSL graph (Fig. 4 style).
pub fn explanation_dot(net: &FlowNet, e: &Explanation) -> String {
    to_dot_with_scores(net, Some(&e.score_vector()))
}

/// Render Type-3 findings.
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "no statistically significant trends\n".to_string();
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("  {}\n", f.render()));
    }
    out
}

/// Render the pipeline summary.
pub fn render_pipeline(result: &PipelineResult, dim_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "XPlain pipeline: {} significant subspace(s), {} rejected, {} analyzer call(s), {} oracle evaluations, {} ms\n\n",
        result.findings.len(),
        result.rejected,
        result.analyzer_calls,
        result.oracle_evaluations,
        result.wall_time_ms
    ));
    if let Some(cov) = &result.coverage {
        out.push_str(&format!(
            "risk-surface coverage (gap >= {:.3}): recall {:.1}%, precision {:.1}%, {:.1}% of the input box ({} samples)\n\n",
            cov.gap_threshold,
            cov.risk_recall * 100.0,
            cov.risk_precision * 100.0,
            cov.volume_fraction * 100.0,
            cov.samples
        ));
    }
    for (i, f) in result.findings.iter().enumerate() {
        out.push_str(&render_subspace(&f.subspace, dim_names, i));
        if let Some(sig) = &f.significance {
            out.push_str(&format!(
                "  significance: p = {:.3e} ({} pairs; inside mean {:.4} vs outside {:.4})\n",
                sig.test.p_value, sig.pairs_used, sig.mean_inside, sig.mean_outside
            ));
        }
        if let Some(ex) = &f.explanation {
            out.push_str(&render_explanation(ex, 8));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explainer::EdgeScore;
    use xplain_analyzer::geometry::Polytope;

    fn sample_subspace() -> Subspace {
        Subspace {
            seed: vec![50.0, 100.0],
            seed_gap: 100.0,
            rough_lo: vec![40.0, 90.0],
            rough_hi: vec![50.0, 100.0],
            predicate_descriptions: vec!["sum <= 150.0".to_string()],
            polytope: Polytope::from_box(&[40.0, 90.0], &[50.0, 100.0]),
            leaf_mean_gap: 80.0,
            leaf_samples: 120,
            evaluations: 500,
        }
    }

    #[test]
    fn subspace_rendering_contains_bounds_and_predicates() {
        let s = sample_subspace();
        let text = render_subspace(&s, &["d1".into(), "d2".into()], 0);
        assert!(text.contains("Subspace D0"));
        assert!(text.contains("40.0000 <= d1 <= 50.0000"));
        assert!(text.contains("sum <= 150.0"));
    }

    #[test]
    fn explanation_rendering_sorts_by_magnitude() {
        let e = Explanation {
            edges: vec![
                EdgeScore {
                    edge_index: 0,
                    label: "weak".into(),
                    score: 0.1,
                    heuristic_frac: 0.5,
                    benchmark_frac: 0.6,
                    heuristic_mean_flow: 1.0,
                    benchmark_mean_flow: 1.1,
                    mean_flow_delta: 0.1,
                },
                EdgeScore {
                    edge_index: 1,
                    label: "strong".into(),
                    score: -0.9,
                    heuristic_frac: 0.9,
                    benchmark_frac: 0.0,
                    heuristic_mean_flow: 2.0,
                    benchmark_mean_flow: 0.0,
                    mean_flow_delta: -2.0,
                },
            ],
            samples_used: 100,
        };
        let text = render_explanation(&e, 2);
        let strong_pos = text.find("strong").unwrap();
        let weak_pos = text.find("weak").unwrap();
        assert!(strong_pos < weak_pos);
        assert!(text.contains("[heuristic-only]"));
    }

    #[test]
    fn findings_rendering() {
        use crate::generalizer::{Finding, Trend};
        let f = vec![Finding {
            feature: "pinned_path_length".into(),
            trend: Trend::Increasing,
            tau: 1.0,
            p_value: 1e-4,
            n: 6,
        }];
        let text = render_findings(&f);
        assert!(text.contains("increasing(pinned_path_length)"));
        assert_eq!(
            render_findings(&[]),
            "no statistically significant trends\n"
        );
    }
}
