//! The explainer (§5.3): why does the heuristic underperform in a
//! subspace?
//!
//! "We run samples from within each contiguous subspace through the DSL
//! and score edges based on if: (1) both the benchmark and the heuristic
//! send flow on that edge (score = 0); (2) only the benchmark sends flow
//! (score = 1); or (3) only the heuristic sends flow (score = -1). Such a
//! 'heatmap' of the differences … shows how inputs in the subspace
//! interfere with the heuristic."
//!
//! Sampling is fanned out over threads with `crossbeam` — evaluating a
//! sample means running both the heuristic and an exact benchmark, which
//! is pure CPU work.

use crate::subspace::Subspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xplain_flownet::FlowNet;

/// Domain adapter: maps a concrete input to heuristic/benchmark edge
/// flows over a shared DSL graph.
pub trait DslMapper: Sync {
    fn net(&self) -> &FlowNet;

    /// Heuristic edge flows at `x` (`None` when the input cannot be
    /// mapped, e.g. the packing needs more bins than the graph has).
    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>>;

    /// Benchmark (optimal) edge flows at `x`.
    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>>;
}

/// Per-edge aggregate of the heat-map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeScore {
    pub edge_index: usize,
    pub label: String,
    /// Mean of per-sample scores in `[-1, 1]`: negative = heuristic-only
    /// (red), positive = benchmark-only (blue).
    pub score: f64,
    /// Fraction of samples where the heuristic sends flow on this edge.
    pub heuristic_frac: f64,
    /// Fraction of samples where the benchmark sends flow on this edge.
    pub benchmark_frac: f64,
    /// Mean flow the heuristic routes on this edge.
    pub heuristic_mean_flow: f64,
    /// Mean flow the benchmark routes on this edge.
    pub benchmark_mean_flow: f64,
    /// Mean of `benchmark_flow - heuristic_flow` — §5.3's open question
    /// ("the heuristic and benchmark also differ in how much flow they
    /// route on each edge") answered with the obvious statistic.
    pub mean_flow_delta: f64,
}

/// The heat-map for one subspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    pub edges: Vec<EdgeScore>,
    pub samples_used: usize,
}

impl Explanation {
    /// Scores aligned with the DSL's edge ids (for DOT export).
    pub fn score_vector(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.score).collect()
    }

    /// Edges sorted by how strongly the two algorithms disagree.
    pub fn strongest_disagreements(&self, top: usize) -> Vec<&EdgeScore> {
        let mut refs: Vec<&EdgeScore> = self.edges.iter().collect();
        refs.sort_by(|a, b| {
            b.score
                .abs()
                .partial_cmp(&a.score.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        refs.truncate(top);
        refs
    }
}

/// Explainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainerParams {
    /// Samples per subspace (the paper's figures use 3000).
    pub samples: usize,
    /// Flow below this is "not using the edge".
    pub flow_tol: f64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for ExplainerParams {
    fn default() -> Self {
        ExplainerParams {
            samples: 3000,
            flow_tol: 1e-6,
            threads: 0,
        }
    }
}

/// Produce the heat-map for a subspace.
pub fn explain(
    mapper: &dyn DslMapper,
    subspace: &Subspace,
    params: &ExplainerParams,
    seed: u64,
) -> Explanation {
    let n_edges = mapper.net().num_edges();
    let threads = if params.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        params.threads
    };
    let per_thread = params.samples.div_ceil(threads);

    struct Acc {
        score_sum: Vec<f64>,
        h_used: Vec<usize>,
        b_used: Vec<usize>,
        h_flow: Vec<f64>,
        b_flow: Vec<f64>,
        samples: usize,
    }

    let accumulate = |tid: usize| -> Acc {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(tid as u64 * 0x9E3779B9));
        let mut acc = Acc {
            score_sum: vec![0.0; n_edges],
            h_used: vec![0; n_edges],
            b_used: vec![0; n_edges],
            h_flow: vec![0.0; n_edges],
            b_flow: vec![0.0; n_edges],
            samples: 0,
        };
        let lo = &subspace.rough_lo;
        let hi = &subspace.rough_hi;
        let dims = lo.len();
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < per_thread && attempts < per_thread * 40 {
            attempts += 1;
            let x: Vec<f64> = (0..dims).map(|d| rng.gen_range(lo[d]..=hi[d])).collect();
            if !subspace.contains(&x) {
                continue;
            }
            let (Some(hf), Some(bf)) = (mapper.heuristic_flows(&x), mapper.benchmark_flows(&x))
            else {
                continue;
            };
            for e in 0..n_edges {
                let h = hf[e] > params.flow_tol;
                let b = bf[e] > params.flow_tol;
                if h {
                    acc.h_used[e] += 1;
                }
                if b {
                    acc.b_used[e] += 1;
                }
                acc.h_flow[e] += hf[e];
                acc.b_flow[e] += bf[e];
                acc.score_sum[e] += match (h, b) {
                    (true, false) => -1.0,
                    (false, true) => 1.0,
                    _ => 0.0,
                };
            }
            acc.samples += 1;
            produced += 1;
        }
        acc
    };

    let accs: Vec<Acc> = if threads <= 1 {
        vec![accumulate(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| scope.spawn(move || accumulate(tid)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explainer worker panicked"))
                .collect()
        })
    };

    let mut score_sum = vec![0.0; n_edges];
    let mut h_used = vec![0usize; n_edges];
    let mut b_used = vec![0usize; n_edges];
    let mut h_flow = vec![0.0; n_edges];
    let mut b_flow = vec![0.0; n_edges];
    let mut total = 0usize;
    for acc in accs {
        for e in 0..n_edges {
            score_sum[e] += acc.score_sum[e];
            h_used[e] += acc.h_used[e];
            b_used[e] += acc.b_used[e];
            h_flow[e] += acc.h_flow[e];
            b_flow[e] += acc.b_flow[e];
        }
        total += acc.samples;
    }

    let denom = total.max(1) as f64;
    let edges = (0..n_edges)
        .map(|e| EdgeScore {
            edge_index: e,
            label: mapper.net().edges()[e].label.clone(),
            score: score_sum[e] / denom,
            heuristic_frac: h_used[e] as f64 / denom,
            benchmark_frac: b_used[e] as f64 / denom,
            heuristic_mean_flow: h_flow[e] / denom,
            benchmark_mean_flow: b_flow[e] / denom,
            mean_flow_delta: (b_flow[e] - h_flow[e]) / denom,
        })
        .collect();

    Explanation {
        edges,
        samples_used: total,
    }
}

// ---------------------------------------------------------------------
// Domain adapters
// ---------------------------------------------------------------------

/// DSL mapper for Demand Pinning on a TE problem (Fig. 4a).
pub struct DpDslMapper {
    pub problem: xplain_domains::te::TeProblem,
    pub heuristic: xplain_domains::te::DemandPinning,
    pub dsl: xplain_domains::te::TeDsl,
}

impl DpDslMapper {
    pub fn new(problem: xplain_domains::te::TeProblem, threshold: f64) -> Self {
        let dsl = xplain_domains::te::TeDsl::build(&problem);
        DpDslMapper {
            heuristic: xplain_domains::te::DemandPinning::new(threshold),
            problem,
            dsl,
        }
    }
}

impl DslMapper for DpDslMapper {
    fn net(&self) -> &FlowNet {
        &self.dsl.net
    }

    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let alloc = self.heuristic.solve(&self.problem, x).ok()?;
        Some(self.dsl.assignment(x, &alloc))
    }

    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let alloc = self.problem.optimal(x).ok()?;
        Some(self.dsl.assignment(x, &alloc))
    }
}

/// DSL mapper for first-fit bin packing (Fig. 4b).
pub struct FfDslMapper {
    pub n_balls: usize,
    pub n_bins: usize,
    pub capacity: f64,
    pub dsl: xplain_domains::vbp::VbpDsl,
}

impl FfDslMapper {
    pub fn new(n_balls: usize, n_bins: usize, capacity: f64) -> Self {
        FfDslMapper {
            n_balls,
            n_bins,
            capacity,
            dsl: xplain_domains::vbp::VbpDsl::build(n_balls, n_bins, capacity),
        }
    }

    fn instance(&self, x: &[f64]) -> Option<xplain_domains::vbp::VbpInstance> {
        if x.len() != self.n_balls {
            return None;
        }
        Some(xplain_domains::vbp::VbpInstance {
            bin_capacity: vec![self.capacity],
            balls: x.iter().map(|&s| vec![s]).collect(),
        })
    }
}

impl DslMapper for FfDslMapper {
    fn net(&self) -> &FlowNet {
        &self.dsl.net
    }

    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let packing = xplain_domains::vbp::first_fit(&inst);
        self.dsl.assignment(&inst, &packing)
    }

    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let packing = xplain_domains::vbp::optimal(&inst);
        self.dsl.assignment(&inst, &packing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace::Subspace;
    use xplain_analyzer::geometry::Polytope;

    /// A hand-built subspace (skip the generator for unit tests).
    fn box_subspace(lo: Vec<f64>, hi: Vec<f64>, seed: Vec<f64>, gap: f64) -> Subspace {
        Subspace {
            polytope: Polytope::from_box(&lo, &hi),
            rough_lo: lo,
            rough_hi: hi,
            seed_gap: gap,
            seed,
            predicate_descriptions: Vec::new(),
            leaf_mean_gap: gap,
            leaf_samples: 0,
            evaluations: 0,
        }
    }

    /// The Fig. 4a claim: inside the DP adversarial subspace, the
    /// heuristic-only edges are the pinned demand's shortest path and the
    /// benchmark-only edges are the long path.
    #[test]
    fn dp_heatmap_matches_fig4a() {
        let mapper = DpDslMapper::new(xplain_domains::te::TeProblem::fig1a(), 50.0);
        // Subspace: pinnable 1⇝3 near the threshold, other demands large.
        let sub = box_subspace(
            vec![35.0, 85.0, 85.0],
            vec![50.0, 100.0, 100.0],
            vec![50.0, 100.0, 100.0],
            100.0,
        );
        let params = ExplainerParams {
            samples: 250,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 42);
        assert!(ex.samples_used >= 200, "{}", ex.samples_used);

        let find = |label: &str| -> &EdgeScore {
            ex.edges
                .iter()
                .find(|e| e.label == label)
                .unwrap_or_else(|| panic!("edge {label} missing"))
        };
        // Heuristic-only (red): pinned demand on its shortest path.
        let short = find("1~3->1-2-3");
        assert!(short.score < -0.9, "short path score {}", short.score);
        // Benchmark-only (blue): the optimal reroutes over 1-4-5-3.
        let long = find("1~3->1-4-5-3");
        assert!(long.score > 0.9, "long path score {}", long.score);
        // Both route the other demands on their single paths: score ~ 0.
        let d12 = find("1~2->1-2");
        assert!(d12.score.abs() < 0.2, "1~2 score {}", d12.score);
    }

    /// Fig. 4b in miniature: in the §2 subspace FF places the filler+ball
    /// differently from the optimal.
    #[test]
    fn ff_heatmap_shows_bin_disagreement() {
        let mapper = FfDslMapper::new(4, 3, 1.0);
        let sub = box_subspace(
            vec![0.01, 0.45, 0.51, 0.51],
            vec![0.05, 0.49, 0.55, 0.55],
            vec![0.01, 0.49, 0.51, 0.51],
            1.0,
        );
        let params = ExplainerParams {
            samples: 200,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 7);
        assert!(ex.samples_used >= 150);
        // FF always places B0 (the filler) in Bin0: heuristic uses
        // B0->Bin0 in every sample.
        let b0bin0 = ex.edges.iter().find(|e| e.label == "B0->Bin0").unwrap();
        assert!(
            b0bin0.heuristic_frac > 0.99,
            "B0->Bin0 heuristic frac {}",
            b0bin0.heuristic_frac
        );
        // Some edge must show strong disagreement (|score| large).
        let strongest = ex.strongest_disagreements(1)[0];
        assert!(
            strongest.score.abs() > 0.5,
            "strongest disagreement only {}",
            strongest.score
        );
    }

    #[test]
    fn single_thread_deterministic() {
        let mapper = FfDslMapper::new(3, 3, 1.0);
        let sub = box_subspace(
            vec![0.3, 0.3, 0.3],
            vec![0.6, 0.6, 0.6],
            vec![0.5, 0.5, 0.5],
            1.0,
        );
        let params = ExplainerParams {
            samples: 50,
            threads: 1,
            ..Default::default()
        };
        let a = explain(&mapper, &sub, &params, 99);
        let b = explain(&mapper, &sub, &params, 99);
        assert_eq!(a.samples_used, b.samples_used);
        for (ea, eb) in a.edges.iter().zip(&b.edges) {
            assert_eq!(ea.score, eb.score);
        }
    }

    #[test]
    fn unmappable_samples_skipped() {
        // DSL with 2 bins but instances that may need 3: those samples are
        // skipped, not fatal.
        let mapper = FfDslMapper::new(3, 2, 1.0);
        let sub = box_subspace(
            vec![0.6, 0.6, 0.6],
            vec![0.9, 0.9, 0.9],
            vec![0.7, 0.7, 0.7],
            0.0,
        );
        let params = ExplainerParams {
            samples: 30,
            threads: 1,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 5);
        // Every ball needs its own bin here (all > 0.5): 3 bins > 2.
        assert_eq!(ex.samples_used, 0);
    }
}
