//! The explainer (§5.3): why does the heuristic underperform in a
//! subspace?
//!
//! "We run samples from within each contiguous subspace through the DSL
//! and score edges based on if: (1) both the benchmark and the heuristic
//! send flow on that edge (score = 0); (2) only the benchmark sends flow
//! (score = 1); or (3) only the heuristic sends flow (score = -1). Such a
//! 'heatmap' of the differences … shows how inputs in the subspace
//! interfere with the heuristic."
//!
//! Sampling is fanned out over `std::thread::scope` workers — evaluating
//! a sample means running both the heuristic and an exact benchmark,
//! which is pure CPU work.

use crate::subspace::Subspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xplain_flownet::FlowNet;

/// Domain adapter: maps a concrete input to heuristic/benchmark edge
/// flows over a shared DSL graph.
///
/// Concrete mappers (Demand Pinning, first-fit, LPT, …) live in
/// `xplain-runtime`'s domain adapters — this crate only defines the
/// interface, keeping the explainer domain-agnostic. `Send + Sync`
/// because mappers are shared across sample threads here and built by
/// `Domain` factories on runtime worker threads.
pub trait DslMapper: Send + Sync {
    fn net(&self) -> &FlowNet;

    /// Heuristic edge flows at `x` (`None` when the input cannot be
    /// mapped, e.g. the packing needs more bins than the graph has).
    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>>;

    /// Benchmark (optimal) edge flows at `x`.
    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>>;
}

/// References forward wholesale, so a borrowed `&dyn DslMapper` can be
/// boxed into an owning context (the analysis session holds
/// `Box<dyn DslMapper + 'a>`, which a plain reference satisfies through
/// this impl).
impl<T: DslMapper + ?Sized> DslMapper for &T {
    fn net(&self) -> &FlowNet {
        (**self).net()
    }
    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        (**self).heuristic_flows(x)
    }
    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        (**self).benchmark_flows(x)
    }
}

/// Per-edge aggregate of the heat-map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeScore {
    pub edge_index: usize,
    pub label: String,
    /// Mean of per-sample scores in `[-1, 1]`: negative = heuristic-only
    /// (red), positive = benchmark-only (blue).
    pub score: f64,
    /// Fraction of samples where the heuristic sends flow on this edge.
    pub heuristic_frac: f64,
    /// Fraction of samples where the benchmark sends flow on this edge.
    pub benchmark_frac: f64,
    /// Mean flow the heuristic routes on this edge.
    pub heuristic_mean_flow: f64,
    /// Mean flow the benchmark routes on this edge.
    pub benchmark_mean_flow: f64,
    /// Mean of `benchmark_flow - heuristic_flow` — §5.3's open question
    /// ("the heuristic and benchmark also differ in how much flow they
    /// route on each edge") answered with the obvious statistic.
    pub mean_flow_delta: f64,
}

/// The heat-map for one subspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    pub edges: Vec<EdgeScore>,
    pub samples_used: usize,
}

impl Explanation {
    /// Scores aligned with the DSL's edge ids (for DOT export).
    pub fn score_vector(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.score).collect()
    }

    /// Edges sorted by how strongly the two algorithms disagree.
    pub fn strongest_disagreements(&self, top: usize) -> Vec<&EdgeScore> {
        let mut refs: Vec<&EdgeScore> = self.edges.iter().collect();
        refs.sort_by(|a, b| {
            b.score
                .abs()
                .partial_cmp(&a.score.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        refs.truncate(top);
        refs
    }
}

/// Explainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainerParams {
    /// Samples per subspace (the paper's figures use 3000).
    pub samples: usize,
    /// Flow below this is "not using the edge".
    pub flow_tol: f64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for ExplainerParams {
    fn default() -> Self {
        ExplainerParams {
            samples: 3000,
            flow_tol: 1e-6,
            threads: 0,
        }
    }
}

/// Produce the heat-map for a subspace.
pub fn explain(
    mapper: &dyn DslMapper,
    subspace: &Subspace,
    params: &ExplainerParams,
    seed: u64,
) -> Explanation {
    let n_edges = mapper.net().num_edges();
    let threads = if params.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        params.threads
    };
    let per_thread = params.samples.div_ceil(threads);

    struct Acc {
        score_sum: Vec<f64>,
        h_used: Vec<usize>,
        b_used: Vec<usize>,
        h_flow: Vec<f64>,
        b_flow: Vec<f64>,
        samples: usize,
    }

    let accumulate = |tid: usize| -> Acc {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(tid as u64 * 0x9E3779B9));
        let mut acc = Acc {
            score_sum: vec![0.0; n_edges],
            h_used: vec![0; n_edges],
            b_used: vec![0; n_edges],
            h_flow: vec![0.0; n_edges],
            b_flow: vec![0.0; n_edges],
            samples: 0,
        };
        let lo = &subspace.rough_lo;
        let hi = &subspace.rough_hi;
        let dims = lo.len();
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < per_thread && attempts < per_thread * 40 {
            attempts += 1;
            let x: Vec<f64> = (0..dims).map(|d| rng.gen_range(lo[d]..=hi[d])).collect();
            if !subspace.contains(&x) {
                continue;
            }
            let (Some(hf), Some(bf)) = (mapper.heuristic_flows(&x), mapper.benchmark_flows(&x))
            else {
                continue;
            };
            for e in 0..n_edges {
                let h = hf[e] > params.flow_tol;
                let b = bf[e] > params.flow_tol;
                if h {
                    acc.h_used[e] += 1;
                }
                if b {
                    acc.b_used[e] += 1;
                }
                acc.h_flow[e] += hf[e];
                acc.b_flow[e] += bf[e];
                acc.score_sum[e] += match (h, b) {
                    (true, false) => -1.0,
                    (false, true) => 1.0,
                    _ => 0.0,
                };
            }
            acc.samples += 1;
            produced += 1;
        }
        acc
    };

    let accs: Vec<Acc> = if threads <= 1 {
        vec![accumulate(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| scope.spawn(move || accumulate(tid)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explainer worker panicked"))
                .collect()
        })
    };

    let mut score_sum = vec![0.0; n_edges];
    let mut h_used = vec![0usize; n_edges];
    let mut b_used = vec![0usize; n_edges];
    let mut h_flow = vec![0.0; n_edges];
    let mut b_flow = vec![0.0; n_edges];
    let mut total = 0usize;
    for acc in accs {
        for e in 0..n_edges {
            score_sum[e] += acc.score_sum[e];
            h_used[e] += acc.h_used[e];
            b_used[e] += acc.b_used[e];
            h_flow[e] += acc.h_flow[e];
            b_flow[e] += acc.b_flow[e];
        }
        total += acc.samples;
    }

    let denom = total.max(1) as f64;
    let edges = (0..n_edges)
        .map(|e| EdgeScore {
            edge_index: e,
            label: mapper.net().edges()[e].label.clone(),
            score: score_sum[e] / denom,
            heuristic_frac: h_used[e] as f64 / denom,
            benchmark_frac: b_used[e] as f64 / denom,
            heuristic_mean_flow: h_flow[e] / denom,
            benchmark_mean_flow: b_flow[e] / denom,
            mean_flow_delta: (b_flow[e] - h_flow[e]) / denom,
        })
        .collect();

    Explanation {
        edges,
        samples_used: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_flownet::{SourceInput, SourceKind};

    /// Synthetic mapper over a 2-edge net: the heuristic always routes the
    /// input on `left`; the benchmark routes on `right` whenever
    /// `x[0] > 0.5`. Inside a subspace above 0.5 the heat-map must show
    /// `left` as heuristic-only (red) and `right` as benchmark-only (blue).
    struct TestMapper {
        net: FlowNet,
    }

    impl TestMapper {
        fn new() -> Self {
            let mut net = FlowNet::new("toy");
            let src = net.source(
                "S",
                "SOURCES",
                SourceKind::Pick,
                SourceInput::Var { lo: 0.0, hi: 1.0 },
            );
            let a = net.sink("A", "SINKS", 1.0);
            let b = net.sink("B", "SINKS", 1.0);
            net.edge(src, a, "left");
            net.edge(src, b, "right");
            TestMapper { net }
        }
    }

    impl DslMapper for TestMapper {
        fn net(&self) -> &FlowNet {
            &self.net
        }
        fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
            Some(vec![x[0], 0.0])
        }
        fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
            if x[0] > 0.5 {
                Some(vec![0.0, x[0]])
            } else {
                Some(vec![x[0], 0.0])
            }
        }
    }

    /// A mapper whose flows are never mappable — samples are skipped, not
    /// fatal.
    struct Unmappable {
        net: FlowNet,
    }

    impl DslMapper for Unmappable {
        fn net(&self) -> &FlowNet {
            &self.net
        }
        fn heuristic_flows(&self, _x: &[f64]) -> Option<Vec<f64>> {
            None
        }
        fn benchmark_flows(&self, _x: &[f64]) -> Option<Vec<f64>> {
            None
        }
    }

    #[test]
    fn heatmap_separates_heuristic_and_benchmark_edges() {
        let mapper = TestMapper::new();
        let sub = Subspace::from_rough_box(vec![0.6], vec![0.9], vec![0.8], 1.0);
        let params = ExplainerParams {
            samples: 200,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 42);
        assert!(ex.samples_used >= 150, "{}", ex.samples_used);
        let left = ex.edges.iter().find(|e| e.label == "left").unwrap();
        let right = ex.edges.iter().find(|e| e.label == "right").unwrap();
        assert!(left.score < -0.99, "left score {}", left.score);
        assert!(right.score > 0.99, "right score {}", right.score);
        assert!(left.heuristic_frac > 0.99);
        assert!(right.benchmark_frac > 0.99);
        // Flow deltas mirror the scores.
        assert!(left.mean_flow_delta < 0.0);
        assert!(right.mean_flow_delta > 0.0);
        // The strongest disagreement is one of the two edges at |1|.
        let strongest = ex.strongest_disagreements(1)[0];
        assert!(strongest.score.abs() > 0.99);
    }

    #[test]
    fn agreeing_region_scores_zero() {
        let mapper = TestMapper::new();
        // Below 0.5 both algorithms route on `left`.
        let sub = Subspace::from_rough_box(vec![0.1], vec![0.4], vec![0.2], 0.0);
        let params = ExplainerParams {
            samples: 100,
            threads: 1,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 3);
        for e in &ex.edges {
            assert!(e.score.abs() < 1e-12, "{} score {}", e.label, e.score);
        }
    }

    #[test]
    fn single_thread_deterministic() {
        let mapper = TestMapper::new();
        let sub = Subspace::from_rough_box(vec![0.3], vec![0.9], vec![0.6], 1.0);
        let params = ExplainerParams {
            samples: 50,
            threads: 1,
            ..Default::default()
        };
        let a = explain(&mapper, &sub, &params, 99);
        let b = explain(&mapper, &sub, &params, 99);
        assert_eq!(a.samples_used, b.samples_used);
        for (ea, eb) in a.edges.iter().zip(&b.edges) {
            assert_eq!(ea.score, eb.score);
        }
    }

    #[test]
    fn unmappable_samples_skipped() {
        let mapper = Unmappable {
            net: TestMapper::new().net,
        };
        let sub = Subspace::from_rough_box(vec![0.0], vec![1.0], vec![0.5], 0.0);
        let params = ExplainerParams {
            samples: 30,
            threads: 1,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 5);
        assert_eq!(ex.samples_used, 0);
    }
}
