//! Request routing: `(method, path)` → typed [`Route`].
//!
//! The API surface is small and fixed, so routing is an explicit match
//! over path segments — no pattern language, no allocation beyond the id
//! capture. Unknown paths are 404; known paths with the wrong method are
//! 405 carrying the allowed method for the `Allow` header.

/// The API surface (see DESIGN.md §8 for semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/jobs` — submit a `JobSpec`, deduplicated.
    SubmitJob,
    /// `GET /v1/jobs/{id}` — status + outcome.
    JobStatus(String),
    /// `GET /v1/jobs/{id}/events` — chunked NDJSON event stream.
    JobEvents(String),
    /// `POST /v1/jobs/{id}/cancel` — cooperative cancellation.
    CancelJob(String),
    /// `GET /v1/domains` — registered domain ids.
    Domains,
    /// `GET /v1/queue` — waiting-line depth + per-job summaries (the
    /// surface an idle mesh peer polls before stealing).
    QueueInfo,
    /// `POST /v1/queue/steal` — donate up to `{"max": N}` waiting jobs
    /// to the calling peer (work stealing; donated jobs stay queued
    /// locally as the safety net).
    Steal,
    /// `GET /v1/metrics` — queue/cache/solver/latency metrics.
    Metrics,
    /// `GET /v1/regressions` — paginated regression-bank listing
    /// (`?offset=&limit=`).
    Regressions,
    /// `POST /v1/tune` — run the repair loop, streaming one NDJSON line
    /// per generation plus a terminal report line.
    Tune,
    /// `POST /v1/shutdown` — graceful shutdown (checkpoints in-flight
    /// sessions).
    Shutdown,
}

impl Route {
    /// Stable label for per-route latency metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            Route::SubmitJob => "POST /v1/jobs",
            Route::JobStatus(_) => "GET /v1/jobs/{id}",
            Route::JobEvents(_) => "GET /v1/jobs/{id}/events",
            Route::CancelJob(_) => "POST /v1/jobs/{id}/cancel",
            Route::Domains => "GET /v1/domains",
            Route::QueueInfo => "GET /v1/queue",
            Route::Steal => "POST /v1/queue/steal",
            Route::Metrics => "GET /v1/metrics",
            Route::Regressions => "GET /v1/regressions",
            Route::Tune => "POST /v1/tune",
            Route::Shutdown => "POST /v1/shutdown",
        }
    }
}

/// Every route tag, in display order (the metrics report iterates this).
pub const ROUTE_TAGS: [&str; 11] = [
    "POST /v1/jobs",
    "GET /v1/jobs/{id}",
    "GET /v1/jobs/{id}/events",
    "POST /v1/jobs/{id}/cancel",
    "GET /v1/domains",
    "GET /v1/queue",
    "POST /v1/queue/steal",
    "GET /v1/metrics",
    "GET /v1/regressions",
    "POST /v1/tune",
    "POST /v1/shutdown",
];

/// Routing failures, mapped to their status codes by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    NotFound,
    /// Path exists, method doesn't; carries the `Allow` value.
    MethodNotAllowed {
        allowed: &'static str,
    },
}

/// Match a request to a route.
pub fn route(method: &str, path: &str) -> Result<Route, RouteError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["v1", "jobs"] => match method {
            "POST" => Ok(Route::SubmitJob),
            _ => Err(RouteError::MethodNotAllowed { allowed: "POST" }),
        },
        ["v1", "jobs", id] => match method {
            "GET" => Ok(Route::JobStatus((*id).to_string())),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "jobs", id, "events"] => match method {
            "GET" => Ok(Route::JobEvents((*id).to_string())),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "jobs", id, "cancel"] => match method {
            "POST" => Ok(Route::CancelJob((*id).to_string())),
            _ => Err(RouteError::MethodNotAllowed { allowed: "POST" }),
        },
        ["v1", "domains"] => match method {
            "GET" => Ok(Route::Domains),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "queue"] => match method {
            "GET" => Ok(Route::QueueInfo),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "queue", "steal"] => match method {
            "POST" => Ok(Route::Steal),
            _ => Err(RouteError::MethodNotAllowed { allowed: "POST" }),
        },
        ["v1", "metrics"] => match method {
            "GET" => Ok(Route::Metrics),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "regressions"] => match method {
            "GET" => Ok(Route::Regressions),
            _ => Err(RouteError::MethodNotAllowed { allowed: "GET" }),
        },
        ["v1", "tune"] => match method {
            "POST" => Ok(Route::Tune),
            _ => Err(RouteError::MethodNotAllowed { allowed: "POST" }),
        },
        ["v1", "shutdown"] => match method {
            "POST" => Ok(Route::Shutdown),
            _ => Err(RouteError::MethodNotAllowed { allowed: "POST" }),
        },
        _ => Err(RouteError::NotFound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_the_full_api_surface() {
        assert_eq!(route("POST", "/v1/jobs"), Ok(Route::SubmitJob));
        assert_eq!(
            route("GET", "/v1/jobs/00ff00ff00ff00ff"),
            Ok(Route::JobStatus("00ff00ff00ff00ff".into()))
        );
        assert_eq!(
            route("GET", "/v1/jobs/abc/events"),
            Ok(Route::JobEvents("abc".into()))
        );
        assert_eq!(
            route("POST", "/v1/jobs/abc/cancel"),
            Ok(Route::CancelJob("abc".into()))
        );
        assert_eq!(route("GET", "/v1/domains"), Ok(Route::Domains));
        assert_eq!(route("GET", "/v1/queue"), Ok(Route::QueueInfo));
        assert_eq!(route("POST", "/v1/queue/steal"), Ok(Route::Steal));
        assert_eq!(route("GET", "/v1/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/v1/regressions"), Ok(Route::Regressions));
        assert_eq!(route("POST", "/v1/tune"), Ok(Route::Tune));
        assert_eq!(route("POST", "/v1/shutdown"), Ok(Route::Shutdown));
        // Trailing slashes are tolerated (empty segments filtered).
        assert_eq!(route("GET", "/v1/domains/"), Ok(Route::Domains));
    }

    #[test]
    fn wrong_method_is_405_with_allow() {
        assert_eq!(
            route("GET", "/v1/shutdown"),
            Err(RouteError::MethodNotAllowed { allowed: "POST" })
        );
        assert_eq!(
            route("DELETE", "/v1/jobs"),
            Err(RouteError::MethodNotAllowed { allowed: "POST" })
        );
        assert_eq!(
            route("POST", "/v1/jobs/x/events"),
            Err(RouteError::MethodNotAllowed { allowed: "GET" })
        );
        assert_eq!(
            route("POST", "/v1/queue"),
            Err(RouteError::MethodNotAllowed { allowed: "GET" })
        );
        assert_eq!(
            route("GET", "/v1/queue/steal"),
            Err(RouteError::MethodNotAllowed { allowed: "POST" })
        );
        assert_eq!(
            route("POST", "/v1/regressions"),
            Err(RouteError::MethodNotAllowed { allowed: "GET" })
        );
        assert_eq!(
            route("GET", "/v1/tune"),
            Err(RouteError::MethodNotAllowed { allowed: "POST" })
        );
    }

    #[test]
    fn unknown_paths_are_404() {
        assert_eq!(route("GET", "/"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/v2/jobs"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/v1/jobs/a/b/c"), Err(RouteError::NotFound));
    }

    #[test]
    fn tags_cover_every_route() {
        for r in [
            Route::SubmitJob,
            Route::JobStatus("x".into()),
            Route::JobEvents("x".into()),
            Route::CancelJob("x".into()),
            Route::Domains,
            Route::QueueInfo,
            Route::Steal,
            Route::Metrics,
            Route::Regressions,
            Route::Tune,
            Route::Shutdown,
        ] {
            assert!(ROUTE_TAGS.contains(&r.tag()), "{} missing", r.tag());
        }
    }
}
