//! Minimal HTTP/1.1 over `std::net` — exactly what the JSON API needs,
//! nothing more.
//!
//! The workspace policy is std-only (no crates.io), so the wire protocol
//! is hand-rolled: request parsing with hard size caps, fixed-length
//! responses with `Content-Length`, and chunked transfer encoding for
//! the NDJSON event stream. Every connection is single-request
//! (`Connection: close`) — the API's requests are independent, clients
//! are loopback/LAN operators and load generators, and close-per-request
//! removes the whole class of pipelining/framing bugs a vendored server
//! could get wrong silently.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on request bodies (a `JobSpec` is ~1KB; 1MB is generous).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path only — routing never sees query strings.
    pub path: String,
    /// Raw query string (everything after the first `?`, no leading
    /// `?`); empty when the target had none.
    pub query: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of one `key=value` query parameter (first occurrence;
    /// no percent-decoding — this API's parameters are plain integers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not UTF-8".into()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a complete request (normal churn —
    /// not worth a response).
    Closed,
    /// Malformed request; answer 400.
    BadRequest(String),
    /// Head or body over the cap; answer 413.
    TooLarge,
    /// Socket-level failure (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a complete request"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge => write!(f, "request exceeds size caps"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // Accumulate the head byte-wise up to the blank line. Byte-at-a-time
    // via BufReader is fine at this request rate, and never over-reads
    // into the body.
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    loop {
        let mut line = Vec::new();
        let n = reader.read_until(b'\n', &mut line).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(if head.is_empty() {
                HttpError::Closed
            } else {
                HttpError::BadRequest("truncated request head".into())
            });
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        if line == b"\r\n" || line == b"\n" {
            if head.len() == line.len() {
                // Leading blank line before the request line: ignore it
                // (RFC 9112 §2.2) and keep reading.
                head.clear();
                continue;
            }
            break;
        }
    }
    let head_text = String::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest("unparsable content-length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A fixed-length response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        #[derive(serde::Serialize)]
        struct ErrorBody {
            error: String,
        }
        Response::json(
            status,
            serde_json::to_string(&ErrorBody {
                error: message.to_string(),
            })
            .expect("error body serializes"),
        )
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize and send (adds `Content-Length` and `Connection:
    /// close`).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(b"Connection: close\r\n\r\n");
        out.extend_from_slice(&self.body);
        stream.write_all(&out)?;
        stream.flush()
    }
}

/// Begin a chunked response (the NDJSON event stream). Follow with
/// [`write_chunk`] per line and [`finish_chunked`] to terminate.
pub fn start_chunked(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason_phrase(status)
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Send one chunk (flushes — subscribers see events live, not when a
/// buffer happens to fill).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(()); // a zero-length chunk would terminate the stream
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// The reason phrases this API emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip helper: write `raw` into a loopback socket, parse it
    /// server-side.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let parsed = read_request(&mut server_side);
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = parse_raw(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "hello world");
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        // RFC 9112 §2.2: ignore at least one CRLF before the request
        // line (robust clients sometimes send one after a POST body).
        let req = parse_raw(b"\r\nGET /v1/metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        let req = parse_raw(b"\n\r\nPOST /v1/shutdown HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
    }

    #[test]
    fn splits_query_strings_off_the_path() {
        let req = parse_raw(b"GET /v1/metrics?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("missing"), None);

        let req = parse_raw(b"GET /v1/regressions?offset=10&limit=5 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/regressions");
        assert_eq!(req.query_param("offset"), Some("10"));
        assert_eq!(req.query_param("limit"), Some("5"));

        let req = parse_raw(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("anything"), None);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            parse_raw(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse_raw(huge.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_raw(raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn response_wire_shape() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut buf = String::new();
            c.read_to_string(&mut buf).unwrap();
            buf
        });
        let (mut server_side, _) = listener.accept().unwrap();
        Response::error(429, "busy")
            .with_header("Retry-After", "2")
            .write_to(&mut server_side)
            .unwrap();
        drop(server_side);
        let wire = reader.join().unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{wire}"
        );
        assert!(wire.contains("Retry-After: 2\r\n"));
        assert!(wire.contains("Connection: close\r\n"));
        assert!(wire.ends_with("{\"error\":\"busy\"}"));
    }
}
