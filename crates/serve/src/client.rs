//! A minimal blocking HTTP/1.1 client for the serve API.
//!
//! Exists so the e2e tests, the CI smoke, and the `xplain-bench` load
//! generator share one loopback client instead of three hand-rolled
//! socket readers (and so operators get a scriptable client without
//! installing anything — the README's `curl` examples map 1:1 onto
//! these calls). Speaks exactly what the server emits: fixed-length
//! bodies via `Content-Length` and chunked NDJSON streams, one request
//! per connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// First wait between [`Client::post_retry`] attempts when the server
/// sends no `Retry-After` hint; doubles per retry up to the cap.
pub const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(25);
/// Longest a single [`Client::post_retry`] wait can be, hinted or not —
/// `Retry-After` is an estimate, and a gateway blocked for tens of
/// seconds on one shard serves its tenant worse than failing over.
pub const RETRY_WAIT_CAP: Duration = Duration::from_secs(2);

/// A buffered response (fixed-length or fully-drained chunked body).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Client for one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    /// Extra headers sent with every request (auth, forwarded tenant).
    headers: Vec<(String, String)>,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            headers: Vec::new(),
        }
    }

    /// Override the per-socket read timeout (streams of long jobs idle
    /// between events; the default 30s accommodates debug-build jobs).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attach a header to every request this client sends.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Authenticate every request with `Authorization: Bearer <key>`
    /// (a server running with a tenant registry requires it on
    /// submission routes).
    pub fn with_bearer(self, api_key: &str) -> Self {
        self.with_header("Authorization", &format!("Bearer {api_key}"))
    }

    /// Forward an already-authenticated tenant identity
    /// (`X-Xplain-Tenant`) — what the mesh gateway attaches when
    /// relaying to shards behind it.
    pub fn with_tenant(self, tenant_id: &str) -> Self {
        self.with_header("X-Xplain-Tenant", tenant_id)
    }

    pub fn get(&self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    pub fn post(&self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// POST that honors `429 Too Many Requests` instead of surfacing it:
    /// waits out the server's `Retry-After` hint (clamped between the
    /// current backoff step and [`RETRY_WAIT_CAP`]) and retries, with
    /// exponential backoff when the server sends no hint. Bounded: at
    /// most `max_attempts` requests total — if the last one still
    /// answers 429, that response is returned and the caller decides
    /// (the mesh gateway fails over to another shard at that point).
    /// Non-429 responses, including other errors, return immediately.
    pub fn post_retry(
        &self,
        path: &str,
        body: &str,
        max_attempts: u32,
    ) -> std::io::Result<HttpResponse> {
        let mut backoff = RETRY_BACKOFF_BASE;
        let mut response = self.post(path, body)?;
        let mut attempts = 1;
        while response.status == 429 && attempts < max_attempts.max(1) {
            let wait = retry_wait(response.header("retry-after"), backoff);
            std::thread::sleep(wait);
            backoff = (backoff * 2).min(RETRY_WAIT_CAP);
            response = self.post(path, body)?;
            attempts += 1;
        }
        Ok(response)
    }

    /// Open a streaming GET (the events endpoint); returns the response
    /// head and a line-by-line reader over the chunked NDJSON body.
    pub fn stream(&self, path: &str) -> std::io::Result<(u16, EventStream)> {
        let (status, _headers, events) = self.stream_request("GET", path, None)?;
        Ok((status, events))
    }

    /// Open a streaming POST (the tune endpoint); like [`Client::stream`]
    /// but carrying a request body, and returning the response headers so
    /// a proxy can relay `Retry-After` on buffered error responses.
    pub fn stream_post(
        &self,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Vec<(String, String)>, EventStream)> {
        self.stream_request("POST", path, Some(body))
    }

    fn stream_request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, Vec<(String, String)>, EventStream)> {
        let mut stream = self.connect()?;
        write_request(&mut stream, method, path, body, &self.headers)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        let chunked = header_value(&headers, "transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let events = EventStream {
            reader,
            chunked,
            buffer: Vec::new(),
            done: false,
        };
        Ok((status, headers, events))
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut stream = self.connect()?;
        write_request(&mut stream, method, path, body, &self.headers)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        let body = read_body(&mut reader, &headers)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

/// How long [`Client::post_retry`] sleeps before its next attempt, given
/// the server's raw `Retry-After` header (if any) and the current
/// exponential-backoff step. The hint is advisory: a missing, malformed,
/// or negative value falls back to the backoff step, and any value is
/// clamped to `[backoff, RETRY_WAIT_CAP]` — a zero hint never busy-spins
/// and a huge hint never stalls the caller past the cap. (If `backoff`
/// itself exceeds the cap, the wait is exactly `backoff`; the caller
/// already bounds its steps at the cap.)
fn retry_wait(hint: Option<&str>, backoff: Duration) -> Duration {
    let hinted = hint
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs);
    hinted
        .unwrap_or(backoff)
        .clamp(backoff, RETRY_WAIT_CAP.max(backoff))
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(String, String)],
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: xplain\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn bad_data(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_head(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let status_line = read_line(reader)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_data(format!("malformed status line '{status_line}'")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn read_body(
    reader: &mut BufReader<TcpStream>,
    headers: &[(String, String)],
) -> std::io::Result<String> {
    let mut raw = Vec::new();
    if header_value(headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        while let Some(chunk) = read_chunk(reader)? {
            raw.extend_from_slice(&chunk);
        }
    } else if let Some(len) = header_value(headers, "content-length") {
        let len: usize = len.parse().map_err(|_| bad_data("bad content-length"))?;
        raw.resize(len, 0);
        reader.read_exact(&mut raw)?;
    } else {
        reader.read_to_end(&mut raw)?;
    }
    String::from_utf8(raw).map_err(|_| bad_data("response body is not UTF-8"))
}

/// One chunk of a chunked body; `None` at the terminating zero chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Vec<u8>>> {
    let size_line = read_line(reader)?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| bad_data(format!("bad chunk size '{size_line}'")))?;
    if size == 0 {
        let _ = read_line(reader); // trailing CRLF after the last chunk
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let _ = read_line(reader)?; // chunk-terminating CRLF
    Ok(Some(data))
}

/// Incremental line reader over a (possibly chunked) NDJSON stream.
/// Lines may span chunk boundaries; this reassembles them.
pub struct EventStream {
    reader: BufReader<TcpStream>,
    chunked: bool,
    buffer: Vec<u8>,
    done: bool,
}

impl EventStream {
    /// The next NDJSON line, or `None` once the stream has ended.
    /// Blocks until a line arrives (bounded by the client's read
    /// timeout).
    pub fn next_line(&mut self) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let rest = self.buffer.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buffer, rest);
                line.pop(); // the newline
                let line =
                    String::from_utf8(line).map_err(|_| bad_data("stream line is not UTF-8"))?;
                return Ok(Some(line));
            }
            if self.done {
                // Flush a trailing line that ended at EOF without a
                // newline (fixed-length error bodies relayed through a
                // streaming call).
                if self.buffer.is_empty() {
                    return Ok(None);
                }
                let line = String::from_utf8(std::mem::take(&mut self.buffer))
                    .map_err(|_| bad_data("stream line is not UTF-8"))?;
                return Ok(Some(line));
            }
            if self.chunked {
                match read_chunk(&mut self.reader)? {
                    Some(chunk) => self.buffer.extend_from_slice(&chunk),
                    None => self.done = true,
                }
            } else {
                let mut byte = [0u8; 1024];
                let n = self.reader.read(&mut byte)?;
                if n == 0 {
                    self.done = true;
                } else {
                    self.buffer.extend_from_slice(&byte[..n]);
                }
            }
        }
    }

    /// Drain the remainder of the stream into a vector of lines.
    pub fn collect_lines(&mut self) -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        while let Some(line) = self.next_line()? {
            lines.push(line);
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Drain one request (head + the tiny `{}` body the tests send) so
    /// the client never hits a broken pipe mid-write.
    fn read_full_request(stream: &mut TcpStream) {
        let mut data = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    data.extend_from_slice(&buf[..n]);
                    if data.windows(4).any(|w| w == b"\r\n\r\n") && data.ends_with(b"{}") {
                        break;
                    }
                }
            }
        }
    }

    fn fake_server(responses: Vec<&'static str>) -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let mut served = 0;
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                read_full_request(&mut stream);
                stream.write_all(response.as_bytes()).unwrap();
                served += 1;
            }
            served
        });
        (addr, join)
    }

    const BUSY: &str = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 0\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy";
    const OK: &str = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";

    #[test]
    fn post_retry_waits_out_429s_until_success() {
        let (addr, server) = fake_server(vec![BUSY, BUSY, OK]);
        let client = Client::new(addr).with_timeout(Duration::from_secs(5));
        let response = client.post_retry("/v1/jobs", "{}", 5).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "ok");
        assert_eq!(server.join().unwrap(), 3, "exactly two retries");
    }

    #[test]
    fn post_retry_is_bounded_and_surfaces_the_final_429() {
        let (addr, server) = fake_server(vec![BUSY, BUSY, BUSY]);
        let client = Client::new(addr).with_timeout(Duration::from_secs(5));
        let response = client.post_retry("/v1/jobs", "{}", 3).unwrap();
        assert_eq!(response.status, 429, "caller still sees the final 429");
        assert_eq!(response.header("retry-after"), Some("0"));
        assert_eq!(server.join().unwrap(), 3, "no more than max_attempts");
    }

    #[test]
    fn retry_wait_falls_back_to_backoff_without_a_usable_hint() {
        let backoff = Duration::from_millis(100);
        // No header, unparsable text, and negative seconds all mean "no
        // hint": wait exactly the current backoff step.
        assert_eq!(retry_wait(None, backoff), backoff);
        assert_eq!(retry_wait(Some("garbage"), backoff), backoff);
        assert_eq!(retry_wait(Some(""), backoff), backoff);
        assert_eq!(retry_wait(Some("-1"), backoff), backoff);
        assert_eq!(retry_wait(Some("1.5"), backoff), backoff);
    }

    #[test]
    fn retry_wait_clamps_hints_between_backoff_and_cap() {
        let backoff = Duration::from_millis(100);
        // A zero hint would busy-spin; it is raised to the backoff floor.
        assert_eq!(retry_wait(Some("0"), backoff), backoff);
        // An in-range hint is honored (whitespace tolerated).
        assert_eq!(retry_wait(Some("1"), backoff), Duration::from_secs(1));
        assert_eq!(retry_wait(Some(" 2 "), backoff), RETRY_WAIT_CAP);
        // A huge hint (misconfigured peer, u64 seconds) hits the cap
        // instead of stalling the caller for days.
        assert_eq!(retry_wait(Some("99999"), backoff), RETRY_WAIT_CAP);
        assert_eq!(
            retry_wait(Some("18446744073709551615"), backoff),
            RETRY_WAIT_CAP
        );
    }

    #[test]
    fn retry_wait_never_shrinks_an_oversized_backoff() {
        // Degenerate case: if the backoff step somehow exceeds the cap,
        // the clamp must not invert (Duration::clamp panics when
        // min > max) — the wait is the backoff itself.
        let big = RETRY_WAIT_CAP * 3;
        assert_eq!(retry_wait(Some("1"), big), big);
        assert_eq!(retry_wait(None, big), big);
    }

    #[test]
    fn post_retry_returns_non_429_immediately() {
        let (addr, server) = fake_server(vec![OK]);
        let client = Client::new(addr).with_timeout(Duration::from_secs(5));
        let response = client.post_retry("/v1/jobs", "{}", 5).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(server.join().unwrap(), 1, "no retry on success");
    }
}
