//! The `GET /v1/metrics` surface: queue gauges, cache effectiveness,
//! process-wide solver counters, and per-route latency histograms.
//!
//! Latencies land in log-bucketed [`xplain_stats::Histogram`]s (constant
//! memory on a long-lived server; quantile error bounded by the bucket
//! growth factor — see that module's docs). One histogram per route tag,
//! each behind its own mutex: recording is a few comparisons, so the
//! lock is never the bottleneck next to socket I/O.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use xplain_lp::SolverCounters;
use xplain_runtime::{BankInfo, JobJournal, JobQueue, JournalStats, ResultStore, TenantCounters};
use xplain_stats::Histogram;

use crate::router::ROUTE_TAGS;

/// Live mesh gauges for one shard (or gateway). Owned by the mesh layer
/// — the membership heartbeat and the steal loop update it — and shared
/// with the server (via `ServerConfig::mesh`) so `GET /v1/metrics`
/// reports it. All atomics: writers never block the metrics endpoint.
pub struct MeshStatus {
    /// This process's stable shard id (the gateway uses `"gateway"`).
    shard_id: String,
    ring_epoch: AtomicU64,
    peers_total: AtomicUsize,
    peers_healthy: AtomicUsize,
    jobs_stolen: AtomicU64,
}

impl MeshStatus {
    pub fn new(shard_id: impl Into<String>) -> Self {
        MeshStatus {
            shard_id: shard_id.into(),
            ring_epoch: AtomicU64::new(0),
            peers_total: AtomicUsize::new(0),
            peers_healthy: AtomicUsize::new(0),
            jobs_stolen: AtomicU64::new(0),
        }
    }

    pub fn shard_id(&self) -> &str {
        &self.shard_id
    }

    /// Record a membership view change (epoch + health counts).
    pub fn set_view(&self, epoch: u64, peers_total: usize, peers_healthy: usize) {
        self.ring_epoch.store(epoch, Ordering::Relaxed);
        self.peers_total.store(peers_total, Ordering::Relaxed);
        self.peers_healthy.store(peers_healthy, Ordering::Relaxed);
    }

    /// Count jobs this process pulled from peers' queues.
    pub fn add_stolen(&self, n: u64) {
        self.jobs_stolen.fetch_add(n, Ordering::Relaxed);
    }

    pub fn jobs_stolen(&self) -> u64 {
        self.jobs_stolen.load(Ordering::Relaxed)
    }

    /// Snapshot for the metrics report (`jobs_donated` comes from the
    /// queue's counters, not this struct — donation happens inside the
    /// victim's queue).
    pub fn report(&self, jobs_donated: u64) -> MeshReport {
        MeshReport {
            shard_id: self.shard_id.clone(),
            ring_epoch: self.ring_epoch.load(Ordering::Relaxed),
            peers_total: self.peers_total.load(Ordering::Relaxed),
            peers_healthy: self.peers_healthy.load(Ordering::Relaxed),
            jobs_stolen: self.jobs_stolen.load(Ordering::Relaxed),
            jobs_donated,
        }
    }
}

impl std::fmt::Debug for MeshStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshStatus")
            .field("shard_id", &self.shard_id)
            .field("ring_epoch", &self.ring_epoch.load(Ordering::Relaxed))
            .field("peers_total", &self.peers_total.load(Ordering::Relaxed))
            .field("peers_healthy", &self.peers_healthy.load(Ordering::Relaxed))
            .field("jobs_stolen", &self.jobs_stolen.load(Ordering::Relaxed))
            .finish()
    }
}

/// Live metric collectors for one server.
pub struct ServerMetrics {
    started: Instant,
    /// Baseline so the report shows solver work done *by this server*,
    /// not whatever the process accumulated before it started.
    solver_at_start: SolverCounters,
    routes: Vec<(&'static str, Mutex<Histogram>)>,
}

impl ServerMetrics {
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            solver_at_start: SolverCounters::snapshot(),
            routes: ROUTE_TAGS
                .iter()
                .map(|tag| (*tag, Mutex::new(Histogram::latency_ms())))
                .collect(),
        }
    }

    /// Record one request's latency under its route tag.
    pub fn observe(&self, tag: &str, latency_ms: f64) {
        if let Some((_, hist)) = self.routes.iter().find(|(t, _)| *t == tag) {
            hist.lock().expect("route histogram").record(latency_ms);
        }
    }

    /// Assemble the report against the live queue (and store, when one is
    /// attached).
    pub fn report(&self, queue: &JobQueue<'_>, store: Option<&ResultStore>) -> MetricsReport {
        self.report_with_mesh(queue, store, None)
    }

    /// [`ServerMetrics::report`] with the mesh gauges attached (shards
    /// and gateways running under `xplain-mesh`).
    pub fn report_with_mesh(
        &self,
        queue: &JobQueue<'_>,
        store: Option<&ResultStore>,
        mesh: Option<&MeshStatus>,
    ) -> MetricsReport {
        self.report_full(queue, store, mesh, None, None)
    }

    /// The full report: mesh gauges, write-ahead journal stats (a
    /// server running with durability attaches its journal here), and —
    /// when tenancy is enforcing — the per-tenant `tenants` block.
    pub fn report_full(
        &self,
        queue: &JobQueue<'_>,
        store: Option<&ResultStore>,
        mesh: Option<&MeshStatus>,
        journal: Option<&JobJournal>,
        tenants: Option<Vec<TenantCounters>>,
    ) -> MetricsReport {
        let counters = queue.counters();
        MetricsReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue: QueueReport {
                depth: queue.depth(),
                active_sessions: queue.active(),
                submitted: counters.submitted,
                completed: counters.completed,
                cancelled: counters.cancelled,
                rejected_busy: counters.rejected_full,
                cache_hits: counters.cache_hits,
                cache_hit_rate: if counters.submitted > 0 {
                    counters.cache_hits as f64 / counters.submitted as f64
                } else {
                    0.0
                },
                donated: counters.donated,
                recovered: counters.recovered,
            },
            tenants: tenants.map(|list| list.into_iter().map(TenantReport::from).collect()),
            store_entries: store.map(|s| s.len()),
            bank: store.map(|s| s.bank().info()),
            journal: journal.map(|j| j.stats()),
            mesh: mesh.map(|m| m.report(counters.donated)),
            solver: SolverCounters::snapshot().since(&self.solver_at_start),
            routes: self
                .routes
                .iter()
                .filter_map(|(tag, hist)| {
                    let h = hist.lock().expect("route histogram");
                    (!h.is_empty()).then(|| RouteLatency {
                        route: (*tag).to_string(),
                        count: h.count(),
                        mean_ms: h.mean().unwrap_or(0.0),
                        p50_ms: h.quantile(0.50).unwrap_or(0.0),
                        p90_ms: h.quantile(0.90).unwrap_or(0.0),
                        p99_ms: h.quantile(0.99).unwrap_or(0.0),
                        max_ms: h.max().unwrap_or(0.0),
                    })
                })
                .collect(),
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

/// The `GET /v1/metrics` response body.
///
/// `Serialize` is written by hand (not derived) for one reason: the
/// `tenants` block must be *absent* in open mode, not `null`. The
/// conformance suite pins the exact top-level key list, and the
/// open-mode contract (DESIGN.md §12) is byte-for-byte compatibility
/// with the pre-tenancy wire format — a derived `Option` field would
/// emit `"tenants":null` unconditionally.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    pub uptime_ms: u64,
    pub queue: QueueReport,
    /// Per-tenant gauges, sorted by tenant id. `None` (key absent on the
    /// wire) when the server runs in open mode.
    pub tenants: Option<Vec<TenantReport>>,
    /// Committed results on disk (`null` when the server runs storeless).
    pub store_entries: Option<usize>,
    /// Regression-bank gauges — entry count, bytes on disk, and the last
    /// replay-gate verdict (`null` when the server runs storeless).
    pub bank: Option<BankInfo>,
    /// Write-ahead journal gauges (`null` when the server runs without
    /// durability — no store, or `--no-journal`).
    pub journal: Option<JournalStats>,
    /// Mesh gauges (`null` on a standalone server).
    pub mesh: Option<MeshReport>,
    /// Solver work since this server started (process-wide counters; a
    /// superset of served work if something else solves in-process).
    pub solver: SolverCounters,
    /// Per-route latency, routes with traffic only.
    pub routes: Vec<RouteLatency>,
}

impl Serialize for MetricsReport {
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("uptime_ms".into(), self.uptime_ms.to_value()),
            ("queue".into(), self.queue.to_value()),
        ];
        if let Some(tenants) = &self.tenants {
            map.push(("tenants".into(), tenants.to_value()));
        }
        map.push(("store_entries".into(), self.store_entries.to_value()));
        map.push(("bank".into(), self.bank.to_value()));
        map.push(("journal".into(), self.journal.to_value()));
        map.push(("mesh".into(), self.mesh.to_value()));
        map.push(("solver".into(), self.solver.to_value()));
        map.push(("routes".into(), self.routes.to_value()));
        serde::Value::Map(map)
    }
}

/// One tenant's entry in the metrics `tenants` block. Field order is the
/// wire key order and is pinned by the conformance suite.
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    pub tenant: String,
    /// Fair-share weight (DRR grants `weight / active_weight` of every
    /// dispatch round).
    pub weight: u64,
    /// Jobs waiting in this tenant's lane.
    pub pending: usize,
    /// Sessions executing for this tenant right now.
    pub running: usize,
    pub submitted: u64,
    pub completed: u64,
    /// Submissions answered 429 — global capacity, in-flight cap, or
    /// submit rate.
    pub rejected: u64,
}

impl From<TenantCounters> for TenantReport {
    fn from(c: TenantCounters) -> Self {
        TenantReport {
            tenant: c.tenant,
            weight: c.weight,
            pending: c.pending,
            running: c.running,
            submitted: c.submitted,
            completed: c.completed,
            rejected: c.rejected,
        }
    }
}

#[derive(Debug, Clone, Serialize)]
pub struct QueueReport {
    /// Jobs waiting for a worker.
    pub depth: usize,
    /// Sessions executing right now.
    pub active_sessions: usize,
    pub submitted: u64,
    pub completed: u64,
    pub cancelled: u64,
    /// Submissions answered 429.
    pub rejected_busy: u64,
    pub cache_hits: u64,
    /// `cache_hits / submitted` — the fraction of accepted submissions
    /// answered from cache (0 before any traffic).
    pub cache_hit_rate: f64,
    /// Waiting jobs handed to mesh peers (0 on a standalone server).
    pub donated: u64,
    /// Jobs re-enqueued from the write-ahead journal at startup.
    pub recovered: u64,
}

/// The `mesh` block of the metrics report — one shard's view of the
/// distributed tier.
#[derive(Debug, Clone, Serialize)]
pub struct MeshReport {
    pub shard_id: String,
    /// Monotonic membership-view epoch (bumps only when peer health
    /// actually changes — routers never flip-flop within an epoch).
    pub ring_epoch: u64,
    pub peers_total: usize,
    pub peers_healthy: usize,
    /// Jobs this process pulled from busy peers.
    pub jobs_stolen: u64,
    /// Jobs this process's queue handed to idle peers.
    pub jobs_donated: u64,
}

#[derive(Debug, Clone, Serialize)]
pub struct RouteLatency {
    pub route: String,
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_runtime::{DomainRegistry, QueueOptions};

    #[test]
    fn report_reflects_observations_and_queue_state() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let metrics = ServerMetrics::new();
        for ms in [1.0, 2.0, 4.0] {
            metrics.observe("GET /v1/metrics", ms);
        }
        metrics.observe("no-such-route", 9.0); // silently ignored

        let report = metrics.report(&queue, None);
        assert_eq!(report.queue.depth, 0);
        assert_eq!(report.queue.active_sessions, 0);
        assert_eq!(report.queue.cache_hit_rate, 0.0);
        assert!(report.store_entries.is_none());
        assert_eq!(report.routes.len(), 1, "only routes with traffic appear");
        let r = &report.routes[0];
        assert_eq!(r.route, "GET /v1/metrics");
        assert_eq!(r.count, 3);
        assert!(r.p50_ms > 0.0 && r.p50_ms <= r.p99_ms && r.p99_ms <= r.max_ms);

        // The report serializes (the endpoint's whole job).
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"cache_hit_rate\""), "{json}");
        assert!(json.contains("GET /v1/metrics"), "{json}");
        // Standalone servers report no mesh block; storeless servers no
        // bank block.
        assert!(report.mesh.is_none());
        assert!(json.contains("\"mesh\":null"), "{json}");
        assert!(report.bank.is_none());
        assert!(json.contains("\"bank\":null"), "{json}");
    }

    #[test]
    fn bank_gauges_ride_the_metrics_surface() {
        let registry = DomainRegistry::builtin();
        let dir = std::env::temp_dir().join(format!("xplain-metrics-bank-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = xplain_runtime::ResultStore::new(&dir);
        let queue = JobQueue::new(&registry, Some(&store), QueueOptions::default(), None);
        let metrics = ServerMetrics::new();
        let report = metrics.report(&queue, Some(&store));
        let bank = report.bank.as_ref().expect("bank block present");
        assert_eq!(bank.entries, 0);
        assert_eq!(bank.last_replay_pass, None);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"bank\":{\"entries\":0"), "{json}");
    }

    #[test]
    fn mesh_gauges_ride_the_metrics_surface() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let metrics = ServerMetrics::new();
        let mesh = MeshStatus::new("shard-1");
        mesh.set_view(3, 4, 2);
        mesh.add_stolen(5);
        assert_eq!(mesh.jobs_stolen(), 5);
        assert_eq!(mesh.shard_id(), "shard-1");

        let report = metrics.report_with_mesh(&queue, None, Some(&mesh));
        let m = report.mesh.as_ref().expect("mesh block present");
        assert_eq!(m.shard_id, "shard-1");
        assert_eq!(m.ring_epoch, 3);
        assert_eq!(m.peers_total, 4);
        assert_eq!(m.peers_healthy, 2);
        assert_eq!(m.jobs_stolen, 5);
        assert_eq!(m.jobs_donated, 0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"jobs_stolen\":5"), "{json}");
        assert!(json.contains("\"shard_id\":\"shard-1\""), "{json}");
    }

    #[test]
    fn tenants_block_absent_in_open_mode_present_when_enforcing() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let metrics = ServerMetrics::new();

        // Open mode: the key must be ABSENT, not null — byte-for-byte
        // compatibility with the pre-tenancy wire format.
        let open = metrics.report_full(&queue, None, None, None, None);
        let json = serde_json::to_string(&open).unwrap();
        assert!(!json.contains("\"tenants\""), "{json}");

        let report = metrics.report_full(
            &queue,
            None,
            None,
            None,
            Some(vec![TenantCounters {
                tenant: "acme".into(),
                weight: 3,
                pending: 2,
                running: 1,
                submitted: 9,
                completed: 6,
                rejected: 1,
            }]),
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            json.contains(
                "\"tenants\":[{\"tenant\":\"acme\",\"weight\":3,\"pending\":2,\
                 \"running\":1,\"submitted\":9,\"completed\":6,\"rejected\":1}]"
            ),
            "{json}"
        );
        // The block rides between `queue` and `store_entries`.
        let qpos = json.find("\"queue\"").unwrap();
        let tpos = json.find("\"tenants\"").unwrap();
        let spos = json.find("\"store_entries\"").unwrap();
        assert!(qpos < tpos && tpos < spos, "{json}");
    }
}
