//! The `GET /v1/metrics` surface: queue gauges, cache effectiveness,
//! process-wide solver counters, and per-route latency histograms.
//!
//! Latencies land in log-bucketed [`xplain_stats::Histogram`]s (constant
//! memory on a long-lived server; quantile error bounded by the bucket
//! growth factor — see that module's docs). One histogram per route tag,
//! each behind its own mutex: recording is a few comparisons, so the
//! lock is never the bottleneck next to socket I/O.

use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use xplain_lp::SolverCounters;
use xplain_runtime::{JobQueue, ResultStore};
use xplain_stats::Histogram;

use crate::router::ROUTE_TAGS;

/// Live metric collectors for one server.
pub struct ServerMetrics {
    started: Instant,
    /// Baseline so the report shows solver work done *by this server*,
    /// not whatever the process accumulated before it started.
    solver_at_start: SolverCounters,
    routes: Vec<(&'static str, Mutex<Histogram>)>,
}

impl ServerMetrics {
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            solver_at_start: SolverCounters::snapshot(),
            routes: ROUTE_TAGS
                .iter()
                .map(|tag| (*tag, Mutex::new(Histogram::latency_ms())))
                .collect(),
        }
    }

    /// Record one request's latency under its route tag.
    pub fn observe(&self, tag: &str, latency_ms: f64) {
        if let Some((_, hist)) = self.routes.iter().find(|(t, _)| *t == tag) {
            hist.lock().expect("route histogram").record(latency_ms);
        }
    }

    /// Assemble the report against the live queue (and store, when one is
    /// attached).
    pub fn report(&self, queue: &JobQueue<'_>, store: Option<&ResultStore>) -> MetricsReport {
        let counters = queue.counters();
        MetricsReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue: QueueReport {
                depth: queue.depth(),
                active_sessions: queue.active(),
                submitted: counters.submitted,
                completed: counters.completed,
                cancelled: counters.cancelled,
                rejected_busy: counters.rejected_full,
                cache_hits: counters.cache_hits,
                cache_hit_rate: if counters.submitted > 0 {
                    counters.cache_hits as f64 / counters.submitted as f64
                } else {
                    0.0
                },
            },
            store_entries: store.map(|s| s.len()),
            solver: SolverCounters::snapshot().since(&self.solver_at_start),
            routes: self
                .routes
                .iter()
                .filter_map(|(tag, hist)| {
                    let h = hist.lock().expect("route histogram");
                    (!h.is_empty()).then(|| RouteLatency {
                        route: (*tag).to_string(),
                        count: h.count(),
                        mean_ms: h.mean().unwrap_or(0.0),
                        p50_ms: h.quantile(0.50).unwrap_or(0.0),
                        p90_ms: h.quantile(0.90).unwrap_or(0.0),
                        p99_ms: h.quantile(0.99).unwrap_or(0.0),
                        max_ms: h.max().unwrap_or(0.0),
                    })
                })
                .collect(),
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

/// The `GET /v1/metrics` response body.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsReport {
    pub uptime_ms: u64,
    pub queue: QueueReport,
    /// Committed results on disk (`null` when the server runs storeless).
    pub store_entries: Option<usize>,
    /// Solver work since this server started (process-wide counters; a
    /// superset of served work if something else solves in-process).
    pub solver: SolverCounters,
    /// Per-route latency, routes with traffic only.
    pub routes: Vec<RouteLatency>,
}

#[derive(Debug, Clone, Serialize)]
pub struct QueueReport {
    /// Jobs waiting for a worker.
    pub depth: usize,
    /// Sessions executing right now.
    pub active_sessions: usize,
    pub submitted: u64,
    pub completed: u64,
    pub cancelled: u64,
    /// Submissions answered 429.
    pub rejected_busy: u64,
    pub cache_hits: u64,
    /// `cache_hits / submitted` — the fraction of accepted submissions
    /// answered from cache (0 before any traffic).
    pub cache_hit_rate: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct RouteLatency {
    pub route: String,
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_runtime::{DomainRegistry, QueueOptions};

    #[test]
    fn report_reflects_observations_and_queue_state() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let metrics = ServerMetrics::new();
        for ms in [1.0, 2.0, 4.0] {
            metrics.observe("GET /v1/metrics", ms);
        }
        metrics.observe("no-such-route", 9.0); // silently ignored

        let report = metrics.report(&queue, None);
        assert_eq!(report.queue.depth, 0);
        assert_eq!(report.queue.active_sessions, 0);
        assert_eq!(report.queue.cache_hit_rate, 0.0);
        assert!(report.store_entries.is_none());
        assert_eq!(report.routes.len(), 1, "only routes with traffic appear");
        let r = &report.routes[0];
        assert_eq!(r.route, "GET /v1/metrics");
        assert_eq!(r.count, 3);
        assert!(r.p50_ms > 0.0 && r.p50_ms <= r.p99_ms && r.p99_ms <= r.max_ms);

        // The report serializes (the endpoint's whole job).
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"cache_hit_rate\""), "{json}");
        assert!(json.contains("GET /v1/metrics"), "{json}");
    }
}
