//! The HTTP server: accept loop, connection thread pool, and the route
//! handlers that bind the wire protocol to the runtime's [`JobQueue`].
//!
//! Threading model (all scoped — the server owns no detached threads):
//!
//! * the caller's thread runs the accept loop (non-blocking accept with
//!   a short poll so shutdown is observed promptly);
//! * `http_threads` connection handlers pull accepted sockets off an
//!   mpsc channel; each connection is one request (`Connection: close`);
//! * `queue_workers` session workers drain the shared [`JobQueue`] —
//!   the same engine the batch runner drives, so a job served over HTTP
//!   is byte-identical to the same job run from a manifest.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`] or `POST /v1/shutdown`):
//! the accept loop stops, the queue cancels queued jobs and fires every
//! running session's cancel token, sessions persist checkpoints through
//! the store's `.ckpt` path at their next event boundary and emit their
//! terminal event (so live event streams end cleanly), workers drain,
//! and [`Server::run`] returns. A resubmit of an interrupted spec — to
//! this or a future server over the same store — resumes mid-loop.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use xplain_runtime::{
    DomainRegistry, JobJournal, JobOutcome, JobPhase, JobQueue, JobSpec, QueueFull, QueueOptions,
    RegressionBank, ResultStore, TenantRegistry,
};
use xplain_tune::{generation_line, report_line, tune_with, TuneOptions};

use crate::admission::AdmissionPolicy;
use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, HttpError, Request, Response,
};
use crate::metrics::ServerMetrics;
use crate::router::{route, Route, RouteError};

/// Server tunables. `Default` suits a laptop smoke run; production picks
/// explicit numbers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Session workers draining the job queue (0 = auto: available
    /// parallelism capped at 8).
    pub queue_workers: usize,
    /// Connection handler threads. A streaming subscriber occupies one
    /// for the life of its job, so size this above the expected number
    /// of concurrent watchers.
    pub http_threads: usize,
    /// Maximum *waiting* jobs before submissions get 429
    /// ([`AdmissionPolicy`] sets the `Retry-After`).
    pub capacity: usize,
    /// Content-addressed store directory. `None` disables result
    /// caching, dedup-against-disk, and checkpoint/resume.
    pub store_dir: Option<PathBuf>,
    /// Write-ahead job journal: accepted jobs are durable before the
    /// `202` goes out, and a restarted server over the same store
    /// re-enqueues whatever a crashed predecessor accepted but never
    /// finished. On by default; requires a store (no store, no journal).
    pub journal: bool,
    /// Journal directory override. `None` (the default) puts it at
    /// `<store_dir>/journal`, or `<store_dir>/journal-<shard_id>` when a
    /// shard id is set — mesh shards share the content-addressed store,
    /// but each must journal its own accepted jobs separately.
    pub journal_dir: Option<PathBuf>,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Completed jobs kept in memory (outcome + event log) before the
    /// oldest are evicted — bounds a long-lived server's footprint.
    /// Evicted ids read as unknown; resubmits hit the store instead.
    pub retain_done: usize,
    /// Mesh identity: stamped into store entries this server commits
    /// (ownership metadata) and echoed in the metrics mesh block. `None`
    /// for a standalone server.
    pub shard_id: Option<String>,
    /// Minimum per-worker service time (ms) for freshly executed jobs —
    /// per-worker rate limiting / overload protection
    /// ([`xplain_runtime::QueueOptions::pace_ms`]). `0` disables.
    pub pace_ms: u64,
    /// Shared mesh gauges (`GET /v1/metrics` reports them). The mesh
    /// layer creates this and keeps updating it from the membership
    /// heartbeat and steal loop.
    pub mesh: Option<Arc<crate::metrics::MeshStatus>>,
    /// Tenant registry config (JSON; see DESIGN.md §12). `None` runs the
    /// server in open mode: no auth, one anonymous queue lane,
    /// byte-for-byte the pre-tenancy wire format. `Some` turns on
    /// `Authorization: Bearer` enforcement on submission routes,
    /// weighted fair-share dispatch, per-tenant quotas, and the
    /// `tenants` metrics block.
    pub tenants: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".into(),
            queue_workers: 0,
            http_threads: 8,
            capacity: 64,
            store_dir: None,
            journal: true,
            journal_dir: None,
            read_timeout: Duration::from_secs(5),
            retain_done: 1024,
            shard_id: None,
            pace_ms: 0,
            mesh: None,
            tenants: None,
        }
    }
}

fn auto_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running [`Server`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        request_shutdown(&self.shutdown, self.addr);
    }
}

/// Flag shutdown and poke the accept loop awake: the listener blocks in
/// `accept` (zero added latency on real connections — an earlier polling
/// accept put a sleep on every request's critical path), so shutdown
/// opens one throwaway loopback connection to unblock it.
///
/// The poke is only load-bearing when the listener is *idle*: if the
/// accept backlog has pending connections, `accept` returns on its own
/// and the loop observes the flag — and an idle listener accepts the
/// poke immediately. A couple of retries cover transient connect
/// failures; past that, the next real connection ends the loop.
fn request_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::Relaxed);
    for timeout_ms in [200, 1000] {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(timeout_ms)).is_ok() {
            break;
        }
    }
}

impl Server {
    /// Bind the listening socket (fails fast on bad addresses — before
    /// any threads exist).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            config,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until shutdown is requested, then drain gracefully. Blocks
    /// the calling thread (spawn it if you need the handle elsewhere —
    /// the e2e tests and the load generator do exactly that).
    pub fn run(self, registry: &DomainRegistry) -> io::Result<()> {
        // Load the tenant registry first: a malformed config is a
        // startup error (serving with the wrong quota table is worse
        // than refusing to start). No config → open mode.
        let tenants = match &self.config.tenants {
            Some(path) => TenantRegistry::load(path)?,
            None => TenantRegistry::open(),
        };
        let store = self.config.store_dir.as_ref().map(ResultStore::new);
        // Open (and replay) the write-ahead journal before anything else
        // can accept work: recovery must observe the dead predecessor's
        // state, not this server's. Failing to open is a startup error —
        // silently serving without the durability the operator asked for
        // is worse than refusing to start.
        let journal = match (&store, self.config.journal) {
            (Some(store), true) => {
                let dir = self.config.journal_dir.clone().unwrap_or_else(|| {
                    store.dir().join(match &self.config.shard_id {
                        Some(id) => format!("journal-{id}"),
                        None => "journal".to_string(),
                    })
                });
                Some(JobJournal::open(dir)?)
            }
            _ => None,
        };
        let queue = JobQueue::new(
            registry,
            store.as_ref(),
            QueueOptions {
                capacity: self.config.capacity,
                // Cancelled/interrupted sessions must leave resumable
                // checkpoints — the serving contract — so resume mode is
                // on whenever there is somewhere to persist them.
                resume: store.is_some(),
                budgets_override: None,
                record_events: true,
                retain_done: self.config.retain_done,
                pace_ms: self.config.pace_ms,
            },
            None,
        )
        .with_origin(self.config.shard_id.clone())
        .with_journal(journal.as_ref())
        .with_tenants(Some(&tenants));
        // Re-enqueue everything a crashed predecessor accepted but never
        // finished — before workers spawn, so recovered jobs sit at the
        // head of the line in their original order.
        queue.recover();
        let metrics = ServerMetrics::new();
        let queue_workers = auto_workers(self.config.queue_workers);
        let ctx = Ctx {
            registry,
            queue: &queue,
            store: store.as_ref(),
            journal: journal.as_ref(),
            metrics: &metrics,
            policy: AdmissionPolicy::default(),
            shutdown: &self.shutdown,
            addr: self.local_addr,
            queue_workers,
            capacity: self.config.capacity,
            read_timeout: self.config.read_timeout,
            mesh: self.config.mesh.clone(),
            tenants: &tenants,
        };

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Mutex::new(conn_rx);

        std::thread::scope(|scope| {
            for _ in 0..queue_workers {
                scope.spawn(|| queue.serve_worker());
            }
            for _ in 0..self.config.http_threads.max(1) {
                scope.spawn(|| loop {
                    let next = conn_rx
                        .lock()
                        .expect("connection channel")
                        .recv_timeout(Duration::from_millis(100));
                    match next {
                        Ok(stream) => handle_connection(stream, &ctx),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                });
            }
            // Accept loop — this thread. Blocking accept keeps new
            // connections off a poll-sleep; `request_shutdown` unblocks
            // it with a throwaway connection.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.shutdown.load(Ordering::Relaxed) {
                            break; // likely the shutdown poke itself
                        }
                        let _ = conn_tx.send(stream);
                    }
                    Err(_) => {
                        if self.shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            // Graceful drain: no new connections; cancel queued and
            // running jobs (sessions checkpoint + emit terminal events,
            // ending live streams); workers and handlers then exit.
            drop(conn_tx);
            queue.shutdown();
        });
        Ok(())
    }
}

/// Borrowed context shared by every connection handler.
struct Ctx<'a> {
    registry: &'a DomainRegistry,
    queue: &'a JobQueue<'a>,
    store: Option<&'a ResultStore>,
    journal: Option<&'a JobJournal>,
    metrics: &'a ServerMetrics,
    policy: AdmissionPolicy,
    shutdown: &'a AtomicBool,
    addr: SocketAddr,
    queue_workers: usize,
    capacity: usize,
    read_timeout: Duration,
    mesh: Option<Arc<crate::metrics::MeshStatus>>,
    tenants: &'a TenantRegistry,
}

/// Resolve the caller's tenant identity, or the error response that ends
/// the request.
///
/// Open mode: every request is the anonymous tenant (`Ok(None)`), headers
/// ignored. Enforcing mode:
///
/// * `Authorization: Bearer <key>` — authenticated against the registry's
///   FNV-hashed key table; unknown keys are 403 on every route.
/// * `X-Xplain-Tenant: <id>` — trusted forwarding from a mesh gateway
///   that already authenticated the bearer at the edge (shards sit on a
///   private network behind it; see DESIGN.md §12's trust model).
///   Unknown ids are 403.
/// * Neither header → `Ok(None)`. Routes that *attribute* work (submit,
///   tune) then answer 401; read/ops routes stay open so liveness
///   probes, mesh heartbeats, and work stealing keep working.
fn authenticate(ctx: &Ctx<'_>, request: &Request) -> Result<Option<String>, Box<Response>> {
    if !ctx.tenants.enforcing() {
        return Ok(None);
    }
    if let Some(value) = request.header("authorization") {
        let key = match value.split_once(' ') {
            Some((scheme, rest)) if scheme.eq_ignore_ascii_case("bearer") => rest.trim(),
            _ => {
                return Err(Box::new(Response::error(
                    401,
                    "malformed Authorization header (expected 'Bearer <api-key>')",
                )))
            }
        };
        return match ctx.tenants.authenticate(key) {
            Some(tenant) => Ok(Some(tenant.id.clone())),
            None => Err(Box::new(Response::error(403, "unknown API key"))),
        };
    }
    if let Some(id) = request.header("x-xplain-tenant") {
        return match ctx.tenants.lookup(id) {
            Some(tenant) => Ok(Some(tenant.id.clone())),
            None => Err(Box::new(Response::error(
                403,
                &format!("unknown tenant id '{id}'"),
            ))),
        };
    }
    Ok(None)
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx<'_>) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Closed) => return,
        Err(HttpError::TooLarge) => {
            let _ = Response::error(413, "request exceeds size caps").write_to(&mut stream);
            return;
        }
        Err(HttpError::BadRequest(m)) => {
            let _ = Response::error(400, &m).write_to(&mut stream);
            return;
        }
        Err(HttpError::Io(_)) => {
            let _ = Response::error(408, "timed out reading request").write_to(&mut stream);
            return;
        }
    };
    let started = Instant::now();
    let tenant = match authenticate(ctx, &request) {
        Ok(t) => t,
        Err(response) => {
            let _ = response.write_to(&mut stream);
            return;
        }
    };
    match route(&request.method, &request.path) {
        Ok(Route::JobEvents(id)) => {
            let tag = Route::JobEvents(String::new()).tag();
            handle_events(&mut stream, ctx, &id);
            ctx.metrics
                .observe(tag, started.elapsed().as_secs_f64() * 1000.0);
        }
        Ok(Route::Tune) => {
            let tag = Route::Tune.tag();
            handle_tune(&mut stream, ctx, &request, tenant.as_deref());
            ctx.metrics
                .observe(tag, started.elapsed().as_secs_f64() * 1000.0);
        }
        Ok(r) => {
            let tag = r.tag();
            let response = dispatch(ctx, r, &request, tenant.as_deref());
            let _ = response.write_to(&mut stream);
            ctx.metrics
                .observe(tag, started.elapsed().as_secs_f64() * 1000.0);
        }
        Err(RouteError::NotFound) => {
            let _ = Response::error(404, "no such resource").write_to(&mut stream);
        }
        Err(RouteError::MethodNotAllowed { allowed }) => {
            let _ = Response::error(405, "method not allowed")
                .with_header("Allow", allowed)
                .write_to(&mut stream);
        }
    }
}

// ------------------------------------------------------------- responses

/// `POST /v1/jobs` receipt.
#[derive(Debug, Serialize)]
struct SubmitBody {
    id: String,
    /// `queued` / `running` / `done`.
    status: String,
    /// How the dedup resolved: `cache_hit`, `in_flight`, `enqueued`,
    /// `resumed`.
    disposition: String,
    cache_hit: bool,
}

/// `GET /v1/jobs/{id}` body.
#[derive(Debug, Serialize)]
struct StatusBody {
    id: String,
    domain: String,
    status: String,
    /// Events retained for streaming so far.
    events: usize,
    /// This execution was re-enqueued from the write-ahead journal at
    /// startup — accepted by a previous server process over the same
    /// store that died before finishing it.
    recovered: bool,
    /// Present once `status == "done"`.
    outcome: Option<JobOutcome>,
}

#[derive(Debug, Serialize)]
struct CancelBody {
    id: String,
    /// Phase the job was in when the cancel landed.
    was: String,
    /// Whether the cancel can still affect the job (false once done).
    cancelled: bool,
}

#[derive(Debug, Serialize)]
struct DomainBody {
    id: String,
    description: String,
}

#[derive(Debug, Serialize)]
struct ShutdownBody {
    shutting_down: bool,
}

/// `GET /v1/queue` body: the waiting line, as a peer deciding whether
/// to steal sees it.
#[derive(Debug, Serialize)]
struct QueueInfoBody {
    /// Jobs waiting for a worker.
    depth: usize,
    /// Sessions executing right now.
    active: usize,
    /// Waiting jobs not yet offered to any peer.
    stealable: usize,
    pending: Vec<PendingJobBody>,
}

/// One waiting job in the `GET /v1/queue` listing. `Serialize` is hand
/// written so the `tenant` key only appears for attributed jobs — in
/// open mode every job is anonymous and the wire format stays
/// byte-identical to the pre-tenancy surface.
#[derive(Debug)]
struct PendingJobBody {
    id: String,
    domain: String,
    donated: bool,
    tenant: Option<String>,
}

impl Serialize for PendingJobBody {
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("id".into(), self.id.to_value()),
            ("domain".into(), self.domain.to_value()),
            ("donated".into(), self.donated.to_value()),
        ];
        if let Some(tenant) = &self.tenant {
            map.push(("tenant".into(), tenant.to_value()));
        }
        serde::Value::Map(map)
    }
}

/// `POST /v1/queue/steal` request body.
#[derive(Debug, serde::Deserialize)]
struct StealRequest {
    /// Maximum jobs to donate.
    max: usize,
}

/// `POST /v1/queue/steal` response: the donated specs, ready for the
/// thief to resubmit verbatim (content keys are identical on both
/// sides, so the ids and store entries line up).
#[derive(Debug, Serialize)]
struct StealBody {
    jobs: Vec<JobSpec>,
}

fn dispatch(ctx: &Ctx<'_>, route: Route, request: &Request, tenant: Option<&str>) -> Response {
    match route {
        Route::SubmitJob => submit_job(ctx, request, tenant),
        Route::JobStatus(id) => job_status(ctx, &id),
        Route::CancelJob(id) => cancel_job(ctx, &id),
        Route::Domains => domains(ctx),
        Route::QueueInfo => queue_info(ctx),
        Route::Steal => steal(ctx, request),
        Route::Metrics => metrics(ctx),
        Route::Regressions => regressions(ctx, request),
        Route::Shutdown => {
            request_shutdown(ctx.shutdown, ctx.addr);
            Response::json(
                200,
                serde_json::to_string(&ShutdownBody {
                    shutting_down: true,
                })
                .expect("body serializes"),
            )
        }
        // Streamed separately in `handle_connection`.
        Route::JobEvents(_) => Response::error(500, "events route must stream"),
        Route::Tune => Response::error(500, "tune route must stream"),
    }
}

fn submit_job(ctx: &Ctx<'_>, request: &Request, tenant: Option<&str>) -> Response {
    if ctx.tenants.enforcing() && tenant.is_none() {
        return Response::error(
            401,
            "missing API key (send 'Authorization: Bearer <api-key>')",
        );
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let spec: JobSpec = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("malformed JobSpec: {e:?}")),
    };
    if ctx.registry.get(&spec.domain).is_none() {
        return Response::error(
            400,
            &format!(
                "unknown domain id '{}' (GET /v1/domains lists them)",
                spec.domain
            ),
        );
    }
    match ctx.queue.submit_deduped_as(spec, tenant) {
        Ok(sub) => {
            // `phase`, not `poll`: the hot cache-hit route must not
            // deep-clone a full outcome just to read one word.
            let phase = ctx.queue.phase(sub.key).unwrap_or(JobPhase::Queued);
            let cache_hit = sub.disposition == xplain_runtime::Disposition::CacheHit;
            let status = if cache_hit { 200 } else { 202 };
            Response::json(
                status,
                serde_json::to_string(&SubmitBody {
                    id: sub.id,
                    status: phase.as_str().to_string(),
                    disposition: sub.disposition.as_str().to_string(),
                    cache_hit,
                })
                .expect("body serializes"),
            )
        }
        Err(full) => {
            let retry = ctx.policy.retry_after_secs(&full, ctx.queue_workers);
            Response::error(429, &full.to_string()).with_header("Retry-After", &retry.to_string())
        }
    }
}

fn job_status(ctx: &Ctx<'_>, id: &str) -> Response {
    let Some(view) = JobQueue::parse_id(id).and_then(|key| ctx.queue.poll(key)) else {
        return Response::error(404, &format!("no job '{id}'"));
    };
    Response::json(
        200,
        serde_json::to_string(&StatusBody {
            id: view.id,
            domain: view.domain,
            status: view.phase.as_str().to_string(),
            events: view.events_logged,
            recovered: view.recovered,
            outcome: view.outcome,
        })
        .expect("body serializes"),
    )
}

fn cancel_job(ctx: &Ctx<'_>, id: &str) -> Response {
    let Some(phase) = JobQueue::parse_id(id).and_then(|key| ctx.queue.cancel(key)) else {
        return Response::error(404, &format!("no job '{id}'"));
    };
    Response::json(
        200,
        serde_json::to_string(&CancelBody {
            id: id.to_string(),
            was: phase.as_str().to_string(),
            cancelled: phase != JobPhase::Done,
        })
        .expect("body serializes"),
    )
}

fn domains(ctx: &Ctx<'_>) -> Response {
    let list: Vec<DomainBody> = ctx
        .registry
        .ids()
        .into_iter()
        .map(|id| {
            let description = ctx
                .registry
                .get(&id)
                .map(|d| d.description())
                .unwrap_or_default();
            DomainBody { id, description }
        })
        .collect();
    Response::json(200, serde_json::to_string(&list).expect("body serializes"))
}

fn queue_info(ctx: &Ctx<'_>) -> Response {
    let pending: Vec<PendingJobBody> = ctx
        .queue
        .pending_jobs()
        .into_iter()
        .map(|p| PendingJobBody {
            id: p.id,
            domain: p.domain,
            donated: p.donated,
            tenant: p.tenant,
        })
        .collect();
    Response::json(
        200,
        serde_json::to_string(&QueueInfoBody {
            depth: pending.len(),
            active: ctx.queue.active(),
            stealable: ctx.queue.stealable(),
            pending,
        })
        .expect("body serializes"),
    )
}

fn steal(ctx: &Ctx<'_>, request: &Request) -> Response {
    let body = match request.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let req: StealRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("malformed steal request: {e:?}")),
    };
    let jobs = ctx.queue.donate(req.max);
    Response::json(
        200,
        serde_json::to_string(&StealBody { jobs }).expect("body serializes"),
    )
}

fn metrics(ctx: &Ctx<'_>) -> Response {
    let tenants = ctx.tenants.enforcing().then(|| ctx.queue.tenant_counters());
    let report = ctx.metrics.report_full(
        ctx.queue,
        ctx.store,
        ctx.mesh.as_deref(),
        ctx.journal,
        tenants,
    );
    Response::json(
        200,
        serde_json::to_string(&report).expect("body serializes"),
    )
}

/// `GET /v1/regressions` body: one page of the bank, in content-key
/// order (stable across calls — the bank is append-only).
#[derive(Debug, Serialize)]
struct RegressionsBody {
    /// Bank size (not the page size).
    total: usize,
    offset: usize,
    entries: Vec<RegressionEntryBody>,
}

#[derive(Debug, Serialize)]
struct RegressionEntryBody {
    id: String,
    domain: String,
    gap: f64,
    instance: Vec<f64>,
    job_key: String,
    session_seed: u64,
}

/// One `key=value` query parameter as usize, or a 400.
fn usize_param(request: &Request, key: &str, default: usize) -> Result<usize, Box<Response>> {
    match request.query_param(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            Box::new(Response::error(
                400,
                &format!("query parameter '{key}' must be a non-negative integer, got '{v}'"),
            ))
        }),
    }
}

fn regressions(ctx: &Ctx<'_>, request: &Request) -> Response {
    let Some(store) = ctx.store else {
        return Response::error(404, "server runs storeless; no regression bank");
    };
    let offset = match usize_param(request, "offset", 0) {
        Ok(v) => v,
        Err(r) => return *r,
    };
    let limit = match usize_param(request, "limit", 50) {
        Ok(v) => v,
        Err(r) => return *r,
    };
    let all = store.bank().entries();
    let total = all.len();
    let entries: Vec<RegressionEntryBody> = all
        .into_iter()
        .skip(offset)
        .take(limit)
        .map(|(key, r)| RegressionEntryBody {
            id: RegressionBank::format_id(key),
            domain: r.domain,
            gap: r.gap,
            instance: r.instance,
            job_key: r.job_key,
            session_seed: r.session_seed,
        })
        .collect();
    Response::json(
        200,
        serde_json::to_string(&RegressionsBody {
            total,
            offset,
            entries,
        })
        .expect("body serializes"),
    )
}

/// `POST /v1/tune` request body. Absent knobs take [`TuneOptions`]
/// defaults (or the quick preset when `"quick": true`).
#[derive(Debug, serde::Deserialize)]
struct TuneRequestBody {
    domain: String,
    #[serde(default)]
    quick: bool,
    #[serde(default)]
    generations: Option<usize>,
    #[serde(default)]
    population: Option<usize>,
    #[serde(default)]
    seed: Option<u64>,
    #[serde(default)]
    workers: Option<usize>,
}

/// `POST /v1/tune`: run the repair loop on this connection's thread,
/// streaming chunked NDJSON — one `{"generation":{...}}` line per
/// generation, then a terminal `{"report":{...}}` line. The lines are
/// byte-identical to `runner tune --watch` for the same bank, options,
/// and seed.
///
/// Tuning is real work, so it is admission-checked like job
/// submissions: while the session queue is saturated the server answers
/// 429 with the policy's `Retry-After` instead of piling tuning runs on
/// top of a full box.
fn handle_tune(stream: &mut TcpStream, ctx: &Ctx<'_>, request: &Request, tenant: Option<&str>) {
    if ctx.tenants.enforcing() && tenant.is_none() {
        let _ = Response::error(
            401,
            "missing API key (send 'Authorization: Bearer <api-key>')",
        )
        .write_to(stream);
        return;
    }
    let Some(store) = ctx.store else {
        let _ = Response::error(
            404,
            "server runs storeless; no regression bank to tune against",
        )
        .write_to(stream);
        return;
    };
    let body = match request.body_str() {
        Ok(b) => b,
        Err(e) => {
            let _ = Response::error(400, &e.to_string()).write_to(stream);
            return;
        }
    };
    let req: TuneRequestBody = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => {
            let _ =
                Response::error(400, &format!("malformed tune request: {e:?}")).write_to(stream);
            return;
        }
    };
    let Some(domain) = ctx.registry.get(&req.domain) else {
        let _ = Response::error(
            400,
            &format!(
                "unknown domain id '{}' (GET /v1/domains lists them)",
                req.domain
            ),
        )
        .write_to(stream);
        return;
    };
    let depth = ctx.queue.depth();
    if depth >= ctx.capacity {
        let retry = ctx.policy.retry_after_secs(
            &QueueFull {
                depth,
                capacity: ctx.capacity,
                tenant: None,
            },
            ctx.queue_workers,
        );
        let _ = Response::error(429, "session queue is saturated; retry tuning later")
            .with_header("Retry-After", &retry.to_string())
            .write_to(stream);
        return;
    }

    let mut opts = if req.quick {
        TuneOptions::quick()
    } else {
        TuneOptions::default()
    };
    if let Some(g) = req.generations {
        opts.generations = g.clamp(1, 256);
    }
    if let Some(p) = req.population {
        opts.population = p.clamp(2, 256);
    }
    if let Some(s) = req.seed {
        opts.seed = s;
    }
    opts.workers = req.workers.unwrap_or(1).clamp(1, 8);

    let records = store.bank().entries();
    // The chunked 200 head goes out lazily, right before the first
    // generation line — so pre-stream failures (untunable domain, empty
    // corpus) still get a proper JSON error status.
    let mut streaming = false;
    let mut broken = false;
    let result = tune_with(domain, &records, &opts, |stat| {
        if broken {
            return;
        }
        if !streaming {
            if start_chunked(stream, 200, "application/x-ndjson").is_err() {
                broken = true;
                return;
            }
            streaming = true;
        }
        let mut payload = generation_line(stat).into_bytes();
        payload.push(b'\n');
        if write_chunk(stream, &payload).is_err() {
            broken = true;
        }
    });
    match result {
        Err(e) => {
            if !streaming {
                let _ = Response::error(400, &e.to_string()).write_to(stream);
            }
            // Streaming already started: the client sees truncation.
        }
        Ok(report) => {
            if broken || !streaming {
                return; // subscriber went away mid-run
            }
            let mut payload = report_line(&report).into_bytes();
            payload.push(b'\n');
            if write_chunk(stream, &payload).is_ok() {
                let _ = finish_chunked(stream);
            }
        }
    }
}

/// `GET /v1/jobs/{id}/events`: chunked NDJSON, one watch line per
/// session event, tailed live until the job's stream completes. The
/// lines are byte-identical to `runner --watch` output for the same job
/// (both serialize through `xplain_runtime::watch_line`).
fn handle_events(stream: &mut TcpStream, ctx: &Ctx<'_>, id: &str) {
    let Some(slot) = JobQueue::parse_id(id).and_then(|key| ctx.queue.resolve(key)) else {
        let _ = Response::error(404, &format!("no job '{id}'")).write_to(stream);
        return;
    };
    if start_chunked(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    let mut offset = 0usize;
    loop {
        let Some(chunk) = ctx
            .queue
            .wait_events(slot, offset, Duration::from_millis(250))
        else {
            // The slot was evicted (retain_done pressure) while we were
            // replaying it. Abort WITHOUT the chunked terminator: the
            // client sees transport-level truncation — an error — never
            // a well-formed stream that silently lost its tail.
            return;
        };
        for line in &chunk.lines {
            let mut payload = Vec::with_capacity(line.len() + 1);
            payload.extend_from_slice(line.as_bytes());
            payload.push(b'\n');
            if write_chunk(stream, &payload).is_err() {
                return; // subscriber went away; the job keeps running
            }
        }
        offset += chunk.lines.len();
        if chunk.done {
            break;
        }
    }
    let _ = finish_chunked(stream);
}
