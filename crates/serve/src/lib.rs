//! # xplain-serve
//!
//! The wire in front of the runtime: a dependency-free (std-only,
//! consistent with the workspace's vendored-deps policy) HTTP/1.1
//! service that turns the batch analysis engine into a long-lived,
//! multi-tenant explanation server — the shape the paper's interactive
//! "when and why does my heuristic underperform?" workflow actually
//! needs, and the serving tier X-SYS argues explanation systems must
//! grow.
//!
//! The JSON API (full semantics in DESIGN.md §8):
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /v1/jobs` | Submit a `JobSpec`; deduplicated against in-flight jobs **and** the content-addressed store, so repeat queries are cache hits |
//! | `GET /v1/jobs/{id}` | Status + `JobOutcome` |
//! | `GET /v1/jobs/{id}/events` | Chunked NDJSON stream of session events — the `runner --watch` wire format, byte-identical |
//! | `POST /v1/jobs/{id}/cancel` | Cooperative cancel; the session checkpoints, a later resubmit resumes |
//! | `GET /v1/domains` | Registered domain ids |
//! | `GET /v1/queue` | Waiting line (depth / active / stealable + pending jobs), as a peer deciding whether to steal sees it |
//! | `POST /v1/queue/steal` | Donate up to `max` queued jobs to the calling peer (the mesh work stealer's pull endpoint) |
//! | `GET /v1/metrics` | Queue depth, active sessions, cache hit rate, mesh gauges, solver counters, per-route latency histograms (full schema in DESIGN.md §9) |
//! | `POST /v1/shutdown` | Graceful shutdown (in-flight sessions checkpoint through the store) |
//!
//! Module map: [`http`] (hand-rolled HTTP/1.1 parsing + chunked
//! responses), [`router`] (typed routes), [`admission`] (429 +
//! `Retry-After` policy), [`metrics`] (latency histograms via
//! `xplain-stats`, plus the [`metrics::MeshStatus`] gauges the mesh
//! layer feeds), [`server`] (accept loop, connection pool, handlers
//! over the shared `xplain_runtime::JobQueue`), [`client`] (the minimal
//! blocking client the gateway, stealer, tests, and load generators
//! drive).
//!
//! `serve/tests/conformance.rs` pins this wire format exactly — status
//! codes, JSON key order, NDJSON chunk framing — because the mesh tier
//! (`xplain-mesh`, which also hosts the `runner` binary now) builds on
//! it process-to-process.

pub mod admission;
pub mod client;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;

pub use admission::AdmissionPolicy;
pub use client::{Client, EventStream, HttpResponse};
pub use metrics::{MeshReport, MeshStatus, MetricsReport, ServerMetrics};
pub use router::{route, Route, RouteError};
pub use server::{Server, ServerConfig, ServerHandle};
