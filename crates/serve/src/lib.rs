//! # xplain-serve
//!
//! The wire in front of the runtime: a dependency-free (std-only,
//! consistent with the workspace's vendored-deps policy) HTTP/1.1
//! service that turns the batch analysis engine into a long-lived,
//! multi-tenant explanation server — the shape the paper's interactive
//! "when and why does my heuristic underperform?" workflow actually
//! needs, and the serving tier X-SYS argues explanation systems must
//! grow.
//!
//! The JSON API (full semantics in DESIGN.md §8):
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /v1/jobs` | Submit a `JobSpec`; deduplicated against in-flight jobs **and** the content-addressed store, so repeat queries are cache hits |
//! | `GET /v1/jobs/{id}` | Status + `JobOutcome` |
//! | `GET /v1/jobs/{id}/events` | Chunked NDJSON stream of session events — the `runner --watch` wire format, byte-identical |
//! | `POST /v1/jobs/{id}/cancel` | Cooperative cancel; the session checkpoints, a later resubmit resumes |
//! | `GET /v1/domains` | Registered domain ids |
//! | `GET /v1/metrics` | Queue depth, active sessions, cache hit rate, solver counters, per-route latency histograms |
//! | `POST /v1/shutdown` | Graceful shutdown (in-flight sessions checkpoint through the store) |
//!
//! Module map: [`http`] (hand-rolled HTTP/1.1 parsing + chunked
//! responses), [`router`] (typed routes), [`admission`] (429 +
//! `Retry-After` policy), [`metrics`] (latency histograms via
//! `xplain-stats`), [`server`] (accept loop, connection pool, handlers
//! over the shared `xplain_runtime::JobQueue`), [`client`] (the minimal
//! blocking client the tests and load generator drive).
//!
//! The `runner` binary lives here too — it stacks the `serve` and `gc`
//! subcommands on top of the batch CLI (this crate depends on the
//! runtime, so the binary moved up a layer with it).

pub mod admission;
pub mod client;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;

pub use admission::AdmissionPolicy;
pub use client::{Client, EventStream, HttpResponse};
pub use metrics::{MetricsReport, ServerMetrics};
pub use router::{route, Route, RouteError};
pub use server::{Server, ServerConfig, ServerHandle};
