//! Admission control: what happens when work arrives faster than the
//! session workers drain it.
//!
//! The queue itself enforces the hard caps ([`xplain_runtime::QueueFull`]
//! on submissions beyond [`xplain_runtime::QueueOptions::capacity`], plus
//! per-tenant in-flight caps and submit rates when a tenant registry is
//! attached); this module owns the *client-facing semantics* of those
//! rejections — HTTP 429 with a `Retry-After` estimate — so the policy is
//! testable without sockets and documented in one place (DESIGN.md §8,
//! §12):
//!
//! * the cap bounds **waiting** jobs; running sessions are bounded by
//!   the worker count, so total in-flight work is `capacity + workers`;
//! * rejected submissions are never queued partially — the client owns
//!   the retry, and identical specs resubmitted later still dedupe;
//! * `Retry-After` scales with the backlog the *rejected tenant* must
//!   drain, not the whole queue's. A rejection carrying tenant context
//!   ([`xplain_runtime::TenantRejection`]) is estimated from that
//!   tenant's lane depth divided by its weighted share of the workers;
//!   rate-limit rejections carry the token bucket's own exact refill
//!   time and that wins outright. Rejections without tenant context
//!   (open mode) keep the global estimate: observed depth divided by
//!   the worker count, times a nominal per-job service time. Everything
//!   is floored at one second and is an estimate, not a promise —
//!   clients that retry earlier simply risk another 429.

use xplain_runtime::QueueFull;

/// Tunable admission policy.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Nominal per-job service time used to estimate drain time.
    pub nominal_job_secs: u64,
    /// Lower bound for `Retry-After`.
    pub floor_secs: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            nominal_job_secs: 2,
            floor_secs: 1,
        }
    }
}

impl AdmissionPolicy {
    /// The `Retry-After` seconds to attach to a 429 for this rejection.
    pub fn retry_after_secs(&self, rejection: &QueueFull, workers: usize) -> u64 {
        let Some(tenant) = &rejection.tenant else {
            return self.global_estimate(rejection.depth, workers);
        };
        // Token-bucket rejections know exactly when the next token
        // arrives; an estimate would only be worse.
        if tenant.retry_secs > 0 {
            return tenant.retry_secs.max(self.floor_secs);
        }
        // DRR grants this tenant `weight / active_weight` of every
        // dispatch round, so its effective drain rate is that share of
        // the workers (at least one: a lone tenant owns the whole pool,
        // and integer truncation must never zero out a real share).
        let weight = tenant.weight.max(1);
        let active = tenant.active_weight.max(weight);
        let share = ((workers.max(1) as u64) * weight / active).max(1);
        let rounds = (tenant.backlog as u64).div_ceil(share);
        (rounds * self.nominal_job_secs).max(self.floor_secs)
    }

    fn global_estimate(&self, depth: usize, workers: usize) -> u64 {
        let rounds = (depth as u64).div_ceil(workers.max(1) as u64);
        (rounds * self.nominal_job_secs).max(self.floor_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_runtime::TenantRejection;

    fn full(depth: usize) -> QueueFull {
        QueueFull {
            depth,
            capacity: 64,
            tenant: None,
        }
    }

    fn tenant_full(backlog: usize, weight: u64, active_weight: u64, retry_secs: u64) -> QueueFull {
        QueueFull {
            depth: 64,
            capacity: 64,
            tenant: Some(TenantRejection {
                tenant: "t".into(),
                backlog,
                weight,
                active_weight,
                retry_secs,
            }),
        }
    }

    #[test]
    fn retry_after_scales_with_backlog_per_worker() {
        let policy = AdmissionPolicy::default();
        // 8 waiting, 4 workers → 2 drain rounds → 4s.
        assert_eq!(policy.retry_after_secs(&full(8), 4), 4);
        // Same backlog, one worker → 16s.
        assert_eq!(policy.retry_after_secs(&full(8), 1), 16);
        // Tiny backlog never goes below the floor.
        assert_eq!(policy.retry_after_secs(&full(0), 4), 1);
        // Zero workers is treated as one (no division by zero).
        assert_eq!(policy.retry_after_secs(&full(2), 0), 4);
    }

    #[test]
    fn tenant_rejection_scopes_retry_to_the_tenant_backlog() {
        let policy = AdmissionPolicy::default();
        // 6 jobs in this tenant's lane, weight 1 of 4 active, 4 workers
        // → 1 effective worker → 6 rounds → 12s. The global depth (64)
        // must NOT drive the estimate.
        assert_eq!(policy.retry_after_secs(&tenant_full(6, 1, 4, 0), 4), 12);
        // The same tenant owning 3 of 4 weight units drains 3× faster.
        assert_eq!(policy.retry_after_secs(&tenant_full(6, 3, 4, 0), 4), 4);
    }

    #[test]
    fn tenant_retry_degenerate_cases() {
        let policy = AdmissionPolicy::default();
        // Rate-limit rejection: the bucket's exact refill time wins.
        assert_eq!(policy.retry_after_secs(&tenant_full(50, 1, 4, 7), 4), 7);
        // Rate hint below the floor is floored.
        let low = QueueFull {
            depth: 0,
            capacity: 64,
            tenant: Some(TenantRejection {
                tenant: "t".into(),
                backlog: 0,
                weight: 1,
                active_weight: 1,
                retry_secs: 0,
            }),
        };
        assert_eq!(policy.retry_after_secs(&low, 8), 1);
        // Zero backlog (in-flight cap hit with an empty lane) floors.
        assert_eq!(policy.retry_after_secs(&tenant_full(0, 2, 2, 0), 4), 1);
        // Zero/absurd weights never divide by zero: weight clamps to 1,
        // active_weight clamps to at least the tenant's own weight.
        assert_eq!(policy.retry_after_secs(&tenant_full(4, 0, 0, 0), 2), 4);
        // A lone tenant (weight == active_weight) gets the whole pool —
        // identical to the global estimate over its own lane.
        assert_eq!(
            policy.retry_after_secs(&tenant_full(8, 5, 5, 0), 4),
            policy.retry_after_secs(&full(8), 4)
        );
        // Tiny share of a big pool still drains at ≥1 worker.
        assert_eq!(policy.retry_after_secs(&tenant_full(3, 1, 100, 0), 2), 6);
    }
}
