//! Admission control: what happens when work arrives faster than the
//! session workers drain it.
//!
//! The queue itself enforces the hard cap ([`xplain_runtime::QueueFull`]
//! on submissions beyond [`xplain_runtime::QueueOptions::capacity`]);
//! this module owns the *client-facing semantics* of that rejection —
//! HTTP 429 with a `Retry-After` estimate — so the policy is testable
//! without sockets and documented in one place (DESIGN.md §8):
//!
//! * the cap bounds **waiting** jobs; running sessions are bounded by
//!   the worker count, so total in-flight work is `capacity + workers`;
//! * rejected submissions are never queued partially — the client owns
//!   the retry, and identical specs resubmitted later still dedupe;
//! * `Retry-After` scales with the backlog: observed depth divided by
//!   the worker count, times a nominal per-job service time, floored at
//!   one second. It is an estimate, not a promise — clients that retry
//!   earlier simply risk another 429.

use xplain_runtime::QueueFull;

/// Tunable admission policy.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Nominal per-job service time used to estimate drain time.
    pub nominal_job_secs: u64,
    /// Lower bound for `Retry-After`.
    pub floor_secs: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            nominal_job_secs: 2,
            floor_secs: 1,
        }
    }
}

impl AdmissionPolicy {
    /// The `Retry-After` seconds to attach to a 429 for this rejection.
    pub fn retry_after_secs(&self, rejection: QueueFull, workers: usize) -> u64 {
        let rounds = (rejection.depth as u64).div_ceil(workers.max(1) as u64);
        (rounds * self.nominal_job_secs).max(self.floor_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_scales_with_backlog_per_worker() {
        let policy = AdmissionPolicy::default();
        let full = |depth| QueueFull {
            depth,
            capacity: 64,
        };
        // 8 waiting, 4 workers → 2 drain rounds → 4s.
        assert_eq!(policy.retry_after_secs(full(8), 4), 4);
        // Same backlog, one worker → 16s.
        assert_eq!(policy.retry_after_secs(full(8), 1), 16);
        // Tiny backlog never goes below the floor.
        assert_eq!(policy.retry_after_secs(full(0), 4), 1);
        // Zero workers is treated as one (no division by zero).
        assert_eq!(policy.retry_after_secs(full(2), 0), 4);
    }
}
