//! Wire-format conformance: pins the HTTP surface other processes
//! build against — the mesh gateway, the work stealer, `mesh-bench`,
//! and any out-of-tree client.
//!
//! Everything here is intentionally brittle: exact status codes, exact
//! JSON key lists **in serialization order**, exact NDJSON chunked
//! framing. Renaming a field or reordering a struct is a wire-format
//! break for every deployed peer, so it must show up as a test diff,
//! not as a silent drift the gateway discovers in production.
//!
//! Solver counters are process-global; tests that execute jobs hold the
//! usual file-wide mutex.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{DomainRegistry, JobSpec, SessionBudgets, TenantRegistry};
use xplain_serve::{Client, Server, ServerConfig, ServerHandle};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    }
}

fn spec_json(domain: &str, seed: u64) -> String {
    serde_json::to_string(&JobSpec {
        domain: domain.into(),
        config: tiny_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    })
    .expect("spec serializes")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xplain-conformance-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(
    store: Option<PathBuf>,
    capacity: usize,
    pace_ms: u64,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 1,
        http_threads: 4,
        capacity,
        store_dir: store,
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        pace_ms,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    (handle, join)
}

fn start_server_with_tenants(
    capacity: usize,
    pace_ms: u64,
    tenants: PathBuf,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 1,
        http_threads: 4,
        capacity,
        store_dir: None,
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        pace_ms,
        tenants: Some(tenants),
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    (handle, join)
}

fn client(handle: &ServerHandle) -> Client {
    Client::new(handle.addr()).with_timeout(Duration::from_secs(120))
}

/// The top-level keys of a JSON object, in serialization order.
fn keys(body: &str) -> Vec<String> {
    let value: serde::Value = serde_json::from_str(body).expect("body is JSON");
    object_keys(&value)
}

fn object_keys(value: &serde::Value) -> Vec<String> {
    value
        .as_map()
        .expect("value is a JSON object")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

fn get_field<'v>(value: &'v serde::Value, key: &str) -> &'v serde::Value {
    serde::map_get(value.as_map().expect("object"), key)
        .unwrap_or_else(|| panic!("missing field '{key}'"))
}

fn wait_done(api: &Client, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = api.get(&format!("/v1/jobs/{id}")).unwrap();
        if resp.status == 200 && resp.body.contains("\"status\":\"done\"") {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Every success body's field names and every route's status code, in
/// one sweep over a live server.
#[test]
fn success_bodies_and_status_codes_are_pinned() {
    let _guard = test_lock();
    let store_dir = scratch_dir("shapes");
    let (handle, join) = start_server(Some(store_dir.clone()), 16, 0);
    let api = client(&handle);

    // GET /v1/domains → 200, a bare array of {id, description}.
    let resp = api.get("/v1/domains").unwrap();
    assert_eq!(resp.status, 200);
    let listing: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let entries = listing.as_seq().expect("domains is a JSON array");
    assert!(!entries.is_empty());
    for entry in entries {
        assert_eq!(object_keys(entry), ["id", "description"]);
    }

    // POST /v1/jobs (fresh) → 202 {id, status, disposition, cache_hit};
    // ids are exactly 16 lowercase hex digits (the content key).
    let resp = api.post("/v1/jobs", &spec_json("dp", 0xC0FF)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    assert_eq!(
        keys(&resp.body),
        ["id", "status", "disposition", "cache_hit"]
    );
    let submit: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let id = get_field(&submit, "id").as_str().unwrap().to_string();
    assert_eq!(id.len(), 16, "id {id:?}");
    assert!(
        id.chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
        "id {id:?} is not lowercase hex"
    );
    wait_done(&api, &id);

    // GET /v1/jobs/{id} → 200 {id, domain, status, events, recovered,
    // outcome}.
    let resp = api.get(&format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        keys(&resp.body),
        ["id", "domain", "status", "events", "recovered", "outcome"]
    );

    // POST /v1/jobs (repeat) → 200, same shape, cache_hit true.
    let resp = api.post("/v1/jobs", &spec_json("dp", 0xC0FF)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        keys(&resp.body),
        ["id", "status", "disposition", "cache_hit"]
    );
    assert!(resp.body.contains("\"cache_hit\":true"), "{}", resp.body);

    // POST /v1/jobs/{id}/cancel on a done job → 200 {id, was, cancelled},
    // honest about being too late.
    let resp = api.post(&format!("/v1/jobs/{id}/cancel"), "").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(keys(&resp.body), ["id", "was", "cancelled"]);
    let cancel: serde::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(get_field(&cancel, "was").as_str(), Some("done"));
    assert_eq!(get_field(&cancel, "cancelled").as_bool(), Some(false));

    // GET /v1/queue → 200 {depth, active, stealable, pending}; pending
    // entries (none right now) are {id, domain, donated}.
    let resp = api.get("/v1/queue").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        keys(&resp.body),
        ["depth", "active", "stealable", "pending"]
    );

    // POST /v1/queue/steal → 200 {jobs}; an idle queue donates nothing.
    let resp = api.post("/v1/queue/steal", r#"{"max":2}"#).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(keys(&resp.body), ["jobs"]);
    assert_eq!(resp.body, r#"{"jobs":[]}"#);

    // GET /v1/metrics → 200; the full report schema documented in
    // DESIGN.md §"Metrics schema". `mesh` is null on a standalone
    // server; `store_entries` is a number and `journal` an object
    // because this server runs store-backed with the journal on.
    let resp = api.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        keys(&resp.body),
        [
            "uptime_ms",
            "queue",
            "store_entries",
            "bank",
            "journal",
            "mesh",
            "solver",
            "routes"
        ]
    );
    let metrics: serde::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(
        object_keys(get_field(&metrics, "queue")),
        [
            "depth",
            "active_sessions",
            "submitted",
            "completed",
            "cancelled",
            "rejected_busy",
            "cache_hits",
            "cache_hit_rate",
            "donated",
            "recovered"
        ]
    );
    assert!(
        matches!(get_field(&metrics, "mesh"), serde::Value::Null),
        "standalone server must report mesh:null, got {}",
        resp.body
    );
    assert!(get_field(&metrics, "store_entries").as_f64().is_some());
    assert_eq!(
        object_keys(get_field(&metrics, "bank")),
        ["entries", "bytes", "last_replay_pass"],
        "bank gauge block schema (store-backed server exposes the bank)"
    );
    assert_eq!(
        object_keys(get_field(&metrics, "journal")),
        [
            "segments",
            "bytes",
            "live_jobs",
            "records",
            "recovered",
            "append_errors",
            "segments_compacted",
            "bytes_compacted"
        ],
        "journal block schema (store-backed server journals by default)"
    );
    for route in get_field(&metrics, "routes").as_seq().unwrap() {
        assert_eq!(
            object_keys(route),
            ["route", "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"]
        );
    }

    // POST /v1/shutdown → 200 {shutting_down}.
    let resp = api.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(keys(&resp.body), ["shutting_down"]);
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Every failure path: envelope shape, code, and the headers clients
/// key off (`Allow`, `Retry-After`).
#[test]
fn error_envelopes_codes_and_headers_are_pinned() {
    let _guard = test_lock();
    // capacity 1 + a paced worker makes the 429 deterministic: one job
    // runs (held ≥300ms), one waits, the next submission overflows.
    let (handle, join) = start_server(None, 1, 300);
    let api = client(&handle);

    // 404: unknown path, and a well-formed id nobody submitted.
    let resp = api.get("/no/such/path").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(keys(&resp.body), ["error"]);
    assert_eq!(api.get("/v1/jobs/0123456789abcdef").unwrap().status, 404);
    assert_eq!(
        api.get("/v1/jobs/0123456789abcdef/events").unwrap().status,
        404
    );

    // 405: wrong method, with the allowed one named in `Allow`.
    let resp = api.get("/v1/jobs").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    assert_eq!(keys(&resp.body), ["error"]);
    let resp = api.post("/v1/domains", "").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = api.post("/v1/queue", "").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = api.get("/v1/queue/steal").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = api.post("/v1/regressions", "").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = api.get("/v1/tune").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    // 404: the regression bank and the tuner live in the store; a
    // storeless server has neither.
    assert_eq!(api.get("/v1/regressions").unwrap().status, 404);
    let resp = api.post("/v1/tune", r#"{"domain":"dp"}"#).unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(keys(&resp.body), ["error"]);

    // 400: unparseable body, then a parseable spec for a domain that
    // does not exist (the message points at the discovery route).
    let resp = api.post("/v1/jobs", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(keys(&resp.body), ["error"]);
    let resp = api
        .post("/v1/jobs", &spec_json("no-such-domain", 1))
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("/v1/domains"), "{}", resp.body);
    let resp = api.post("/v1/queue/steal", "{not json").unwrap();
    assert_eq!(resp.status, 400);

    // 413: a declared body over the 1 MiB cap is refused from the
    // headers alone — the server never reads (or waits for) the body.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        raw,
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        1024 * 1024 + 1
    )
    .unwrap();
    let mut head = String::new();
    raw.read_to_string(&mut head).unwrap();
    assert!(
        head.starts_with("HTTP/1.1 413 "),
        "oversized body got: {head}"
    );
    drop(raw);

    // 429: fill the paced server, overflow, and read Retry-After.
    let resp = api.post("/v1/jobs", &spec_json("dp", 1)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let first: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let first_id = get_field(&first, "id").as_str().unwrap().to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = api.get(&format!("/v1/jobs/{first_id}")).unwrap();
        if status.body.contains("\"status\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "first job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        api.post("/v1/jobs", &spec_json("dp", 2)).unwrap().status,
        202
    );
    let resp = api.post("/v1/jobs", &spec_json("dp", 3)).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(keys(&resp.body), ["error"]);
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(retry_after >= 1);

    handle.shutdown();
    join.join().unwrap();
}

/// The tenancy wire surface: 401 on missing/malformed credentials, 403
/// on unknown ones, the tenant-scoped 429 `Retry-After`, tenant
/// attribution in `/v1/queue`, and the exact key order of the
/// `tenants` block in `/v1/metrics`. Read/ops routes stay open even
/// when enforcing (liveness probes and mesh internals rely on it).
#[test]
fn tenancy_auth_quota_and_metrics_surfaces_are_pinned() {
    let _guard = test_lock();
    let dir = scratch_dir("tenancy");
    std::fs::create_dir_all(&dir).unwrap();
    let config_path = dir.join("tenants.json");
    let config = format!(
        concat!(
            r#"{{"tenants":["#,
            r#"{{"id":"light","key_fnv":"{}","weight":1,"submit_rate":0.25,"submit_burst":1}},"#,
            r#"{{"id":"heavy","key_fnv":"{}","weight":3}}"#,
            r#"]}}"#
        ),
        TenantRegistry::hash_api_key("light-key"),
        TenantRegistry::hash_api_key("heavy-key"),
    );
    std::fs::write(&config_path, config).unwrap();
    // pace 300ms keeps later submissions visibly queued for the
    // attribution check.
    let (handle, join) = start_server_with_tenants(16, 300, config_path);
    let api = client(&handle);

    // 401: submission without credentials, and with a malformed
    // Authorization header (scheme must be Bearer).
    let resp = api.post("/v1/jobs", &spec_json("dp", 1)).unwrap();
    assert_eq!(resp.status, 401, "{}", resp.body);
    assert_eq!(keys(&resp.body), ["error"]);
    let resp = client(&handle)
        .with_header("Authorization", "Basic bGlnaHQ=")
        .post("/v1/jobs", &spec_json("dp", 1))
        .unwrap();
    assert_eq!(resp.status, 401, "{}", resp.body);

    // 403: well-formed but unknown API key — on every route, not just
    // submissions. Same for an unknown forwarded tenant id.
    let resp = client(&handle)
        .with_bearer("no-such-key")
        .post("/v1/jobs", &spec_json("dp", 1))
        .unwrap();
    assert_eq!(resp.status, 403, "{}", resp.body);
    assert_eq!(keys(&resp.body), ["error"]);
    let resp = client(&handle)
        .with_bearer("no-such-key")
        .get("/v1/domains")
        .unwrap();
    assert_eq!(resp.status, 403, "{}", resp.body);
    let resp = client(&handle)
        .with_tenant("nobody")
        .post("/v1/jobs", &spec_json("dp", 1))
        .unwrap();
    assert_eq!(resp.status, 403, "{}", resp.body);

    // Read/ops routes answer without credentials (DESIGN.md §12's trust
    // model: auth gates work attribution, not liveness).
    assert_eq!(api.get("/v1/domains").unwrap().status, 200);
    assert_eq!(api.get("/v1/queue").unwrap().status, 200);

    // An authenticated submission is accepted; an immediate second one
    // overruns light's 0.25/s single-token bucket and gets the
    // tenant-scoped 429: Retry-After is the bucket's own refill time
    // (~4s), NOT the global backlog estimate (empty queue → 1s).
    let light = client(&handle).with_bearer("light-key");
    let resp = light.post("/v1/jobs", &spec_json("dp", 0xA11CE)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let resp = light.post("/v1/jobs", &spec_json("dp", 0xA11CF)).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(keys(&resp.body), ["error"]);
    assert!(
        resp.body.contains("tenant 'light'") && resp.body.contains("submit rate"),
        "{}",
        resp.body
    );
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("tenant 429 must carry Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(
        (2..=4).contains(&retry_after),
        "expected the bucket refill time, got {retry_after}"
    );

    // The gateway forwarding path: X-Xplain-Tenant attributes without a
    // bearer key. Two heavy jobs guarantee at least one is still
    // waiting, so /v1/queue shows the attributed `tenant` key.
    let forwarded = client(&handle).with_tenant("heavy");
    let resp = forwarded.post("/v1/jobs", &spec_json("dp", 2)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let heavy = client(&handle).with_bearer("heavy-key");
    let resp = heavy.post("/v1/jobs", &spec_json("dp", 3)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);

    let resp = api.get("/v1/queue").unwrap();
    assert_eq!(resp.status, 200);
    let queue: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let pending = get_field(&queue, "pending").as_seq().unwrap();
    assert!(!pending.is_empty(), "{}", resp.body);
    for entry in pending {
        assert_eq!(object_keys(entry), ["id", "domain", "donated", "tenant"]);
    }

    // GET /v1/metrics grows the `tenants` block between `queue` and
    // `store_entries`, sorted by tenant id, with this exact key order.
    let resp = api.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        keys(&resp.body),
        [
            "uptime_ms",
            "queue",
            "tenants",
            "store_entries",
            "bank",
            "journal",
            "mesh",
            "solver",
            "routes"
        ]
    );
    let metrics: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let tenants = get_field(&metrics, "tenants").as_seq().unwrap();
    assert_eq!(tenants.len(), 2, "{}", resp.body);
    for entry in tenants {
        assert_eq!(
            object_keys(entry),
            [
                "tenant",
                "weight",
                "pending",
                "running",
                "submitted",
                "completed",
                "rejected"
            ]
        );
    }
    assert_eq!(get_field(&tenants[0], "tenant").as_str(), Some("heavy"));
    assert_eq!(get_field(&tenants[0], "weight").as_f64(), Some(3.0));
    assert_eq!(get_field(&tenants[0], "submitted").as_f64(), Some(2.0));
    assert_eq!(get_field(&tenants[1], "tenant").as_str(), Some("light"));
    assert_eq!(get_field(&tenants[1], "submitted").as_f64(), Some(1.0));
    assert_eq!(get_field(&tenants[1], "rejected").as_f64(), Some(1.0));

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The event stream on the wire: chunked transfer encoding, NDJSON
/// content type, one event line (newline-terminated) per chunk, and the
/// zero-length terminator chunk that distinguishes a complete stream
/// from a truncated one.
#[test]
fn event_stream_framing_is_one_ndjson_line_per_chunk() {
    let _guard = test_lock();
    let (handle, join) = start_server(None, 16, 0);
    let api = client(&handle);

    let resp = api.post("/v1/jobs", &spec_json("dp", 0xF4A)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let submit: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let id = get_field(&submit, "id").as_str().unwrap().to_string();
    wait_done(&api, &id);

    // Raw socket: no client-side dechunking between us and the bytes.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(raw, "GET /v1/jobs/{id}/events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut wire = Vec::new();
    raw.read_to_end(&mut wire).unwrap();
    let wire = String::from_utf8(wire).expect("stream is UTF-8");

    let (head, body) = wire
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
    let header_lines: Vec<&str> = head.split("\r\n").skip(1).collect();
    let has = |needle: &str| header_lines.iter().any(|l| l.eq_ignore_ascii_case(needle));
    assert!(has("transfer-encoding: chunked"), "{head}");
    assert!(has("content-type: application/x-ndjson"), "{head}");
    assert!(has("connection: close"), "{head}");

    // Walk the chunks by hand: `<hex size>\r\n<payload>\r\n`, each
    // payload exactly one JSON event line ending in '\n', then `0\r\n\r\n`.
    let mut rest = body;
    let mut lines = 0usize;
    loop {
        let (size_hex, after) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_hex, 16).expect("chunk size is hex");
        if size == 0 {
            assert_eq!(after, "\r\n", "terminator chunk must end the stream");
            break;
        }
        let payload = &after[..size];
        assert!(
            payload.ends_with('\n') && !payload[..size - 1].contains('\n'),
            "chunk is not exactly one NDJSON line: {payload:?}"
        );
        let parsed: serde::Value =
            serde_json::from_str(payload.trim_end()).expect("chunk payload is JSON");
        assert!(parsed.as_map().is_some());
        lines += 1;
        rest = after[size..].strip_prefix("\r\n").expect("chunk CRLF");
    }
    assert!(lines >= 2, "expected a multi-event stream, saw {lines}");

    handle.shutdown();
    join.join().unwrap();
}

/// The repair-loop surface: `GET /v1/regressions` paging and entry
/// shape, `POST /v1/tune` NDJSON framing (`{"generation":…}` lines
/// closed by one `{"report":…}` line), and both routes' error codes on
/// a store-backed server.
#[test]
fn regression_and_tune_surfaces_are_pinned() {
    let _guard = test_lock();
    let store_dir = scratch_dir("tune");
    let (handle, join) = start_server(Some(store_dir.clone()), 16, 0);
    let api = client(&handle);

    // A finished dp session writes its findings' witnesses through to
    // the bank — the corpus both routes below serve.
    let resp = api.post("/v1/jobs", &spec_json("dp", 0x5EED)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let submit: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let id = get_field(&submit, "id").as_str().unwrap().to_string();
    wait_done(&api, &id);

    // GET /v1/regressions → 200 {total, offset, entries}; entries are
    // {id, domain, gap, instance, job_key, session_seed} with 16-hex ids.
    let resp = api.get("/v1/regressions").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(keys(&resp.body), ["total", "offset", "entries"]);
    let listing: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let total = get_field(&listing, "total").as_f64().unwrap() as usize;
    assert!(
        total >= 1,
        "dp session seeded no regressions: {}",
        resp.body
    );
    let entries = get_field(&listing, "entries").as_seq().unwrap();
    assert_eq!(entries.len(), total.min(50), "default limit is 50");
    for entry in entries {
        assert_eq!(
            object_keys(entry),
            ["id", "domain", "gap", "instance", "job_key", "session_seed"]
        );
        let entry_id = get_field(entry, "id").as_str().unwrap();
        assert_eq!(entry_id.len(), 16, "id {entry_id:?}");
    }

    // Paging: an offset past the end yields an empty page with the same
    // total; a malformed offset is a 400, not a silent default.
    let resp = api
        .get(&format!("/v1/regressions?offset={total}&limit=5"))
        .unwrap();
    assert_eq!(resp.status, 200);
    let page: serde::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(get_field(&page, "offset").as_f64(), Some(total as f64));
    assert!(get_field(&page, "entries").as_seq().unwrap().is_empty());
    assert_eq!(api.get("/v1/regressions?offset=nope").unwrap().status, 400);

    // POST /v1/tune error paths answer plain (unchunked) statuses.
    let resp = api.post("/v1/tune", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(keys(&resp.body), ["error"]);
    let resp = api
        .post("/v1/tune", r#"{"domain":"no-such-domain"}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("/v1/domains"), "{}", resp.body);

    // POST /v1/tune on the wire: chunked NDJSON, one line per chunk,
    // every line but the last `{"generation":{…}}`, the last
    // `{"report":{…}}` with the full TuneReport schema.
    let body = r#"{"domain":"dp","quick":true,"seed":7}"#;
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        raw,
        "POST /v1/tune HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut wire = Vec::new();
    raw.read_to_end(&mut wire).unwrap();
    let wire = String::from_utf8(wire).expect("stream is UTF-8");
    let (head, chunks) = wire
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
    let header_lines: Vec<&str> = head.split("\r\n").skip(1).collect();
    let has = |needle: &str| header_lines.iter().any(|l| l.eq_ignore_ascii_case(needle));
    assert!(has("transfer-encoding: chunked"), "{head}");
    assert!(has("content-type: application/x-ndjson"), "{head}");

    let mut rest = chunks;
    let mut lines: Vec<String> = Vec::new();
    loop {
        let (size_hex, after) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_hex, 16).expect("chunk size is hex");
        if size == 0 {
            assert_eq!(after, "\r\n", "terminator chunk must end the stream");
            break;
        }
        let payload = &after[..size];
        assert!(
            payload.ends_with('\n') && !payload[..size - 1].contains('\n'),
            "chunk is not exactly one NDJSON line: {payload:?}"
        );
        lines.push(payload.trim_end().to_string());
        rest = after[size..].strip_prefix("\r\n").expect("chunk CRLF");
    }
    assert!(
        lines.len() >= 2,
        "expected generations + report, saw {lines:?}"
    );
    let (report_line, generation_lines) = lines.split_last().unwrap();
    for line in generation_lines {
        let parsed: serde::Value = serde_json::from_str(line).unwrap();
        assert_eq!(object_keys(&parsed), ["generation"]);
        assert_eq!(
            object_keys(get_field(&parsed, "generation")),
            ["generation", "evaluated", "best_fitness", "best_params"]
        );
    }
    let parsed: serde::Value = serde_json::from_str(report_line).unwrap();
    assert_eq!(object_keys(&parsed), ["report"]);
    let report = get_field(&parsed, "report");
    assert_eq!(
        object_keys(report),
        [
            "schema_version",
            "domain",
            "param_names",
            "default_params",
            "default_fitness",
            "best",
            "improved",
            "trajectory",
            "bank_instances",
            "skipped_instances",
            "probe_points",
            "still_defeated"
        ]
    );
    assert_eq!(
        object_keys(get_field(report, "best")),
        ["params", "fitness", "failures"]
    );
    assert_eq!(get_field(report, "domain").as_str(), Some("dp"));

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}
