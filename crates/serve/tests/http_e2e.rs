//! End-to-end HTTP tests over a live loopback server.
//!
//! The load-bearing properties:
//!
//! 1. **streamed ≡ batch** — for each built-in domain, the NDJSON event
//!    stream served over `GET /v1/jobs/{id}/events` is byte-identical to
//!    the `runner --watch` lines of a direct `run_manifest` of the same
//!    spec (terminal lines compared after zeroing the embedded result's
//!    `wall_time_ms`, the one nondeterministic execution-metadata field).
//! 2. **cancel → checkpoint → resubmit resumes** — a cancelled streaming
//!    job leaves a `.ckpt` in the store; resubmitting the same spec
//!    resumes it, and the concatenation of the two event streams is
//!    byte-identical to an uninterrupted run.
//! 3. **admission control** — a full queue answers 429 + `Retry-After`.
//! 4. **graceful shutdown** — in-flight sessions checkpoint; a *new*
//!    server over the same store resumes them.
//!
//! Solver counters are process-global, and terminal watch lines embed
//! each job's counter delta — so tests that compare terminal lines must
//! not solve concurrently. A file-wide mutex serializes them (the same
//! reason `session_resume.rs` is a single-`#[test]` binary).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{
    run_manifest_opts, watch_line, DomainRegistry, JobOutcome, JobSpec, RunOptions, SessionBudgets,
    SessionEvent, WatchLine,
};
use xplain_serve::{Client, Server, ServerConfig, ServerHandle};

/// Serializes the solver-counter-sensitive tests (see module docs).
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    }
}

fn spec(domain: &str, seed: u64) -> JobSpec {
    JobSpec {
        domain: domain.into(),
        config: tiny_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    }
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xplain-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind on an ephemeral port and run the server on a background thread.
fn start_server(
    store_dir: Option<PathBuf>,
    workers: usize,
    capacity: usize,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: workers,
        http_threads: 4,
        capacity,
        store_dir,
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    (handle, join)
}

fn client(handle: &ServerHandle) -> Client {
    Client::new(handle.addr()).with_timeout(Duration::from_secs(120))
}

/// The `runner --watch` lines of a direct, serial, storeless run — the
/// reference the served stream must match byte-for-byte.
fn reference_lines(job: &JobSpec) -> (Vec<String>, JobOutcome) {
    let registry = DomainRegistry::builtin();
    let jobs = vec![job.clone()];
    let lines: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let sink = |index: usize, event: &SessionEvent| {
        lines
            .lock()
            .unwrap()
            .push(watch_line(index, &jobs[index].domain, event));
    };
    let opts = RunOptions {
        budgets_override: None,
        resume: false,
        sink: Some(&sink),
        origin: None,
    };
    let outcomes = run_manifest_opts(&registry, &jobs, None, 1, opts);
    (
        lines.into_inner().unwrap(),
        outcomes.into_iter().next().unwrap(),
    )
}

/// Zero the embedded result's `wall_time_ms` on a terminal line so
/// streams compare modulo execution metadata only.
fn normalize_terminal(line: &str) -> String {
    let mut parsed: WatchLine = serde_json::from_str(line).expect("watch line parses");
    if let SessionEvent::Finished { result, .. } = &mut parsed.event {
        result.wall_time_ms = 0;
    }
    serde_json::to_string(&parsed).expect("watch line reserializes")
}

fn line_kind(line: &str) -> String {
    serde_json::from_str::<WatchLine>(line)
        .expect("watch line parses")
        .kind
}

/// Byte-identity for event streams: non-terminal lines must match
/// exactly; terminal lines match after wall-time normalization.
fn assert_streams_equal(served: &[String], reference: &[String], context: &str) {
    assert_eq!(
        served.len(),
        reference.len(),
        "{context}: stream lengths differ\nserved:    {served:#?}\nreference: {reference:#?}"
    );
    for (i, (s, r)) in served.iter().zip(reference).enumerate() {
        if line_kind(r) == "finished" {
            assert_eq!(
                normalize_terminal(s),
                normalize_terminal(r),
                "{context}: terminal line {i} differs"
            );
        } else {
            assert_eq!(s, r, "{context}: line {i} differs byte-for-byte");
        }
    }
}

#[derive(serde::Deserialize)]
struct SubmitResp {
    id: String,
    status: String,
    disposition: String,
    cache_hit: bool,
}

#[derive(serde::Deserialize)]
struct StatusResp {
    id: String,
    domain: String,
    status: String,
    #[serde(default)]
    events: usize,
    outcome: Option<JobOutcome>,
}

/// Property 1: submit → stream for every built-in domain; streamed
/// events ≡ direct `run_manifest` watch lines; repeat submissions are
/// cache hits served without recomputation.
#[test]
fn served_streams_match_direct_runs_for_all_domains() {
    let _guard = test_lock();
    let store_dir = scratch_dir("stream");
    let (handle, join) = start_server(Some(store_dir.clone()), 1, 16);
    let api = client(&handle);

    for domain in ["dp", "ff", "sched"] {
        let job = spec(domain, 0xE2E);
        // Reference first — solver counters are process-global, so the
        // direct run and the served run must not overlap in time.
        let (reference, ref_outcome) = reference_lines(&job);

        let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
        assert_eq!(resp.status, 202, "{domain}: {}", resp.body);
        let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(submit.disposition, "enqueued", "{domain}");
        assert!(!submit.cache_hit);

        let (status, mut stream) = api
            .stream(&format!("/v1/jobs/{}/events", submit.id))
            .unwrap();
        assert_eq!(status, 200);
        let served = stream.collect_lines().unwrap();
        assert_streams_equal(&served, &reference, domain);

        // Status endpoint: done, natural, computed (not a cache hit).
        let resp = api.get(&format!("/v1/jobs/{}", submit.id)).unwrap();
        assert_eq!(resp.status, 200);
        let status: StatusResp = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(status.id, submit.id);
        assert_eq!(status.domain, domain);
        assert_eq!(status.status, "done");
        assert_eq!(status.events, served.len());
        let outcome = status.outcome.expect("done job has an outcome");
        assert!(!outcome.cache_hit);
        assert!(outcome.finish.as_ref().is_some_and(|f| f.natural));
        // The served outcome's result equals the direct run's.
        assert_eq!(
            serde_json::to_string(&outcome.result).unwrap(),
            serde_json::to_string(&ref_outcome.result).unwrap(),
            "{domain}: served result differs from direct run"
        );

        // Resubmission: answered from memory as a cache hit (200, not
        // 202 — nothing new was scheduled).
        let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
        assert_eq!(resp.status, 200, "{domain}: {}", resp.body);
        let again: SubmitResp = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(again.id, submit.id);
        assert_eq!(again.disposition, "cache_hit");
        assert!(again.cache_hit);
        assert_eq!(again.status, "done");
    }

    // Metrics reflect the traffic: submissions, completions, cache hits.
    let resp = api.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let metrics: serde::Value = serde_json::from_str(&resp.body).unwrap();
    let queue = serde::map_get(metrics.as_map().unwrap(), "queue")
        .unwrap()
        .as_map()
        .unwrap();
    let get = |k: &str| serde::map_get(queue, k).unwrap().as_f64().unwrap();
    assert_eq!(get("submitted"), 6.0, "{}", resp.body);
    assert_eq!(get("completed"), 3.0);
    assert_eq!(get("cache_hits"), 3.0);
    assert_eq!(get("cache_hit_rate"), 0.5);
    assert!(serde::map_get(metrics.as_map().unwrap(), "routes")
        .unwrap()
        .as_seq()
        .is_some_and(|routes| !routes.is_empty()));

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Property 2 (the acceptance criterion): a cancelled streaming job's
/// checkpoint is resumed by a resubmit of the same spec, and the
/// concatenated event stream is byte-identical to an uninterrupted run.
#[test]
fn cancelled_stream_resumes_on_resubmit_with_identical_concatenated_stream() {
    let _guard = test_lock();
    let store_dir = scratch_dir("cancel-resume");
    let (handle, join) = start_server(Some(store_dir.clone()), 1, 16);
    let api = client(&handle);

    let job = spec("sched", 0xCA7CE1);
    let (reference, _) = reference_lines(&job);
    assert!(
        reference.len() >= 4,
        "config too small to interrupt meaningfully ({} events)",
        reference.len()
    );

    // Submit and start streaming; cancel after two events arrive.
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202);
    let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", submit.id))
        .unwrap();
    let mut first_segment = Vec::new();
    for _ in 0..2 {
        first_segment.push(stream.next_line().unwrap().expect("live event"));
    }
    let resp = api
        .post(&format!("/v1/jobs/{}/cancel", submit.id), "")
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // Drain to the terminal event the cancellation forces.
    first_segment.extend(stream.collect_lines().unwrap());
    let terminal = first_segment.pop().expect("cancelled stream terminates");
    let parsed: WatchLine = serde_json::from_str(&terminal).unwrap();
    assert_eq!(parsed.kind, "finished");
    assert!(
        terminal.contains("\"Cancelled\""),
        "expected a cancelled terminal event, got: {terminal}"
    );
    // Every retained line is a clean prefix of the reference stream.
    assert!(
        first_segment.len() < reference.len() - 1,
        "cancellation landed after the run finished; nothing was interrupted"
    );

    // The cancelled session checkpointed under its content key.
    let ckpt = store_dir.join(format!("{}.ckpt", submit.id));
    assert!(ckpt.is_file(), "no checkpoint at {}", ckpt.display());

    // Resubmit the same spec: the queue re-enqueues it as a resuming
    // execution under the same id.
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let resumed: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(resumed.id, submit.id);
    assert_eq!(resumed.disposition, "resumed");

    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", resumed.id))
        .unwrap();
    let second_segment = stream.collect_lines().unwrap();

    // The resumed outcome must acknowledge the checkpoint.
    let status: StatusResp =
        serde_json::from_str(&api.get(&format!("/v1/jobs/{}", resumed.id)).unwrap().body).unwrap();
    let outcome = status.outcome.expect("resumed job finished");
    let finish = outcome.finish.expect("resumed job ran a session");
    assert!(finish.natural, "resumed run must finish naturally");
    assert!(
        finish.resumed,
        "second execution must resume the checkpoint"
    );

    // THE acceptance check: concatenated segments ≡ uninterrupted run.
    let mut concatenated = first_segment;
    concatenated.extend(second_segment);
    assert_streams_equal(&concatenated, &reference, "cancel+resume concatenation");

    // Natural completion cleared the checkpoint.
    assert!(!ckpt.exists(), "checkpoint must clear on natural finish");

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Property 3: admission control — a full waiting line answers 429 with
/// a Retry-After; plus the small-surface error paths (404/405/400).
#[test]
fn full_queue_answers_429_and_error_paths_are_clean() {
    let _guard = test_lock();
    let (handle, join) = start_server(None, 1, 1);
    let api = client(&handle);

    // Occupy the single worker…
    let running = spec("sched", 1);
    let resp = api.post("/v1/jobs", &spec_json(&running)).unwrap();
    assert_eq!(resp.status, 202);
    let running: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    // …wait until it is actually running (not just queued)…
    loop {
        let status: StatusResp =
            serde_json::from_str(&api.get(&format!("/v1/jobs/{}", running.id)).unwrap().body)
                .unwrap();
        if status.status == "running" {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // …fill the waiting line (capacity 1)…
    let waiting = api.post("/v1/jobs", &spec_json(&spec("sched", 2))).unwrap();
    assert_eq!(waiting.status, 202, "{}", waiting.body);
    // …and overflow it.
    let rejected = api.post("/v1/jobs", &spec_json(&spec("sched", 3))).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    let retry_after: u64 = rejected
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(retry_after >= 1);

    // An identical spec still dedups instead of rejecting.
    let joined = api.post("/v1/jobs", &spec_json(&spec("sched", 1))).unwrap();
    assert_eq!(joined.status, 202);
    let joined: SubmitResp = serde_json::from_str(&joined.body).unwrap();
    assert_eq!(joined.disposition, "in_flight");

    // Error surface.
    assert_eq!(api.get("/v1/jobs/0123456789abcdef").unwrap().status, 404);
    assert_eq!(api.get("/v1/jobs/not-hex").unwrap().status, 404);
    assert_eq!(api.get("/nope").unwrap().status, 404);
    let m405 = api.get("/v1/shutdown").unwrap();
    assert_eq!(m405.status, 405);
    assert_eq!(m405.header("allow"), Some("POST"));
    assert_eq!(api.post("/v1/jobs", "{not json").unwrap().status, 400);
    let unknown = api
        .post("/v1/jobs", &spec_json(&spec("no-such-domain", 1)))
        .unwrap();
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("unknown domain"), "{}", unknown.body);

    // Domains listing matches the registry.
    let domains = api.get("/v1/domains").unwrap();
    assert_eq!(domains.status, 200);
    for id in DomainRegistry::builtin().ids() {
        assert!(
            domains.body.contains(&format!("\"{id}\"")),
            "{}",
            domains.body
        );
    }

    // Metrics counted the rejection.
    let metrics: serde::Value =
        serde_json::from_str(&api.get("/v1/metrics").unwrap().body).unwrap();
    let queue = serde::map_get(metrics.as_map().unwrap(), "queue")
        .unwrap()
        .as_map()
        .unwrap();
    assert_eq!(
        serde::map_get(queue, "rejected_busy").unwrap().as_f64(),
        Some(1.0)
    );

    // Cancel everything and stop; shutdown must still drain cleanly with
    // a job mid-flight.
    api.post(&format!("/v1/jobs/{}/cancel", running.id), "")
        .unwrap();
    handle.shutdown();
    join.join().unwrap();
}

/// Property 4: graceful shutdown checkpoints in-flight sessions, and a
/// NEW server over the same store resumes them on resubmit — the
/// restart-durability story.
#[test]
fn shutdown_checkpoints_inflight_and_next_server_resumes() {
    let _guard = test_lock();
    let store_dir = scratch_dir("shutdown");
    let job = spec("sched", 0x5D0D0);
    let (reference, _) = reference_lines(&job);

    // Server 1: start the job, take one event, shut down via the API.
    let (handle, join) = start_server(Some(store_dir.clone()), 1, 16);
    let api = client(&handle);
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202);
    let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", submit.id))
        .unwrap();
    let mut first_segment = vec![stream.next_line().unwrap().expect("live event")];
    let resp = api.post("/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    // The shutdown cancels the session; its stream ends with a terminal
    // event and the server drains.
    first_segment.extend(stream.collect_lines().unwrap());
    let terminal = first_segment.pop().expect("stream terminates on shutdown");
    assert_eq!(line_kind(&terminal), "finished");
    join.join().unwrap();

    let ckpt = store_dir.join(format!("{}.ckpt", submit.id));
    assert!(
        ckpt.is_file(),
        "graceful shutdown must leave a checkpoint at {}",
        ckpt.display()
    );

    // Server 2, same store: resubmit resumes mid-loop and completes; the
    // concatenated stream is the uninterrupted one.
    let (handle, join) = start_server(Some(store_dir.clone()), 1, 16);
    let api = client(&handle);
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let resubmit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(resubmit.id, submit.id, "content-addressed ids are stable");
    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", resubmit.id))
        .unwrap();
    let second_segment = stream.collect_lines().unwrap();
    let status: StatusResp =
        serde_json::from_str(&api.get(&format!("/v1/jobs/{}", resubmit.id)).unwrap().body).unwrap();
    let finish = status.outcome.unwrap().finish.expect("session ran");
    assert!(finish.natural && finish.resumed, "{finish:?}");

    let mut concatenated = first_segment;
    concatenated.extend(second_segment);
    assert_streams_equal(&concatenated, &reference, "restart concatenation");

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}
