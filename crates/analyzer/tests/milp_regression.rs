//! Branch-and-bound regression pins for the MetaOpt-style analyzer
//! encodings (the big-M/indicator MILPs of Fig. 1b/1c).
//!
//! Complements `crates/domains/tests/milp_regression.rs`: those pin the
//! clean assignment MILPs, these pin the gadget-heavy encodings whose LP
//! relaxations are exactly where a warm-start bug would change the
//! explored tree. Objectives stay correct under such a bug — node counts
//! do not.

use xplain_analyzer::{DpMetaOpt, FfMetaOpt};
use xplain_domains::te::TeProblem;
use xplain_lp::{milp, SessionPool};

#[test]
fn ff_sec2_encoding_nodes_pinned() {
    // §2's 4-ball / 3-bin instance: gap of exactly 1 bin.
    let analyzer = FfMetaOpt::sec2();
    let built = analyzer.build_model(&[]);
    let (sol, stats) = milp::solve_with(&built.model, milp::Backend::Revised).expect("solvable");
    assert!((sol.objective - 1.0).abs() < 1e-6, "{}", sol.objective);
    assert_eq!(stats.nodes, PIN_FF_SEC2, "node count drifted: {stats:?}");
    assert_eq!(stats.lp.cold_starts, 1, "{stats:?}");
    assert_eq!(stats.lp.warm_hits + 1, stats.lp.solves, "{stats:?}");
}

#[test]
fn dp_fig1a_encoding_nodes_pinned() {
    // The Fig. 1b bilevel flattening on the Fig. 1a instance: gap 100.
    let analyzer = DpMetaOpt::new(TeProblem::fig1a(), 50.0);
    let built = analyzer.build_model(&[]);
    let (sol, stats) = milp::solve_with(&built.model, milp::Backend::Revised).expect("solvable");
    assert!((sol.objective - 100.0).abs() < 1.0, "{}", sol.objective);
    assert_eq!(stats.nodes, PIN_DP_FIG1A, "node count drifted: {stats:?}");
}

#[test]
fn pooled_iterate_and_exclude_matches_unpooled() {
    // The session-reuse path must not change what the analyzer finds.
    let analyzer = FfMetaOpt::sec2();
    let mut pool = SessionPool::new();
    let pooled = analyzer.find_adversarial_pooled(&[], &mut pool).unwrap();
    let plain = analyzer.find_adversarial(&[]).unwrap();
    assert!((pooled.gap - plain.gap).abs() < 1e-6);
    assert_eq!(pooled.input, plain.input);
    assert!(pool.stats().solves > 0);
}

// Recorded from the revised-solver branch-and-bound; re-pinned when the
// sparse-factorization engine with devex pricing landed (ff 177 → 203,
// dp 1037 → 523 — devex picks different LP vertices, and the adaptive
// refactorization cadence moves where exact recomputation lands, so
// branching explores a different tree). See the domains twin for the
// drift policy.
const PIN_FF_SEC2: u64 = 203;
const PIN_DP_FIG1A: u64 = 523;
