//! The analyzer's view of a heuristic-analysis problem: a black-box *gap
//! oracle* over a box-shaped input space.
//!
//! Both the exact MILP analyzers and the search analyzer expose the same
//! downstream interface, so the XPlain pipeline (subspace generation,
//! significance checking, explanation) is agnostic to how adversarial
//! inputs are found — exactly the role MetaOpt plays in the paper's Fig. 3.

use std::sync::Mutex;
use xplain_domains::sched::{lpt, SchedInstance};
use xplain_domains::te::{DemandPinning, TeLexSolver, TeProblem};
use xplain_domains::vbp::{first_fit, optimal, VbpInstance};

/// A heuristic-vs-benchmark gap function over a box input space.
///
/// `Send + Sync` because oracles are both shared across the explainer's
/// scoped sample threads and *moved* into the runtime's batch-executor
/// workers (`Box<dyn GapOracle>` built by a `Domain` factory on one
/// thread may run on another).
pub trait GapOracle: Send + Sync {
    /// Input dimensionality.
    fn dims(&self) -> usize;

    /// Per-dimension `[lo, hi]` bounds of the input space.
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// `benchmark(x) - heuristic(x)` (larger = worse for the heuristic).
    /// Implementations must be total on the box; invalid points should
    /// return `f64::NEG_INFINITY` rather than panic.
    fn gap(&self, x: &[f64]) -> f64;

    /// Human-readable dimension names (defaults to `x0..`).
    fn dim_names(&self) -> Vec<String> {
        (0..self.dims()).map(|d| format!("x{d}")).collect()
    }
}

/// References forward wholesale, so a borrowed `&dyn GapOracle` can be
/// boxed into an owning context (the analysis session holds
/// `Box<dyn GapOracle + 'a>`, which a plain reference satisfies through
/// this impl — no wrapper type needed).
impl<T: GapOracle + ?Sized> GapOracle for &T {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn bounds(&self) -> Vec<(f64, f64)> {
        (**self).bounds()
    }
    fn gap(&self, x: &[f64]) -> f64 {
        (**self).gap(x)
    }
    fn dim_names(&self) -> Vec<String> {
        (**self).dim_names()
    }
}

/// Demand Pinning gap oracle: input = demand volumes, gap = OPT − DP.
///
/// Every evaluation solves two max-flow LPs over the *same* problem
/// structure (the benchmark total and the heuristic's phase-2 residual
/// total — the gap needs no vertex, so the lexicographic refinement
/// stage is skipped), and the oracle keeps prepared [`TeLexSolver`]s:
/// the stage LPs are standardized once and every evaluation re-solves
/// them through rhs deltas on warm bases — no per-evaluation model
/// build. Solvers live in
/// a checkout stack so the explainer's sample threads each hold one for
/// the duration of an evaluation while the lock itself is only held to
/// pop/push; the stack grows to the peak number of concurrent callers
/// and stays warm from then on. Solutions are exact regardless of which
/// solver a call draws, so contention only costs time, never
/// determinism.
pub struct DpOracle {
    pub problem: TeProblem,
    pub heuristic: DemandPinning,
    solvers: Mutex<Vec<TeLexSolver>>,
}

impl DpOracle {
    pub fn new(problem: TeProblem, threshold: f64) -> Self {
        let solver = problem
            .lex_solver()
            .expect("max-flow LP of a validated TeProblem is well-formed");
        DpOracle {
            problem,
            heuristic: DemandPinning::new(threshold),
            solvers: Mutex::new(vec![solver]),
        }
    }

    /// Aggregate solver statistics accumulated by this oracle's solvers
    /// (checked-in solvers only — an evaluation in flight on another
    /// thread contributes once it returns its solver).
    pub fn solver_stats(&self) -> xplain_lp::SolverStats {
        let guard = match self.solvers.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut total = xplain_lp::SolverStats::default();
        for s in guard.iter() {
            total.absorb(&s.stats());
        }
        total
    }
}

impl GapOracle for DpOracle {
    fn dims(&self) -> usize {
        self.problem.num_demands()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, self.problem.demand_cap); self.dims()]
    }

    fn gap(&self, x: &[f64]) -> f64 {
        // Check a warm solver out of the stack (building one only when
        // every solver is in flight on another thread), evaluate, check
        // it back in. A poisoned stack (panicked sibling thread) still
        // holds valid warm bases — exactness does not depend on them.
        let checked_out = match self.solvers.lock() {
            Ok(mut guard) => guard.pop(),
            Err(poisoned) => poisoned.into_inner().pop(),
        };
        let mut solver = match checked_out {
            Some(solver) => solver,
            None => match self.problem.lex_solver() {
                Ok(solver) => solver,
                Err(_) => return f64::NEG_INFINITY,
            },
        };
        let gap = self
            .heuristic
            .gap_prepared(&self.problem, x, &mut solver)
            .unwrap_or(f64::NEG_INFINITY);
        match self.solvers.lock() {
            Ok(mut guard) => guard.push(solver),
            Err(poisoned) => poisoned.into_inner().push(solver),
        }
        gap
    }

    fn dim_names(&self) -> Vec<String> {
        (0..self.dims())
            .map(|k| format!("d[{}]", self.problem.demand_name(k)))
            .collect()
    }
}

/// First-fit bin packing gap oracle: input = ball sizes, gap = FF bins −
/// OPT bins (integer-valued).
pub struct FfOracle {
    pub n_balls: usize,
    pub bin_capacity: f64,
    /// Smallest admissible ball (the paper's examples use ≥ 1% of the bin).
    pub min_size: f64,
}

impl FfOracle {
    pub fn new(n_balls: usize) -> Self {
        FfOracle {
            n_balls,
            bin_capacity: 1.0,
            min_size: 0.01,
        }
    }
}

impl GapOracle for FfOracle {
    fn dims(&self) -> usize {
        self.n_balls
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(self.min_size, self.bin_capacity); self.n_balls]
    }

    fn gap(&self, x: &[f64]) -> f64 {
        if x.len() != self.n_balls
            || x.iter()
                .any(|&s| !s.is_finite() || s < 0.0 || s > self.bin_capacity + 1e-12)
        {
            return f64::NEG_INFINITY;
        }
        let inst = VbpInstance {
            bin_capacity: vec![self.bin_capacity],
            balls: x.iter().map(|&s| vec![s]).collect(),
        };
        let ff = first_fit(&inst).bins_used as f64;
        let opt = optimal(&inst).bins_used as f64;
        ff - opt
    }

    fn dim_names(&self) -> Vec<String> {
        (0..self.n_balls).map(|i| format!("B{i}")).collect()
    }
}

/// Makespan-scheduling gap oracle: input = job processing times, gap =
/// LPT makespan − optimal makespan.
pub struct SchedOracle {
    pub n_jobs: usize,
    pub n_machines: usize,
    /// Largest admissible processing time. The default (`2m − 1`) is the
    /// longest job of the Graham-tight family, so the adversarial pattern
    /// sits inside the box.
    pub p_max: f64,
}

impl SchedOracle {
    pub fn new(n_jobs: usize, n_machines: usize) -> Self {
        assert!(n_machines >= 1, "a scheduling oracle needs a machine");
        SchedOracle {
            n_jobs,
            n_machines,
            p_max: (2 * n_machines - 1) as f64,
        }
    }
}

impl GapOracle for SchedOracle {
    fn dims(&self) -> usize {
        self.n_jobs
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, self.p_max); self.n_jobs]
    }

    fn gap(&self, x: &[f64]) -> f64 {
        if x.len() != self.n_jobs
            || x.iter()
                .any(|&p| !p.is_finite() || p < 0.0 || p > self.p_max + 1e-12)
        {
            return f64::NEG_INFINITY;
        }
        let inst = SchedInstance::new(self.n_machines, x.to_vec());
        let h = lpt(&inst).makespan;
        let b = xplain_domains::sched::optimal(&inst).makespan;
        h - b
    }

    fn dim_names(&self) -> Vec<String> {
        (0..self.n_jobs).map(|i| format!("J{i}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_oracle_fig1a_point() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        assert_eq!(oracle.dims(), 3);
        assert_eq!(oracle.bounds()[0], (0.0, 100.0));
        let g = oracle.gap(&[50.0, 100.0, 100.0]);
        assert!((g - 100.0).abs() < 1e-6, "{g}");
        assert_eq!(oracle.dim_names()[0], "d[1~3]");
    }

    #[test]
    fn dp_oracle_zero_point() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        assert!(oracle.gap(&[0.0, 0.0, 0.0]).abs() < 1e-6);
    }

    #[test]
    fn ff_oracle_sec2_point() {
        let oracle = FfOracle::new(4);
        let g = oracle.gap(&[0.01, 0.49, 0.51, 0.51]);
        assert_eq!(g, 1.0);
    }

    #[test]
    fn ff_oracle_benign_point() {
        let oracle = FfOracle::new(4);
        assert_eq!(oracle.gap(&[0.5, 0.5, 0.5, 0.5]), 0.0);
    }

    #[test]
    fn ff_oracle_rejects_invalid() {
        let oracle = FfOracle::new(2);
        assert_eq!(oracle.gap(&[0.5]), f64::NEG_INFINITY);
        assert_eq!(oracle.gap(&[0.5, 1.5]), f64::NEG_INFINITY);
        assert_eq!(oracle.gap(&[0.5, f64::NAN]), f64::NEG_INFINITY);
    }

    #[test]
    fn sched_oracle_tight_point() {
        let oracle = SchedOracle::new(5, 2);
        assert_eq!(oracle.dims(), 5);
        assert_eq!(oracle.bounds()[0], (0.0, 3.0));
        // The Graham-tight instance: LPT 7 vs OPT 6.
        let g = oracle.gap(&[3.0, 3.0, 2.0, 2.0, 2.0]);
        assert!((g - 1.0).abs() < 1e-9, "{g}");
        assert_eq!(oracle.dim_names()[0], "J0");
    }

    #[test]
    fn sched_oracle_benign_point() {
        let oracle = SchedOracle::new(4, 2);
        // Perfectly pairable jobs: LPT is optimal.
        assert!(oracle.gap(&[3.0, 3.0, 1.0, 1.0]).abs() < 1e-9);
    }

    #[test]
    fn sched_oracle_rejects_invalid() {
        let oracle = SchedOracle::new(3, 2);
        assert_eq!(oracle.gap(&[1.0]), f64::NEG_INFINITY);
        assert_eq!(oracle.gap(&[1.0, 1.0, 9.0]), f64::NEG_INFINITY);
        assert_eq!(oracle.gap(&[1.0, 1.0, f64::NAN]), f64::NEG_INFINITY);
    }

    /// The satellite audit: oracles must move into executor worker
    /// threads, so trait objects have to be `Send` as well as `Sync`.
    #[test]
    fn oracles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpOracle>();
        assert_send_sync::<FfOracle>();
        assert_send_sync::<SchedOracle>();
        assert_send_sync::<Box<dyn GapOracle>>();
    }
}
