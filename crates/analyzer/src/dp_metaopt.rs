//! Exact adversarial analysis of Demand Pinning — the Fig. 1b encoding,
//! flattened to a single MILP.
//!
//! Mirrors MetaOpt's model line by line:
//!
//! * `OuterVar d_k` — demand variables, the adversarial input;
//! * `ForceToZeroIfLeq(d_k − f_p̂k, d_k, T)` — the pinning constraints,
//!   entering the heuristic's max-flow LP as big-M rows gated by the
//!   pinned indicator `p_k = 1[d_k <= T]`;
//! * `MaxFlow()` — the heuristic's inner LP, pinned to *optimality* via
//!   the KKT encoding of [`crate::bilevel`] (the heuristic appears with
//!   negative sign in the gap objective, so feasibility alone would let
//!   the outer problem under-drive it);
//! * the benchmark max-flow appears with positive sign, so primal
//!   feasibility suffices.
//!
//! The result maximizes `OPT(d) − DP(d)` exactly (up to indicator
//! tolerance), and supports the exclusion polytopes of XPlain's
//! iterate-and-exclude loop.

use crate::bilevel::{encode_inner_optimality, InnerLp, InnerRow, KktParams};
use crate::geometry::Polytope;
use crate::helpers::{indicator_leq, GadgetParams};
use crate::search::Adversarial;
use xplain_domains::te::{DemandPinning, TeProblem};
use xplain_lp::{milp, Cmp, LinExpr, LpError, Model, Sense, SessionPool, VarId, VarType};

/// Exact DP analyzer configuration.
#[derive(Debug, Clone)]
pub struct DpMetaOpt {
    pub problem: TeProblem,
    pub threshold: f64,
    pub gadget: GadgetParams,
    pub kkt: KktParams,
}

/// The constructed model plus handles into it.
#[derive(Debug, Clone)]
pub struct DpModel {
    pub model: Model,
    pub demand_vars: Vec<VarId>,
    pub pinned_vars: Vec<VarId>,
    pub heuristic_flows: Vec<Vec<VarId>>,
    pub optimal_flows: Vec<Vec<VarId>>,
}

impl DpMetaOpt {
    pub fn new(problem: TeProblem, threshold: f64) -> Self {
        let cap = problem.demand_cap;
        DpMetaOpt {
            problem,
            threshold,
            gadget: GadgetParams {
                eps: 1e-3,
                // Big-M for pinning: must dominate any |d - f| (≤ cap).
                big_m: 4.0 * cap,
            },
            kkt: KktParams {
                dual_bound: 64.0,
                slack_bound: 64.0 * cap,
                primal_bound: 4.0 * cap,
            },
        }
    }

    /// Build the single-level MILP (Fig. 1b + KKT flattening).
    pub fn build_model(&self, exclusions: &[Polytope]) -> DpModel {
        let p = &self.problem;
        let n = p.num_demands();
        let mut m = Model::new(Sense::Maximize);

        // OuterVar: the demand vector.
        let demand_vars: Vec<VarId> = (0..n)
            .map(|k| {
                m.add_var(
                    format!("d[{}]", p.demand_name(k)),
                    VarType::Continuous,
                    0.0,
                    p.demand_cap,
                )
            })
            .collect();

        // Pinned indicators: p_k = 1[d_k <= T].
        let pinned_vars: Vec<VarId> = (0..n)
            .map(|k| {
                indicator_leq(
                    &mut m,
                    format!("pin[{}]", p.demand_name(k)),
                    LinExpr::term(demand_vars[k], 1.0),
                    self.threshold,
                    self.gadget,
                )
            })
            .collect();

        // Heuristic flows.
        let heuristic_flows: Vec<Vec<VarId>> = (0..n)
            .map(|k| {
                (0..p.paths[k].len())
                    .map(|pp| {
                        m.add_var(
                            format!("fh[{}/{pp}]", p.demand_name(k)),
                            VarType::Continuous,
                            0.0,
                            self.kkt.primal_bound,
                        )
                    })
                    .collect()
            })
            .collect();

        // Inner LP rows: demand limits, link capacities, pinning.
        let mut rows: Vec<InnerRow> = Vec::new();
        let mut inner_vars = Vec::new();
        let mut inner_obj = Vec::new();
        for k in 0..n {
            for &v in &heuristic_flows[k] {
                inner_vars.push(v);
                inner_obj.push(1.0);
            }
            rows.push(InnerRow {
                name: format!("dem[{}]", p.demand_name(k)),
                coeffs: heuristic_flows[k].iter().map(|&v| (v, 1.0)).collect(),
                rhs: LinExpr::term(demand_vars[k], 1.0),
            });
        }
        for (l, link) in p.topology.links.iter().enumerate() {
            let mut coeffs = Vec::new();
            for (k, paths) in p.paths.iter().enumerate() {
                for (pp, path) in paths.iter().enumerate() {
                    if path.links.contains(&l) {
                        coeffs.push((heuristic_flows[k][pp], 1.0));
                    }
                }
            }
            if !coeffs.is_empty() {
                rows.push(InnerRow {
                    name: format!("cap[{}]", p.topology.link_name(l)),
                    coeffs,
                    rhs: LinExpr::constant(link.capacity),
                });
            }
        }
        // Pinning rows: f_sp >= d_k - M (1 - p_k), i.e.
        // -f_sp <= -d_k + M - M p_k.
        let big_m = self.gadget.big_m;
        for k in 0..n {
            let mut rhs = LinExpr::term(demand_vars[k], -1.0);
            rhs.add_constant(big_m);
            rhs.add_term(pinned_vars[k], -big_m);
            rows.push(InnerRow {
                name: format!("pin[{}]", p.demand_name(k)),
                coeffs: vec![(heuristic_flows[k][0], -1.0)],
                rhs,
            });
        }
        let inner = InnerLp {
            vars: inner_vars,
            objective: inner_obj,
            rows,
        };
        encode_inner_optimality(&mut m, "dp", &inner, self.kkt);

        // Benchmark flows: primal feasibility only.
        let optimal_flows: Vec<Vec<VarId>> = (0..n)
            .map(|k| {
                (0..p.paths[k].len())
                    .map(|pp| {
                        m.add_var(
                            format!("fo[{}/{pp}]", p.demand_name(k)),
                            VarType::Continuous,
                            0.0,
                            self.kkt.primal_bound,
                        )
                    })
                    .collect()
            })
            .collect();
        for k in 0..n {
            m.add_constr(
                format!("opt_dem[{}]", p.demand_name(k)),
                LinExpr::sum(optimal_flows[k].iter().copied()) - LinExpr::term(demand_vars[k], 1.0),
                Cmp::Le,
                0.0,
            );
        }
        for (l, link) in p.topology.links.iter().enumerate() {
            let mut e = LinExpr::new();
            for (k, paths) in p.paths.iter().enumerate() {
                for (pp, path) in paths.iter().enumerate() {
                    if path.links.contains(&l) {
                        e.add_term(optimal_flows[k][pp], 1.0);
                    }
                }
            }
            if !e.is_empty() {
                m.add_constr(
                    format!("opt_cap[{}]", p.topology.link_name(l)),
                    e,
                    Cmp::Le,
                    link.capacity,
                );
            }
        }

        // Exclusion polytopes: the input must violate at least one
        // half-space of every excluded region.
        add_exclusions(
            &mut m,
            &demand_vars,
            exclusions,
            p.demand_cap,
            self.gadget.eps,
        );

        // Objective: the performance gap.
        let mut obj = LinExpr::new();
        for k in 0..n {
            for &v in &optimal_flows[k] {
                obj.add_term(v, 1.0);
            }
            for &v in &heuristic_flows[k] {
                obj.add_term(v, -1.0);
            }
        }
        m.set_objective(obj);

        DpModel {
            model: m,
            demand_vars,
            pinned_vars,
            heuristic_flows,
            optimal_flows,
        }
    }

    /// Solve for the adversarial demand vector.
    pub fn find_adversarial(&self, exclusions: &[Polytope]) -> Result<Adversarial, LpError> {
        let mut pool = SessionPool::new();
        self.find_adversarial_pooled(exclusions, &mut pool)
    }

    /// [`DpMetaOpt::find_adversarial`] through a caller-owned session
    /// pool: the iterate-and-exclude loop re-solves near-identical MILPs
    /// (each exclusion adds rows), and within one exclusion count every
    /// branch-and-bound node shares the pooled warm basis.
    pub fn find_adversarial_pooled(
        &self,
        exclusions: &[Polytope],
        pool: &mut SessionPool,
    ) -> Result<Adversarial, LpError> {
        let built = self.build_model(exclusions);
        let (sol, _stats) = milp::solve_pooled(&built.model, pool)?;
        let input: Vec<f64> = built.demand_vars.iter().map(|&v| sol.value(v)).collect();
        Ok(Adversarial {
            gap: sol.objective,
            input,
        })
    }

    /// Recompute the gap at `input` by direct simulation (sanity check for
    /// the MILP encoding).
    pub fn simulate_gap(&self, input: &[f64]) -> f64 {
        DemandPinning::new(self.threshold)
            .gap(&self.problem, input)
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// Shared exclusion encoding: for each polytope, at least one half-space
/// must be violated by margin `eps`.
pub(crate) fn add_exclusions(
    m: &mut Model,
    input_vars: &[VarId],
    exclusions: &[Polytope],
    input_scale: f64,
    eps: f64,
) {
    for (b, poly) in exclusions.iter().enumerate() {
        if poly.halfspaces.is_empty() {
            continue;
        }
        let mut violated = Vec::with_capacity(poly.halfspaces.len());
        for (h_ix, h) in poly.halfspaces.iter().enumerate() {
            let o = m.add_binary(format!("excl[{b}/{h_ix}]"));
            // o = 1 -> a·x >= rhs + eps:  a·x >= rhs + eps - M(1-o)
            let norm: f64 = h.coeffs.iter().map(|c| c.abs()).sum::<f64>();
            let big = norm * input_scale + h.rhs.abs() + eps + 1.0;
            let mut e = LinExpr::new();
            for (d, &c) in h.coeffs.iter().enumerate() {
                if let Some(&v) = input_vars.get(d) {
                    e.add_term(v, c);
                }
            }
            e.add_term(o, -big);
            m.add_constr(
                format!("excl_hs[{b}/{h_ix}]"),
                e,
                Cmp::Ge,
                h.rhs + eps - big,
            );
            violated.push(o);
        }
        m.add_constr(
            format!("excl_any[{b}]"),
            LinExpr::sum(violated),
            Cmp::Ge,
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact analyzer must find the Fig. 1a gap of 100 and agree with
    /// the simulation at its own adversarial point.
    #[test]
    fn finds_the_fig1a_gap_exactly() {
        let analyzer = DpMetaOpt::new(TeProblem::fig1a(), 50.0);
        let adv = analyzer.find_adversarial(&[]).expect("solvable");
        assert!(
            (adv.gap - 100.0).abs() < 1.0,
            "expected gap 100, got {}",
            adv.gap
        );
        let sim = analyzer.simulate_gap(&adv.input);
        assert!(
            (sim - adv.gap).abs() < 1.0,
            "model gap {} vs simulated {}",
            adv.gap,
            sim
        );
        // The pinnable demand sits at/below the threshold.
        assert!(adv.input[0] <= 50.0 + 1e-6, "{:?}", adv.input);
    }

    #[test]
    fn zero_threshold_means_zero_gap() {
        // With T = 0 nothing (except zero demands) is pinned: DP == OPT.
        let analyzer = DpMetaOpt::new(TeProblem::fig1a(), 0.0);
        let adv = analyzer.find_adversarial(&[]).expect("solvable");
        assert!(adv.gap < 1.0, "gap should vanish, got {}", adv.gap);
    }

    #[test]
    fn exclusion_forces_different_region() {
        let analyzer = DpMetaOpt::new(TeProblem::fig1a(), 50.0);
        let first = analyzer.find_adversarial(&[]).unwrap();
        // Exclude a generous box around the first adversarial input.
        let lo: Vec<f64> = first.input.iter().map(|v| (v - 20.0).max(0.0)).collect();
        let hi: Vec<f64> = first.input.iter().map(|v| (v + 20.0).min(100.0)).collect();
        let excl = Polytope::from_box(&lo, &hi);
        let second = analyzer
            .find_adversarial(std::slice::from_ref(&excl))
            .unwrap();
        assert!(
            !excl.contains(&second.input, 1e-6),
            "second point {:?} still inside exclusion",
            second.input
        );
        // Gap outside the best region can't beat the global optimum.
        assert!(second.gap <= first.gap + 1.0);
    }
}
