//! Exact adversarial analysis of first-fit bin packing — the Fig. 1c
//! encoding.
//!
//! FF is a deterministic *function* of the ball sizes, so — unlike DP's
//! max-flow — it needs no KKT rewriting: the Fig. 1c constraint system
//! (`r`, `f = AllLeq`, `γ = AllEq`, `α = AND`, `IfThenElse`) pins the
//! heuristic's decisions uniquely. The benchmark (optimal packing)
//! appears with negative sign in the gap, and since it is a minimization,
//! primal feasibility of *some* packing suffices — maximizing the gap
//! drives it to the true optimum.
//!
//! The §2 setting: one-dimensional balls, `n_bins` equal bins; MetaOpt
//! "produces the adversarial ball sizes 1%, 49%, 51%, 51% … for an example
//! with 4 balls and 3 equal-sized bins".

use crate::dp_metaopt::add_exclusions;
use crate::geometry::Polytope;
use crate::helpers::{all_eq, all_leq, and, if_then_else, GadgetParams};
use crate::search::Adversarial;
use xplain_domains::vbp::{first_fit, optimal, VbpInstance};
use xplain_lp::{milp, Cmp, LinExpr, LpError, Model, Sense, SessionPool, VarId, VarType};

/// Exact FF analyzer configuration.
#[derive(Debug, Clone)]
pub struct FfMetaOpt {
    pub n_balls: usize,
    pub n_bins: usize,
    pub capacity: f64,
    /// Smallest admissible ball size (1% of the bin in the paper).
    pub min_size: f64,
    pub gadget: GadgetParams,
}

/// Handles into the constructed model.
#[derive(Debug, Clone)]
pub struct FfModel {
    pub model: Model,
    pub size_vars: Vec<VarId>,
    /// `x[i][j]` — flow of ball `i` into bin `j` (only `j <= i` exist).
    pub x_vars: Vec<Vec<VarId>>,
    /// `alpha[i][j]` — FF places ball `i` in bin `j`.
    pub alpha_vars: Vec<Vec<VarId>>,
    pub ff_used: Vec<VarId>,
    pub opt_used: Vec<VarId>,
}

impl FfMetaOpt {
    /// The paper's §2 instance shape: 4 balls, 3 unit bins, 1% minimum.
    pub fn sec2() -> Self {
        FfMetaOpt::new(4, 3)
    }

    pub fn new(n_balls: usize, n_bins: usize) -> Self {
        FfMetaOpt {
            n_balls,
            n_bins,
            capacity: 1.0,
            min_size: 0.01,
            gadget: GadgetParams {
                eps: 5e-3,
                big_m: 4.0,
            },
        }
    }

    /// Bins ball `i` may use under the `j <= i` symmetry/feasibility cut.
    fn bins_for(&self, i: usize) -> usize {
        self.n_bins.min(i + 1)
    }

    /// Build the gap-maximization MILP.
    pub fn build_model(&self, exclusions: &[Polytope]) -> FfModel {
        let g = self.gadget;
        let cap = self.capacity;
        let mut m = Model::new(Sense::Maximize);

        // OuterVar Y: ball sizes.
        let size_vars: Vec<VarId> = (0..self.n_balls)
            .map(|i| m.add_var(format!("Y[{i}]"), VarType::Continuous, self.min_size, cap))
            .collect();

        // --- Heuristic (FF) side: Fig. 1c verbatim -----------------------
        let mut x_vars: Vec<Vec<VarId>> = Vec::with_capacity(self.n_balls);
        let mut alpha_vars: Vec<Vec<VarId>> = Vec::with_capacity(self.n_balls);
        for i in 0..self.n_balls {
            let nj = self.bins_for(i);
            let xs: Vec<VarId> = (0..nj)
                .map(|j| m.add_var(format!("x[{i},{j}]"), VarType::Continuous, 0.0, cap))
                .collect();
            let mut alphas = Vec::with_capacity(nj);
            for j in 0..nj {
                // r_ij = C - Y_i - Σ_{u<i, j<=u bins} x_uj
                // fits f_ij = AllLeq([-r_ij], 0) = 1[Y_i + Σ x_uj - C <= 0]
                let mut load = LinExpr::term(size_vars[i], 1.0);
                for (u, xu) in x_vars.iter().enumerate().take(i) {
                    if j < self.bins_for(u) {
                        load.add_term(xu[j], 1.0);
                    }
                }
                let fits = all_leq(&mut m, format!("fits[{i},{j}]"), &[load - cap], 0.0, g);
                // γ_ij = AllEq([x_ik]_{k<j}, 0): not placed earlier.
                let earlier: Vec<LinExpr> = (0..j).map(|k| LinExpr::term(xs[k], 1.0)).collect();
                let alpha = if earlier.is_empty() {
                    fits // first bin: α = fits
                } else {
                    let gamma = all_eq(&mut m, format!("gamma[{i},{j}]"), &earlier, 0.0, g);
                    and(&mut m, format!("alpha[{i},{j}]"), &[fits, gamma])
                };
                // IfThenElse(α, x_ij = Y_i, x_ij = 0).
                if_then_else(
                    &mut m,
                    format!("place[{i},{j}]"),
                    alpha,
                    &[(xs[j], LinExpr::term(size_vars[i], 1.0))],
                    &[(xs[j], LinExpr::constant(0.0))],
                    g,
                );
                alphas.push(alpha);
            }
            // FF must place every ball (enough bins by construction).
            m.add_constr(
                format!("placed[{i}]"),
                LinExpr::sum(alphas.iter().copied()),
                Cmp::Eq,
                1.0,
            );
            x_vars.push(xs);
            alpha_vars.push(alphas);
        }

        // FF bin-used indicators.
        let ff_used: Vec<VarId> = (0..self.n_bins)
            .map(|j| m.add_binary(format!("ff_used[{j}]")))
            .collect();
        for j in 0..self.n_bins {
            let mut any = LinExpr::new();
            for (i, alphas) in alpha_vars.iter().enumerate() {
                if j < self.bins_for(i) {
                    m.add_constr(
                        format!("ff_used_ge[{j}/{i}]"),
                        LinExpr::term(alpha_vars[i][j], 1.0) - ff_used[j],
                        Cmp::Le,
                        0.0,
                    );
                    any.add_term(alphas[j], 1.0);
                }
            }
            any.add_term(ff_used[j], -1.0);
            m.add_constr(format!("ff_used_le[{j}]"), any, Cmp::Ge, 0.0);
        }

        // --- Benchmark (optimal packing) side ----------------------------
        // o[i][j] assignment binaries with the same j <= i cut,
        // w[i][j] = Y_i * o[i][j] McCormick-linearized.
        let mut o_vars: Vec<Vec<VarId>> = Vec::with_capacity(self.n_balls);
        let mut w_vars: Vec<Vec<VarId>> = Vec::with_capacity(self.n_balls);
        for i in 0..self.n_balls {
            let nj = self.bins_for(i);
            let os: Vec<VarId> = (0..nj)
                .map(|j| m.add_binary(format!("o[{i},{j}]")))
                .collect();
            let ws: Vec<VarId> = (0..nj)
                .map(|j| m.add_var(format!("w[{i},{j}]"), VarType::Continuous, 0.0, cap))
                .collect();
            m.add_constr(
                format!("opt_place[{i}]"),
                LinExpr::sum(os.iter().copied()),
                Cmp::Eq,
                1.0,
            );
            for j in 0..nj {
                // w = Y * o: w <= C o; w <= Y; w >= Y - C(1 - o); w >= 0.
                m.add_constr(
                    format!("mc1[{i},{j}]"),
                    LinExpr::term(ws[j], 1.0) - LinExpr::term(os[j], cap),
                    Cmp::Le,
                    0.0,
                );
                m.add_constr(
                    format!("mc2[{i},{j}]"),
                    LinExpr::term(ws[j], 1.0) - size_vars[i],
                    Cmp::Le,
                    0.0,
                );
                m.add_constr(
                    format!("mc3[{i},{j}]"),
                    LinExpr::term(ws[j], 1.0) - size_vars[i] - LinExpr::term(os[j], cap),
                    Cmp::Ge,
                    -cap,
                );
            }
            o_vars.push(os);
            w_vars.push(ws);
        }
        let opt_used: Vec<VarId> = (0..self.n_bins)
            .map(|j| m.add_binary(format!("opt_used[{j}]")))
            .collect();
        for j in 0..self.n_bins {
            let mut load = LinExpr::new();
            for i in 0..self.n_balls {
                if j < self.bins_for(i) {
                    load.add_term(w_vars[i][j], 1.0);
                    m.add_constr(
                        format!("opt_used_ge[{j}/{i}]"),
                        LinExpr::term(o_vars[i][j], 1.0) - opt_used[j],
                        Cmp::Le,
                        0.0,
                    );
                }
            }
            m.add_constr(format!("opt_cap[{j}]"), load, Cmp::Le, cap);
            // Symmetry: used bins are contiguous.
            if j + 1 < self.n_bins {
                m.add_constr(
                    format!("opt_sym[{j}]"),
                    LinExpr::term(opt_used[j + 1], 1.0) - opt_used[j],
                    Cmp::Le,
                    0.0,
                );
            }
        }

        add_exclusions(&mut m, &size_vars, exclusions, cap, g.eps);

        // Objective: FF bins − OPT bins.
        let mut obj = LinExpr::new();
        for &u in &ff_used {
            obj.add_term(u, 1.0);
        }
        for &v in &opt_used {
            obj.add_term(v, -1.0);
        }
        m.set_objective(obj);

        FfModel {
            model: m,
            size_vars,
            x_vars,
            alpha_vars,
            ff_used,
            opt_used,
        }
    }

    /// Solve for the adversarial ball sizes.
    pub fn find_adversarial(&self, exclusions: &[Polytope]) -> Result<Adversarial, LpError> {
        let mut pool = SessionPool::new();
        self.find_adversarial_pooled(exclusions, &mut pool)
    }

    /// [`FfMetaOpt::find_adversarial`] through a caller-owned session
    /// pool (see [`crate::DpMetaOpt::find_adversarial_pooled`]).
    pub fn find_adversarial_pooled(
        &self,
        exclusions: &[Polytope],
        pool: &mut SessionPool,
    ) -> Result<Adversarial, LpError> {
        let built = self.build_model(exclusions);
        let (sol, _stats) = milp::solve_pooled(&built.model, pool)?;
        let input: Vec<f64> = built.size_vars.iter().map(|&v| sol.value(v)).collect();
        Ok(Adversarial {
            gap: sol.objective,
            input,
        })
    }

    /// Recompute the gap at `input` by direct simulation.
    pub fn simulate_gap(&self, input: &[f64]) -> f64 {
        let inst = VbpInstance {
            bin_capacity: vec![self.capacity],
            balls: input.iter().map(|&s| vec![s]).collect(),
        };
        first_fit(&inst).bins_used as f64 - optimal(&inst).bins_used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2's exact result: 4 balls / 3 bins — MetaOpt finds a gap of 1 bin
    /// (FF 3, OPT 2) with the small-filler pattern.
    #[test]
    fn sec2_gap_of_one_bin() {
        let analyzer = FfMetaOpt::sec2();
        let adv = analyzer.find_adversarial(&[]).expect("solvable");
        assert!(
            (adv.gap - 1.0).abs() < 1e-6,
            "expected gap 1 bin, got {}",
            adv.gap
        );
        // The MILP's decisions must match the real heuristic at its own
        // adversarial point (up to indicator-tolerance boundary cases).
        let sim = analyzer.simulate_gap(&adv.input);
        assert!(
            (sim - adv.gap).abs() < 0.5,
            "model gap {} vs simulated {} at {:?}",
            adv.gap,
            sim,
            adv.input
        );
    }

    #[test]
    fn two_balls_cannot_gap() {
        // With 2 balls, FF is optimal (any pair either shares or can't).
        let analyzer = FfMetaOpt::new(2, 2);
        let adv = analyzer.find_adversarial(&[]).expect("solvable");
        assert!(adv.gap < 0.5, "gap should be 0, got {}", adv.gap);
    }

    #[test]
    fn exclusion_respected() {
        let analyzer = FfMetaOpt::sec2();
        let first = analyzer.find_adversarial(&[]).unwrap();
        let lo: Vec<f64> = first.input.iter().map(|v| (v - 0.05).max(0.0)).collect();
        let hi: Vec<f64> = first.input.iter().map(|v| (v + 0.05).min(1.0)).collect();
        let excl = Polytope::from_box(&lo, &hi);
        if let Ok(second) = analyzer.find_adversarial(std::slice::from_ref(&excl)) {
            assert!(
                !excl.contains(&second.input, 1e-9),
                "{:?} inside exclusion",
                second.input
            );
        }
    }
}
