//! Input-space geometry: half-spaces, polytopes, and boxes.
//!
//! Adversarial subspaces are reported exactly in the paper's Fig. 5c form:
//! a box `A x <= C` (with `A = [I; -I]`) intersected with the regression
//! tree's path predicates `T x <= V`. Both pieces are just half-space
//! systems, so one [`Polytope`] type carries them through the pipeline —
//! and doubles as the exclusion region handed back to the analyzer for
//! step (3) of §5.2.

use serde::{Deserialize, Serialize};

/// A single half-space `coeffs · x <= rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Halfspace {
    pub coeffs: Vec<f64>,
    pub rhs: f64,
}

impl Halfspace {
    /// `x_dim <= rhs`
    pub fn upper(dims: usize, dim: usize, rhs: f64) -> Self {
        let mut coeffs = vec![0.0; dims];
        coeffs[dim] = 1.0;
        Halfspace { coeffs, rhs }
    }

    /// `x_dim >= lo`, stored as `-x_dim <= -lo`.
    pub fn lower(dims: usize, dim: usize, lo: f64) -> Self {
        let mut coeffs = vec![0.0; dims];
        coeffs[dim] = -1.0;
        Halfspace { coeffs, rhs: -lo }
    }

    /// Does `x` satisfy the half-space (within `tol`)?
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        let lhs: f64 = self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum();
        lhs <= self.rhs + tol
    }
}

/// An intersection of half-spaces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Polytope {
    pub halfspaces: Vec<Halfspace>,
}

impl Polytope {
    /// The axis-aligned box `[lo_i, hi_i]` as `[I; -I] x <= [hi; -lo]`
    /// (exactly Fig. 5c's `A` matrix layout: uppers first, then lowers).
    pub fn from_box(lo: &[f64], hi: &[f64]) -> Self {
        let dims = lo.len();
        let mut halfspaces = Vec::with_capacity(2 * dims);
        for d in 0..dims {
            halfspaces.push(Halfspace::upper(dims, d, hi[d]));
        }
        for d in 0..dims {
            halfspaces.push(Halfspace::lower(dims, d, lo[d]));
        }
        Polytope { halfspaces }
    }

    /// Add a half-space in place.
    pub fn intersect(&mut self, h: Halfspace) {
        self.halfspaces.push(h);
    }

    /// Membership test.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        self.halfspaces.iter().all(|h| h.contains(x, tol))
    }

    /// The tightest axis-aligned bounding box implied by the *axis-aligned*
    /// half-spaces (general half-spaces are ignored for the bound).
    /// Returns `(lo, hi)` clipped to the provided outer bounds.
    pub fn bounding_box(&self, outer_lo: &[f64], outer_hi: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let dims = outer_lo.len();
        let mut lo = outer_lo.to_vec();
        let mut hi = outer_hi.to_vec();
        for h in &self.halfspaces {
            let nonzero: Vec<usize> = (0..h.coeffs.len().min(dims))
                .filter(|&d| h.coeffs[d].abs() > 1e-12)
                .collect();
            if nonzero.len() != 1 {
                continue;
            }
            let d = nonzero[0];
            let c = h.coeffs[d];
            if c > 0.0 {
                hi[d] = hi[d].min(h.rhs / c);
            } else {
                lo[d] = lo[d].max(h.rhs / c);
            }
        }
        (lo, hi)
    }

    /// Pretty-print in the `A x <= c` style of Fig. 5c.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        for h in &self.halfspaces {
            let mut terms: Vec<String> = Vec::new();
            for (d, &c) in h.coeffs.iter().enumerate() {
                if c.abs() < 1e-12 {
                    continue;
                }
                let name = names.get(d).cloned().unwrap_or_else(|| format!("x{d}"));
                if (c - 1.0).abs() < 1e-12 {
                    terms.push(name);
                } else if (c + 1.0).abs() < 1e-12 {
                    terms.push(format!("-{name}"));
                } else {
                    terms.push(format!("{c:.4}*{name}"));
                }
            }
            let lhs = if terms.is_empty() {
                "0".to_string()
            } else {
                terms.join(" + ")
            };
            // Normalize -0.0 so rendered bounds read naturally.
            let rhs = if h.rhs == 0.0 { 0.0 } else { h.rhs };
            out.push_str(&format!("  {lhs} <= {rhs:.4}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_membership() {
        let p = Polytope::from_box(&[0.0, 1.0], &[2.0, 3.0]);
        assert!(p.contains(&[1.0, 2.0], 0.0));
        assert!(p.contains(&[0.0, 1.0], 0.0)); // corner
        assert!(!p.contains(&[2.5, 2.0], 0.0));
        assert!(!p.contains(&[1.0, 0.5], 0.0));
    }

    #[test]
    fn general_halfspace() {
        // x + y <= 1.5 inside the unit box.
        let mut p = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
        p.intersect(Halfspace {
            coeffs: vec![1.0, 1.0],
            rhs: 1.5,
        });
        assert!(p.contains(&[0.7, 0.7], 0.0));
        assert!(!p.contains(&[0.9, 0.9], 0.0));
    }

    #[test]
    fn bounding_box_from_mixed_halfspaces() {
        let mut p = Polytope::from_box(&[0.0, 0.0], &[10.0, 10.0]);
        p.intersect(Halfspace::upper(2, 0, 4.0));
        p.intersect(Halfspace::lower(2, 1, 2.0));
        p.intersect(Halfspace {
            coeffs: vec![1.0, 1.0],
            rhs: 100.0,
        }); // non-axis-aligned: ignored by the bound
        let (lo, hi) = p.bounding_box(&[0.0, 0.0], &[10.0, 10.0]);
        assert_eq!(lo, vec![0.0, 2.0]);
        assert_eq!(hi, vec![4.0, 10.0]);
    }

    #[test]
    fn render_uses_names() {
        let p = Polytope::from_box(&[0.0], &[1.0]);
        let s = p.render(&["B0".to_string()]);
        assert!(s.contains("B0 <= 1.0000"), "{s}");
        assert!(s.contains("-B0 <= 0.0000"), "{s}");
    }

    #[test]
    fn tolerance_respected() {
        let p = Polytope::from_box(&[0.0], &[1.0]);
        assert!(p.contains(&[1.0 + 1e-9], 1e-6));
        assert!(!p.contains(&[1.0 + 1e-3], 1e-6));
    }
}
