//! MetaOpt-style modeling helpers.
//!
//! §2 notes that MetaOpt "provided a number of helper functions that allow
//! operators to model \[heuristics\] more easily" — Fig. 1b/1c use
//! `ForceToZeroIfLeq`, `AllLeq`, `AllEq`, `AND` and `IfThenElse`. These are
//! the standard big-M indicator gadgets; implementing them verbatim lets
//! the hand-written DP/FF encodings in this crate mirror the paper's
//! figures line by line (and gives E6 its "hand-written MetaOpt model"
//! baseline).

use xplain_lp::{Cmp, LinExpr, Model, VarId};

/// Tolerances for indicator gadgets.
#[derive(Debug, Clone, Copy)]
pub struct GadgetParams {
    /// Strictness margin: `b = 0` forces `expr >= rhs + eps`.
    pub eps: f64,
    /// Big-M used to relax the inactive side.
    pub big_m: f64,
}

impl Default for GadgetParams {
    fn default() -> Self {
        GadgetParams {
            eps: 1e-3,
            big_m: 1e4,
        }
    }
}

/// Binary `b = 1[expr <= rhs]`.
///
/// `b = 1 -> expr <= rhs` and `b = 0 -> expr >= rhs + eps`; inputs in the
/// open gap `(rhs, rhs + eps)` may take either value — pick `eps` below the
/// problem's input granularity.
pub fn indicator_leq(
    m: &mut Model,
    name: impl Into<String>,
    expr: LinExpr,
    rhs: f64,
    p: GadgetParams,
) -> VarId {
    let name = name.into();
    let b = m.add_binary(format!("ind[{name}]"));
    // expr <= rhs + M(1 - b)
    m.add_constr(
        format!("ind_up[{name}]"),
        expr.clone() + LinExpr::term(b, p.big_m),
        Cmp::Le,
        rhs + p.big_m,
    );
    // expr >= rhs + eps - M b
    m.add_constr(
        format!("ind_dn[{name}]"),
        expr + LinExpr::term(b, p.big_m),
        Cmp::Ge,
        rhs + p.eps,
    );
    b
}

/// Binary `b = 1[expr >= rhs]` (mirror of [`indicator_leq`]).
pub fn indicator_geq(
    m: &mut Model,
    name: impl Into<String>,
    expr: LinExpr,
    rhs: f64,
    p: GadgetParams,
) -> VarId {
    indicator_leq(m, name, -expr, -rhs, p)
}

/// `ForceToZeroIfLeq(zero_expr, cond_expr, threshold)` (Fig. 1b): when
/// `cond_expr <= threshold`, force `zero_expr = 0`. Returns the condition
/// indicator binary (DP's "pinned" flag).
pub fn force_to_zero_if_leq(
    m: &mut Model,
    name: impl Into<String>,
    zero_expr: LinExpr,
    cond_expr: LinExpr,
    threshold: f64,
    p: GadgetParams,
) -> VarId {
    let name = name.into();
    let b = indicator_leq(m, format!("cond[{name}]"), cond_expr, threshold, p);
    // b = 1 -> zero_expr in [-M(1-b), M(1-b)] = [0, 0].
    m.add_constr(
        format!("zero_up[{name}]"),
        zero_expr.clone() + LinExpr::term(b, p.big_m),
        Cmp::Le,
        p.big_m,
    );
    m.add_constr(
        format!("zero_dn[{name}]"),
        zero_expr - LinExpr::term(b, p.big_m),
        Cmp::Ge,
        -p.big_m,
    );
    b
}

/// `AND` of binaries: `b = min(bits)`.
pub fn and(m: &mut Model, name: impl Into<String>, bits: &[VarId]) -> VarId {
    let name = name.into();
    let b = m.add_binary(format!("and[{name}]"));
    for (i, &bit) in bits.iter().enumerate() {
        m.add_constr(
            format!("and_le[{name}/{i}]"),
            LinExpr::term(b, 1.0) - bit,
            Cmp::Le,
            0.0,
        );
    }
    let mut sum = LinExpr::term(b, -1.0);
    for &bit in bits {
        sum.add_term(bit, 1.0);
    }
    // b >= sum(bits) - (n - 1)
    m.add_constr(
        format!("and_ge[{name}]"),
        sum,
        Cmp::Le,
        bits.len().saturating_sub(1) as f64,
    );
    b
}

/// `OR` of binaries: `b = max(bits)`.
pub fn or(m: &mut Model, name: impl Into<String>, bits: &[VarId]) -> VarId {
    let name = name.into();
    let b = m.add_binary(format!("or[{name}]"));
    for (i, &bit) in bits.iter().enumerate() {
        m.add_constr(
            format!("or_ge[{name}/{i}]"),
            LinExpr::term(bit, 1.0) - b,
            Cmp::Le,
            0.0,
        );
    }
    let mut sum = LinExpr::term(b, 1.0);
    for &bit in bits {
        sum.add_term(bit, -1.0);
    }
    m.add_constr(format!("or_le[{name}]"), sum, Cmp::Le, 0.0);
    b
}

/// `AllLeq(exprs, rhs)` (Fig. 1c): binary that is 1 iff **every**
/// expression is `<= rhs`.
pub fn all_leq(
    m: &mut Model,
    name: impl Into<String>,
    exprs: &[LinExpr],
    rhs: f64,
    p: GadgetParams,
) -> VarId {
    let name = name.into();
    if exprs.is_empty() {
        // Vacuously true: a binary fixed to 1.
        let b = m.add_binary(format!("true[{name}]"));
        m.fix(format!("fix_true[{name}]"), b, 1.0);
        return b;
    }
    let bits: Vec<VarId> = exprs
        .iter()
        .enumerate()
        .map(|(i, e)| indicator_leq(m, format!("{name}/{i}"), e.clone(), rhs, p))
        .collect();
    and(m, name, &bits)
}

/// `AllEq(exprs, rhs)` (Fig. 1c): binary that is 1 iff every expression
/// equals `rhs` (within the gadget tolerance).
pub fn all_eq(
    m: &mut Model,
    name: impl Into<String>,
    exprs: &[LinExpr],
    rhs: f64,
    p: GadgetParams,
) -> VarId {
    let name = name.into();
    if exprs.is_empty() {
        let b = m.add_binary(format!("true[{name}]"));
        m.fix(format!("fix_true[{name}]"), b, 1.0);
        return b;
    }
    let mut bits = Vec::with_capacity(exprs.len() * 2);
    for (i, e) in exprs.iter().enumerate() {
        bits.push(indicator_leq(m, format!("{name}/le{i}"), e.clone(), rhs, p));
        bits.push(indicator_geq(m, format!("{name}/ge{i}"), e.clone(), rhs, p));
    }
    and(m, name, &bits)
}

/// `IfThenElse(cond, [(var, then)], [(var, else)])` (Fig. 1c): when `cond`
/// is 1 each `var` equals its `then` expression, otherwise its `else`
/// expression.
pub fn if_then_else(
    m: &mut Model,
    name: impl Into<String>,
    cond: VarId,
    then_bindings: &[(VarId, LinExpr)],
    else_bindings: &[(VarId, LinExpr)],
    p: GadgetParams,
) {
    let name = name.into();
    for (i, (var, expr)) in then_bindings.iter().enumerate() {
        // cond = 1 -> var = expr  (|var - expr| <= M(1 - cond))
        let diff = LinExpr::term(*var, 1.0) - expr.clone();
        m.add_constr(
            format!("ite_t_up[{name}/{i}]"),
            diff.clone() + LinExpr::term(cond, p.big_m),
            Cmp::Le,
            p.big_m,
        );
        m.add_constr(
            format!("ite_t_dn[{name}/{i}]"),
            diff - LinExpr::term(cond, p.big_m),
            Cmp::Ge,
            -p.big_m,
        );
    }
    for (i, (var, expr)) in else_bindings.iter().enumerate() {
        // cond = 0 -> var = expr  (|var - expr| <= M cond)
        let diff = LinExpr::term(*var, 1.0) - expr.clone();
        m.add_constr(
            format!("ite_e_up[{name}/{i}]"),
            diff.clone() - LinExpr::term(cond, p.big_m),
            Cmp::Le,
            0.0,
        );
        m.add_constr(
            format!("ite_e_dn[{name}/{i}]"),
            diff + LinExpr::term(cond, p.big_m),
            Cmp::Ge,
            0.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_lp::{Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    const P: GadgetParams = GadgetParams {
        eps: 1e-3,
        big_m: 1e3,
    };

    #[test]
    fn indicator_leq_tracks_condition() {
        // x fixed below threshold -> b must be 1; above -> 0.
        for (x_val, expect) in [(2.0, 1.0), (7.0, 0.0)] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", VarType::Continuous, x_val, x_val);
            let b = indicator_leq(&mut m, "t", LinExpr::term(x, 1.0), 5.0, P);
            // Maximize b to probe the upper feasibility; minimize via -b too.
            m.set_objective(LinExpr::term(b, 1.0));
            let hi = m.solve().unwrap().value(b);
            m.set_objective(LinExpr::term(b, -1.0));
            let lo = m.solve().unwrap().value(b);
            assert_close(hi, expect);
            assert_close(lo, expect);
        }
    }

    #[test]
    fn force_to_zero_pins_when_leq() {
        // d = 3 <= T = 5: zero_expr = d - f must be 0 -> f = 3.
        let mut m = Model::new(Sense::Maximize);
        let d = m.add_var("d", VarType::Continuous, 3.0, 3.0);
        let f = m.add_var("f", VarType::Continuous, 0.0, 10.0);
        force_to_zero_if_leq(&mut m, "pin", d - f, LinExpr::term(d, 1.0), 5.0, P);
        m.set_objective(LinExpr::term(f, -1.0)); // try to keep f at 0
        let sol = m.solve().unwrap();
        assert_close(sol.value(f), 3.0);
    }

    #[test]
    fn force_to_zero_releases_when_above() {
        let mut m = Model::new(Sense::Maximize);
        let d = m.add_var("d", VarType::Continuous, 8.0, 8.0);
        let f = m.add_var("f", VarType::Continuous, 0.0, 10.0);
        force_to_zero_if_leq(&mut m, "pin", d - f, LinExpr::term(d, 1.0), 5.0, P);
        m.set_objective(LinExpr::term(f, -1.0));
        let sol = m.solve().unwrap();
        assert_close(sol.value(f), 0.0); // free to stay at zero
    }

    #[test]
    fn and_or_truth_tables() {
        for bits in [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] {
            let mut m = Model::new(Sense::Maximize);
            let a = m.add_var("a", VarType::Binary, bits[0], bits[0]);
            let b = m.add_var("b", VarType::Binary, bits[1], bits[1]);
            let c_and = and(&mut m, "c", &[a, b]);
            let c_or = or(&mut m, "d", &[a, b]);
            m.set_objective(LinExpr::term(c_and, 1.0) + LinExpr::term(c_or, 1.0));
            let sol = m.solve().unwrap();
            assert_close(sol.value(c_and), bits[0].min(bits[1]));
            assert_close(sol.value(c_or), bits[0].max(bits[1]));
        }
    }

    #[test]
    fn all_leq_detects_violation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 2.0, 2.0);
        let y = m.add_var("y", VarType::Continuous, 9.0, 9.0);
        let b = all_leq(
            &mut m,
            "t",
            &[LinExpr::term(x, 1.0), LinExpr::term(y, 1.0)],
            5.0,
            P,
        );
        m.set_objective(LinExpr::term(b, 1.0));
        assert_close(m.solve().unwrap().value(b), 0.0);
    }

    #[test]
    fn all_leq_empty_is_true() {
        let mut m = Model::new(Sense::Maximize);
        let b = all_leq(&mut m, "t", &[], 0.0, P);
        m.set_objective(LinExpr::term(b, -1.0));
        assert_close(m.solve().unwrap().value(b), 1.0);
    }

    #[test]
    fn all_eq_two_sided() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 0.0);
        let y = m.add_var("y", VarType::Continuous, 0.5, 0.5);
        let b_eq = all_eq(&mut m, "e1", &[LinExpr::term(x, 1.0)], 0.0, P);
        let b_ne = all_eq(&mut m, "e2", &[LinExpr::term(y, 1.0)], 0.0, P);
        m.set_objective(LinExpr::term(b_eq, 1.0) + LinExpr::term(b_ne, 1.0));
        let sol = m.solve().unwrap();
        assert_close(sol.value(b_eq), 1.0);
        assert_close(sol.value(b_ne), 0.0);
    }

    #[test]
    fn if_then_else_binds_both_branches() {
        for cond_val in [0.0, 1.0] {
            let mut m = Model::new(Sense::Maximize);
            let c = m.add_var("c", VarType::Binary, cond_val, cond_val);
            let y = m.add_var("y", VarType::Continuous, 0.0, 100.0);
            if_then_else(
                &mut m,
                "t",
                c,
                &[(y, LinExpr::constant(7.0))],
                &[(y, LinExpr::constant(2.0))],
                P,
            );
            m.set_objective(LinExpr::term(y, 1.0));
            let sol = m.solve().unwrap();
            assert_close(sol.value(y), if cond_val > 0.5 { 7.0 } else { 2.0 });
        }
    }

    #[test]
    fn fig1c_style_first_fit_single_ball() {
        // One ball, two bins, size fixed at 0.6: alpha_00 must be 1 and
        // x_00 = 0.6 (the Fig. 1c encoding in miniature).
        let p = GadgetParams {
            eps: 1e-3,
            big_m: 10.0,
        };
        let mut m = Model::new(Sense::Maximize);
        let y = m.add_var("Y0", VarType::Continuous, 0.6, 0.6);
        let x00 = m.add_var("x00", VarType::Continuous, 0.0, 1.0);
        let x01 = m.add_var("x01", VarType::Continuous, 0.0, 1.0);
        // r_00 = 1 - Y0; fits f_00 = 1[Y0 - 1 <= 0]
        let f00 = all_leq(&mut m, "f00", &[LinExpr::term(y, 1.0) - 1.0], 0.0, p);
        let g00 = all_eq(&mut m, "g00", &[], 0.0, p); // no earlier bins
        let a00 = and(&mut m, "a00", &[f00, g00]);
        if_then_else(
            &mut m,
            "place00",
            a00,
            &[(x00, LinExpr::term(y, 1.0))],
            &[(x00, LinExpr::constant(0.0))],
            p,
        );
        // Bin 1: gamma_01 = 1[x00 = 0]; alpha_01 = f_01 AND gamma_01.
        let f01 = all_leq(&mut m, "f01", &[LinExpr::term(y, 1.0) - 1.0], 0.0, p);
        let g01 = all_eq(&mut m, "g01", &[LinExpr::term(x00, 1.0)], 0.0, p);
        let a01 = and(&mut m, "a01", &[f01, g01]);
        if_then_else(
            &mut m,
            "place01",
            a01,
            &[(x01, LinExpr::term(y, 1.0))],
            &[(x01, LinExpr::constant(0.0))],
            p,
        );
        m.set_objective(LinExpr::term(x01, 1.0)); // try to cheat into bin 1
        let sol = m.solve().unwrap();
        assert_close(sol.value(x00), 0.6);
        assert_close(sol.value(x01), 0.0);
    }
}
