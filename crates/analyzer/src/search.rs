//! Search-based adversarial input finder.
//!
//! This is the documented substitution for MetaOpt's Gurobi-backed bilevel
//! solver on instances too large for the exact MILP route (DESIGN.md §2):
//! multi-start compass (pattern) search over the gap oracle, with support
//! for the exclusion regions that XPlain's iterate-and-exclude loop
//! (§5.2 step 3) feeds back. The exact MILP analyzers
//! ([`crate::dp_metaopt`], [`crate::ff_metaopt`]) cross-validate it on
//! paper-scale instances.

use crate::geometry::Polytope;
use crate::oracle::GapOracle;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cooperative-cancellation flag. The analysis-session layer hands
/// the same `Arc` to its `CancelToken`, so flipping the token mid-search
/// makes [`find_adversarial`] return at its next check instead of burning
/// the rest of its evaluation budget.
pub type StopFlag = Arc<AtomicBool>;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Independent random restarts.
    pub restarts: usize,
    /// Evaluation budget per restart.
    pub evals_per_restart: usize,
    /// Initial pattern step as a fraction of each dimension's range.
    pub init_step_frac: f64,
    /// Stop shrinking below this fraction.
    pub min_step_frac: f64,
    /// Structured seed points probed before random restarts (corners,
    /// threshold-straddling points...). Invalid/excluded entries are
    /// skipped silently.
    pub seeds: Vec<Vec<f64>>,
    /// Hard cap on oracle evaluations across the *whole* call (`None`:
    /// only the per-restart budget applies). When exhausted the search
    /// returns its best-so-far. For callers that bound a single search
    /// invocation; the session layer bounds whole probes instead —
    /// `max_analyzer_calls` at event boundaries plus the cooperative
    /// [`SearchOptions::stop`] flag — and leaves this `None`.
    pub max_total_evals: Option<usize>,
    /// Cooperative cancellation: when the flag flips mid-search the call
    /// returns its best-so-far at the next check. An aborted call leaves
    /// the caller's RNG mid-stream, so determinism-sensitive callers
    /// (the session layer) discard the result and replay the probe from
    /// their last checkpoint.
    pub stop: Option<StopFlag>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            restarts: 24,
            evals_per_restart: 400,
            init_step_frac: 0.25,
            min_step_frac: 1e-3,
            seeds: Vec::new(),
            max_total_evals: None,
            stop: None,
        }
    }
}

/// An adversarial input and its gap. Serializable because it rides inside
/// session checkpoints (a session interrupted between the analyzer probe
/// and the subspace-growth step persists the pending probe).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adversarial {
    pub input: Vec<f64>,
    pub gap: f64,
}

/// Find an input maximizing the oracle's gap, avoiding `excluded` regions.
///
/// Returns `None` when no valid (finite-gap, non-excluded) point with a
/// strictly positive gap is found within budget — the signal that the
/// iterate-and-exclude loop has exhausted the space.
pub fn find_adversarial(
    oracle: &dyn GapOracle,
    excluded: &[Polytope],
    opts: &SearchOptions,
    rng: &mut impl Rng,
) -> Option<Adversarial> {
    let bounds = oracle.bounds();
    let dims = bounds.len();
    let ranges: Vec<f64> = bounds.iter().map(|(lo, hi)| hi - lo).collect();
    let is_excluded = |x: &[f64]| excluded.iter().any(|p| p.contains(x, 1e-9));

    let eval = |x: &[f64]| -> f64 {
        if is_excluded(x) {
            f64::NEG_INFINITY
        } else {
            oracle.gap(x)
        }
    };

    // Whole-call budget hooks (both default off and cost nothing then).
    let mut total_evals = 0usize;
    let out_of_budget = |total: usize| opts.max_total_evals.is_some_and(|cap| total >= cap);
    let stop_requested = || {
        opts.stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    };

    let mut best: Option<Adversarial> = None;
    let consider = |x: &[f64], g: f64, best: &mut Option<Adversarial>| {
        if g.is_finite() && g > 0.0 && best.as_ref().is_none_or(|b| g > b.gap) {
            *best = Some(Adversarial {
                input: x.to_vec(),
                gap: g,
            });
        }
    };

    // Structured seeds first.
    let mut starts: Vec<Vec<f64>> = opts
        .seeds
        .iter()
        .filter(|s| s.len() == dims)
        .cloned()
        .collect();
    for _ in 0..opts.restarts {
        starts.push(
            bounds
                .iter()
                .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
                .collect(),
        );
    }

    for start in starts {
        if out_of_budget(total_evals) || stop_requested() {
            break;
        }
        let mut x = clamp(&start, &bounds);
        let mut fx = eval(&x);
        let mut evals = 1usize;
        total_evals += 1;
        // Re-draw excluded/invalid starts a few times.
        let mut tries = 0;
        while !fx.is_finite() && tries < 20 && evals < opts.evals_per_restart {
            x = bounds
                .iter()
                .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
                .collect();
            fx = eval(&x);
            evals += 1;
            total_evals += 1;
            tries += 1;
        }
        if !fx.is_finite() {
            continue;
        }
        consider(&x, fx, &mut best);

        let mut step = opts.init_step_frac;
        while step >= opts.min_step_frac && evals < opts.evals_per_restart {
            if out_of_budget(total_evals) || stop_requested() {
                break;
            }
            let mut improved = false;
            for d in 0..dims {
                for sign in [1.0, -1.0] {
                    if evals >= opts.evals_per_restart || out_of_budget(total_evals) {
                        break;
                    }
                    let mut cand = x.clone();
                    cand[d] = (cand[d] + sign * step * ranges[d]).clamp(bounds[d].0, bounds[d].1);
                    if (cand[d] - x[d]).abs() < 1e-15 {
                        continue;
                    }
                    let fc = eval(&cand);
                    evals += 1;
                    total_evals += 1;
                    if fc > fx + 1e-12 {
                        x = cand;
                        fx = fc;
                        consider(&x, fx, &mut best);
                        improved = true;
                        break;
                    }
                }
                if improved {
                    break;
                }
            }
            if !improved {
                step *= 0.5;
            }
        }
    }

    best
}

fn clamp(x: &[f64], bounds: &[(f64, f64)]) -> Vec<f64> {
    x.iter()
        .zip(bounds)
        .map(|(v, (lo, hi))| v.clamp(*lo, *hi))
        .collect()
}

/// Structured seed points for a DP-style oracle: demands straddling the
/// pinning threshold. Covers the "one pinnable demand + saturating
/// neighbors" patterns that make DP underperform.
pub fn dp_seeds(dims: usize, threshold: f64, cap: f64) -> Vec<Vec<f64>> {
    let mut seeds = Vec::new();
    let pin = threshold; // pinnable (d <= T)
    for k in 0..dims {
        let mut all_big = vec![cap; dims];
        all_big[k] = pin;
        seeds.push(all_big);
        let mut one_hot = vec![0.0; dims];
        one_hot[k] = pin;
        seeds.push(one_hot);
    }
    seeds.push(vec![pin; dims]);
    seeds.push(vec![cap; dims]);
    seeds
}

/// Structured seeds for a makespan-scheduling oracle: the Graham-tight
/// pattern (two jobs each of `2m-1 .. m+1` plus three of `m`, padded or
/// truncated to `dims` and scaled into `[0, p_max]`), plus uniform and
/// bimodal mixes.
pub fn sched_seeds(dims: usize, machines: usize, p_max: f64) -> Vec<Vec<f64>> {
    let m = machines.max(2);
    let mut tight: Vec<f64> = Vec::with_capacity(2 * m + 1);
    for size in (m + 1..=2 * m - 1).rev() {
        tight.push(size as f64);
        tight.push(size as f64);
    }
    tight.extend([m as f64; 3]);
    let scale = if (2 * m - 1) as f64 > p_max {
        p_max / (2 * m - 1) as f64
    } else {
        1.0
    };
    tight.iter_mut().for_each(|p| *p *= scale);
    tight.resize(dims, 0.0); // tight is sorted descending: keep the large jobs

    let mut seeds = vec![tight];
    seeds.push(vec![0.5 * p_max; dims]);
    let mut bimodal = Vec::with_capacity(dims);
    for i in 0..dims {
        bimodal.push(if i % 2 == 0 {
            p_max / 3.0
        } else {
            2.0 * p_max / 3.0
        });
    }
    seeds.push(bimodal);
    seeds
}

/// Structured seeds for an FF oracle: the classic "small filler + balls
/// just over half" patterns.
pub fn ff_seeds(dims: usize, cap: f64, min_size: f64) -> Vec<Vec<f64>> {
    let mut seeds = Vec::new();
    let just_under = 0.49 * cap;
    let just_over = 0.51 * cap;
    let mut s1 = vec![just_over; dims];
    s1[0] = min_size.max(0.01 * cap);
    if dims > 1 {
        s1[1] = just_under;
    }
    seeds.push(s1);
    seeds.push(vec![just_over; dims]);
    let mut s3 = Vec::with_capacity(dims);
    for i in 0..dims {
        s3.push(if i % 2 == 0 { 0.3 * cap } else { 0.8 * cap });
    }
    seeds.push(s3);
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{DpOracle, FfOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_domains::te::TeProblem;

    #[test]
    fn finds_dp_gap_on_fig1a() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        let opts = SearchOptions {
            seeds: dp_seeds(3, 50.0, 100.0),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let adv = find_adversarial(&oracle, &[], &opts, &mut rng).expect("gap exists");
        // The true maximum gap is 100 (Fig. 1a); the search must get close.
        assert!(adv.gap >= 90.0, "found only {}", adv.gap);
        // The pinnable demand must be at/below the threshold.
        assert!(adv.input[0] <= 50.0 + 1e-9);
    }

    #[test]
    fn finds_ff_gap_with_four_balls() {
        let oracle = FfOracle::new(4);
        let opts = SearchOptions {
            seeds: ff_seeds(4, 1.0, 0.01),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let adv = find_adversarial(&oracle, &[], &opts, &mut rng).expect("gap exists");
        assert!(adv.gap >= 1.0, "found only {}", adv.gap);
    }

    #[test]
    fn respects_exclusions() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        // Exclude the whole box: nothing to find.
        let all = Polytope::from_box(&[0.0, 0.0, 0.0], &[100.0, 100.0, 100.0]);
        let opts = SearchOptions {
            restarts: 4,
            evals_per_restart: 50,
            seeds: dp_seeds(3, 50.0, 100.0),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(find_adversarial(&oracle, &[all], &opts, &mut rng).is_none());
    }

    #[test]
    fn exclusion_moves_the_answer() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        let opts = SearchOptions {
            seeds: dp_seeds(3, 50.0, 100.0),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let first = find_adversarial(&oracle, &[], &opts, &mut rng).unwrap();
        // Exclude a box around the first answer.
        let lo: Vec<f64> = first.input.iter().map(|v| (v - 10.0).max(0.0)).collect();
        let hi: Vec<f64> = first.input.iter().map(|v| (v + 10.0).min(100.0)).collect();
        let excl = Polytope::from_box(&lo, &hi);
        let mut rng2 = StdRng::seed_from_u64(5);
        if let Some(second) =
            find_adversarial(&oracle, std::slice::from_ref(&excl), &opts, &mut rng2)
        {
            assert!(!excl.contains(&second.input, 1e-9));
        }
    }

    #[test]
    fn finds_sched_gap_on_tight_family() {
        use crate::oracle::SchedOracle;
        let oracle = SchedOracle::new(5, 2);
        let opts = SearchOptions {
            seeds: sched_seeds(5, 2, oracle.p_max),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let adv = find_adversarial(&oracle, &[], &opts, &mut rng).expect("gap exists");
        // The Graham-tight point reaches gap 1; the search must find it
        // (or something at least as bad).
        assert!(adv.gap >= 1.0 - 1e-9, "found only {}", adv.gap);
    }

    #[test]
    fn sched_seeds_cover_padding_and_scaling() {
        // dims > 2m+1: padded with zeros.
        let s = sched_seeds(8, 2, 3.0);
        assert_eq!(s[0].len(), 8);
        assert_eq!(s[0][..5], [3.0, 3.0, 2.0, 2.0, 2.0]);
        assert_eq!(s[0][5..], [0.0, 0.0, 0.0]);
        // p_max below 2m-1: scaled down to fit the box.
        let t = sched_seeds(5, 2, 1.5);
        assert!(t[0].iter().all(|&p| p <= 1.5 + 1e-12));
        assert!((t[0][0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn total_eval_budget_caps_the_search() {
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        let opts = SearchOptions {
            seeds: dp_seeds(3, 50.0, 100.0),
            max_total_evals: Some(5),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        // A 5-eval cap still probes the first structured seed, so the
        // adversarial point is found — just not polished across restarts.
        let capped = find_adversarial(&oracle, &[], &opts, &mut rng);
        assert!(capped.is_some());

        // With the cap off and the same seed, the search must do at least
        // as well (budget hooks never improve the answer).
        let full_opts = SearchOptions {
            seeds: dp_seeds(3, 50.0, 100.0),
            ..Default::default()
        };
        let mut rng2 = StdRng::seed_from_u64(1);
        let full = find_adversarial(&oracle, &[], &full_opts, &mut rng2).unwrap();
        assert!(full.gap >= capped.unwrap().gap - 1e-12);
    }

    #[test]
    fn preflipped_stop_flag_short_circuits() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
        let flag: StopFlag = Arc::new(AtomicBool::new(true));
        let opts = SearchOptions {
            seeds: dp_seeds(3, 50.0, 100.0),
            stop: Some(flag),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        // Stop requested before the first restart: nothing is probed.
        assert!(find_adversarial(&oracle, &[], &opts, &mut rng).is_none());
    }

    #[test]
    fn default_options_leave_budget_hooks_off() {
        let opts = SearchOptions::default();
        assert!(opts.max_total_evals.is_none());
        assert!(opts.stop.is_none());
    }

    #[test]
    fn adversarial_roundtrips_through_json() {
        let adv = Adversarial {
            input: vec![1.5, 0.25],
            gap: 3.75,
        };
        let json = serde_json::to_string(&adv).unwrap();
        let back: Adversarial = serde_json::from_str(&json).unwrap();
        assert_eq!(back.input, adv.input);
        assert_eq!(back.gap, adv.gap);
    }

    #[test]
    fn zero_gap_oracle_returns_none() {
        struct Flat;
        impl GapOracle for Flat {
            fn dims(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0); 2]
            }
            fn gap(&self, _x: &[f64]) -> f64 {
                0.0
            }
        }
        let mut rng = StdRng::seed_from_u64(6);
        let opts = SearchOptions {
            restarts: 3,
            evals_per_restart: 30,
            ..Default::default()
        };
        assert!(find_adversarial(&Flat, &[], &opts, &mut rng).is_none());
    }
}
