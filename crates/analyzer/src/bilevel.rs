//! Bilevel-to-single-level rewriting — MetaOpt's core trick.
//!
//! MetaOpt "solves a bi-level optimization" (§2): the outer level picks the
//! adversarial input, the inner level *is* the heuristic (and benchmark)
//! reacting optimally to it. The gap `OPT(d) − HEUR(d)` is maximized by:
//!
//! * **benchmark side** — appears with positive sign, so primal
//!   feasibility suffices: the outer maximization drives it to optimality
//!   on its own;
//! * **heuristic side** — appears with negative sign, so mere feasibility
//!   would let the outer problem *under-drive* the heuristic and inflate
//!   the gap. Its inner LP must be pinned to optimality: primal
//!   feasibility + dual feasibility + complementary slackness, the latter
//!   linearized with big-M indicator binaries.
//!
//! This module encodes that optimality certificate for an inner LP of the
//! form `max c'f s.t. A f <= b(outer), f >= 0`, where each row's
//! right-hand side may be an affine expression over *outer* variables
//! (that is how DP's big-M pinning constraints enter the inner problem).

use xplain_lp::{Cmp, LinExpr, Model, VarId, VarType};

/// One inner-LP row: `Σ coeffs · f <= rhs`, with `rhs` affine in outer
/// variables.
#[derive(Debug, Clone)]
pub struct InnerRow {
    pub name: String,
    pub coeffs: Vec<(VarId, f64)>,
    pub rhs: LinExpr,
}

/// An inner LP: `max Σ objective · f` over `vars >= 0` subject to `rows`.
#[derive(Debug, Clone)]
pub struct InnerLp {
    pub vars: Vec<VarId>,
    /// Objective coefficient per entry of `vars` (same order).
    pub objective: Vec<f64>,
    pub rows: Vec<InnerRow>,
}

/// Big-M parameters for the optimality encoding.
#[derive(Debug, Clone, Copy)]
pub struct KktParams {
    /// Bound on dual variables.
    pub dual_bound: f64,
    /// Bound on primal row slack (must exceed the largest achievable
    /// slack, including any big-M terms inside `rhs`).
    pub slack_bound: f64,
    /// Bound on primal variable values.
    pub primal_bound: f64,
}

impl Default for KktParams {
    fn default() -> Self {
        KktParams {
            dual_bound: 1e3,
            slack_bound: 1e5,
            primal_bound: 1e4,
        }
    }
}

/// Variables created by the optimality encoding (exposed for debugging and
/// tests).
#[derive(Debug, Clone)]
pub struct KktEncoding {
    /// One dual multiplier per row.
    pub duals: Vec<VarId>,
    /// `z[i] = 1` allows `dual[i] > 0` (row `i` active).
    pub row_active: Vec<VarId>,
    /// `w[j] = 1` allows `f[j] > 0` (dual constraint `j` tight).
    pub var_positive: Vec<VarId>,
}

/// Add the optimality certificate of `inner` to `model`.
///
/// After this call, any feasible assignment of `model` has the inner
/// variables at an **optimal** solution of the inner LP given the outer
/// variables — the bilevel problem has been flattened.
pub fn encode_inner_optimality(
    model: &mut Model,
    tag: &str,
    inner: &InnerLp,
    params: KktParams,
) -> KktEncoding {
    let n = inner.vars.len();
    let m_rows = inner.rows.len();
    assert_eq!(
        inner.objective.len(),
        n,
        "objective length must match inner vars"
    );

    // Primal feasibility: Σ coeffs f - rhs <= 0.
    for (i, row) in inner.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for &(v, c) in &row.coeffs {
            e.add_term(v, c);
        }
        let expr = e - row.rhs.clone();
        model.add_constr(
            format!("kkt_pf[{tag}/{i}/{}]", row.name),
            expr,
            Cmp::Le,
            0.0,
        );
    }

    // Duals.
    let duals: Vec<VarId> = (0..m_rows)
        .map(|i| {
            model.add_var(
                format!("dual[{tag}/{i}]"),
                VarType::Continuous,
                0.0,
                params.dual_bound,
            )
        })
        .collect();

    // Dual feasibility: for each f_j, Σ_i λ_i a_ij >= c_j.
    // Collect columns.
    let mut col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let var_pos: std::collections::BTreeMap<VarId, usize> = inner
        .vars
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, j))
        .collect();
    for (i, row) in inner.rows.iter().enumerate() {
        for &(v, c) in &row.coeffs {
            if let Some(&j) = var_pos.get(&v) {
                col[j].push((i, c));
            }
        }
    }
    for j in 0..n {
        let mut e = LinExpr::new();
        for &(i, c) in &col[j] {
            e.add_term(duals[i], c);
        }
        model.add_constr(format!("kkt_df[{tag}/{j}]"), e, Cmp::Ge, inner.objective[j]);
    }

    // Complementary slackness with indicator binaries.
    let mut row_active = Vec::with_capacity(m_rows);
    for (i, row) in inner.rows.iter().enumerate() {
        let z = model.add_binary(format!("kkt_z[{tag}/{i}]"));
        // λ_i <= dual_bound * z_i
        model.add_constr(
            format!("kkt_cs_dual[{tag}/{i}]"),
            LinExpr::term(duals[i], 1.0) - LinExpr::term(z, params.dual_bound),
            Cmp::Le,
            0.0,
        );
        // slack_i = rhs - Σ a f <= slack_bound * (1 - z_i)
        let mut af = LinExpr::new();
        for &(v, c) in &row.coeffs {
            af.add_term(v, c);
        }
        let slack = row.rhs.clone() - af;
        model.add_constr(
            format!("kkt_cs_slack[{tag}/{i}]"),
            slack + LinExpr::term(z, params.slack_bound),
            Cmp::Le,
            params.slack_bound,
        );
        row_active.push(z);
    }

    let mut var_positive = Vec::with_capacity(n);
    for j in 0..n {
        let w = model.add_binary(format!("kkt_w[{tag}/{j}]"));
        // f_j <= primal_bound * w_j
        model.add_constr(
            format!("kkt_cs_var[{tag}/{j}]"),
            LinExpr::term(inner.vars[j], 1.0) - LinExpr::term(w, params.primal_bound),
            Cmp::Le,
            0.0,
        );
        // reduced cost (Σ λ a - c) <= dual_bound' * (1 - w_j)
        let mut e = LinExpr::new();
        for &(i, c) in &col[j] {
            e.add_term(duals[i], c);
        }
        let rc_bound = params.dual_bound * (col[j].len().max(1) as f64) * 4.0;
        model.add_constr(
            format!("kkt_cs_rc[{tag}/{j}]"),
            e + LinExpr::term(w, rc_bound),
            Cmp::Le,
            inner.objective[j] + rc_bound,
        );
        var_positive.push(w);
    }

    KktEncoding {
        duals,
        row_active,
        var_positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_lp::{Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    /// Inner LP: max f s.t. f <= d. Outer picks d in [0, 10] to *minimize*
    /// f — without the optimality certificate it could report f = 0; with
    /// it, f must equal d, so the best the outer can do is d = 0.
    #[test]
    fn inner_optimality_enforced() {
        let mut m = Model::new(Sense::Maximize);
        let d = m.add_var("d", VarType::Continuous, 0.0, 10.0);
        let f = m.add_var("f", VarType::Continuous, 0.0, 100.0);
        let inner = InnerLp {
            vars: vec![f],
            objective: vec![1.0],
            rows: vec![InnerRow {
                name: "cap".into(),
                coeffs: vec![(f, 1.0)],
                rhs: LinExpr::term(d, 1.0),
            }],
        };
        encode_inner_optimality(&mut m, "t", &inner, KktParams::default());
        // Outer objective: d - f. Without KKT the optimum would be 10
        // (d = 10, f = 0); with KKT f = d always, so the optimum is 0.
        m.set_objective(LinExpr::term(d, 1.0) - LinExpr::term(f, 1.0));
        let sol = m.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert_close(sol.value(f), sol.value(d));
    }

    /// Two-variable inner LP with a shared capacity: the inner optimum
    /// always saturates the capacity; the outer tries to keep total flow
    /// low but cannot.
    #[test]
    fn shared_capacity_saturated() {
        let mut m = Model::new(Sense::Maximize);
        let cap = m.add_var("cap", VarType::Continuous, 2.0, 8.0);
        let f1 = m.add_var("f1", VarType::Continuous, 0.0, 100.0);
        let f2 = m.add_var("f2", VarType::Continuous, 0.0, 100.0);
        let inner = InnerLp {
            vars: vec![f1, f2],
            objective: vec![1.0, 1.0],
            rows: vec![
                InnerRow {
                    name: "share".into(),
                    coeffs: vec![(f1, 1.0), (f2, 1.0)],
                    rhs: LinExpr::term(cap, 1.0),
                },
                InnerRow {
                    name: "f1cap".into(),
                    coeffs: vec![(f1, 1.0)],
                    rhs: LinExpr::constant(3.0),
                },
            ],
        };
        encode_inner_optimality(&mut m, "t", &inner, KktParams::default());
        // Outer: minimize f1 + f2 (i.e. maximize its negation) while
        // choosing cap. Inner forces f1 + f2 = cap, so best is cap = 2.
        m.set_objective(-(LinExpr::term(f1, 1.0) + LinExpr::term(f2, 1.0)));
        let sol = m.solve().unwrap();
        assert_close(sol.value(f1) + sol.value(f2), sol.value(cap));
        assert_close(sol.value(cap), 2.0);
    }

    /// The inner optimum must pick the *better* of two variables when only
    /// one can be served (objective weights differ).
    #[test]
    fn inner_prefers_higher_weight() {
        let mut m = Model::new(Sense::Maximize);
        let f1 = m.add_var("f1", VarType::Continuous, 0.0, 100.0);
        let f2 = m.add_var("f2", VarType::Continuous, 0.0, 100.0);
        let inner = InnerLp {
            vars: vec![f1, f2],
            objective: vec![1.0, 2.0],
            rows: vec![InnerRow {
                name: "share".into(),
                coeffs: vec![(f1, 1.0), (f2, 1.0)],
                rhs: LinExpr::constant(5.0),
            }],
        };
        encode_inner_optimality(&mut m, "t", &inner, KktParams::default());
        // Outer would love f2 = 0 (maximize f1 - f2), but the inner's
        // optimality forces f2 = 5, f1 = 0 (weight 2 beats weight 1).
        m.set_objective(LinExpr::term(f1, 1.0) - LinExpr::term(f2, 1.0));
        let sol = m.solve().unwrap();
        assert_close(sol.value(f1), 0.0);
        assert_close(sol.value(f2), 5.0);
    }
}
