//! # xplain-analyzer
//!
//! The heuristic analyzer XPlain builds on — a from-scratch MetaOpt
//! (Namyar et al., NSDI'24) substitute:
//!
//! * [`helpers`] — the modeling combinators of Fig. 1b/1c
//!   (`ForceToZeroIfLeq`, `AllLeq`, `AllEq`, `AND`, `IfThenElse`) as big-M
//!   gadgets over `xplain-lp` models;
//! * [`bilevel`] — bilevel → single-level flattening via KKT/complementary
//!   slackness for inner LPs (MetaOpt's core rewriting);
//! * [`dp_metaopt`] / [`ff_metaopt`] — exact adversarial-input MILPs for
//!   Demand Pinning and first-fit bin packing, including exclusion-region
//!   support for XPlain's iterate-and-exclude loop (§5.2);
//! * [`search`] — a multi-start pattern-search analyzer for instances too
//!   large for the exact route (the documented substitution; DESIGN.md §2);
//! * [`oracle`] — the black-box gap interface shared by both;
//! * [`geometry`] — half-space / polytope machinery for subspaces and
//!   exclusions (the `A x <= C` form of Fig. 5c).

pub mod bilevel;
pub mod dp_metaopt;
pub mod ff_metaopt;
pub mod geometry;
pub mod helpers;
pub mod oracle;
pub mod search;

pub use dp_metaopt::DpMetaOpt;
pub use ff_metaopt::FfMetaOpt;
pub use geometry::{Halfspace, Polytope};
pub use helpers::GadgetParams;
pub use oracle::{DpOracle, FfOracle, GapOracle, SchedOracle};
pub use search::{
    dp_seeds, ff_seeds, find_adversarial, sched_seeds, Adversarial, SearchOptions, StopFlag,
};
