//! End-to-end mesh tests: real shard *processes* (the `runner` binary)
//! fronted by a gateway, over one shared content-addressed store.
//!
//! The load-bearing properties:
//!
//! 1. **gateway ≡ single node** — for each built-in domain, submitting
//!    through the gateway and streaming `GET /v1/jobs/{id}/events` is
//!    byte-identical to a direct in-process `run_manifest` of the same
//!    spec (terminal lines compared after zeroing `wall_time_ms`).
//!    Resubmits through the gateway are cache hits.
//! 2. **cancel → shard restart → resume** — a job cancelled through the
//!    gateway checkpoints into the shared store; after its owning shard
//!    process is stopped and restarted, a gateway resubmit resumes it,
//!    and the concatenated event stream equals an uninterrupted run.
//! 3. **failover + single-node fallback** — keys owned by a dead shard
//!    route to a healthy one; a one-peer mesh degrades to a working
//!    reverse proxy; an all-dead mesh answers 503.
//! 4. **work stealing** — an idle shard pulls queued jobs from a busy
//!    peer; the victim's donated counter and the thief's stolen gauge
//!    both move, all jobs complete, and every store entry carries its
//!    computing shard's origin stamp.
//!
//! Byte-equivalence tests (1, 2) run their shard processes *without*
//! `--peers`, i.e. with no stealers: stealing deliberately moves work
//! between processes, which is exactly the nondeterminism a
//! byte-comparison must exclude (property 4 covers stealing with a
//! deterministic, manually-ticked stealer instead).
//!
//! Solver counters are process-global and terminal watch lines embed
//! per-job counter deltas, so tests that solve in *this* process hold a
//! file-wide mutex (same discipline as serve's `http_e2e`).

use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_mesh::{
    ring, Gateway, GatewayConfig, GatewayHandle, Membership, Peer, PeerState, Stealer,
    StealerConfig, View,
};
use xplain_runtime::{
    run_manifest_opts, watch_line, DomainRegistry, JobOutcome, JobQueue, JobSpec, RunOptions,
    SessionBudgets, SessionEvent, TenantRegistry, WatchLine,
};
use xplain_serve::{Client, MeshStatus, Server, ServerConfig, ServerHandle};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    }
}

fn spec(domain: &str, seed: u64) -> JobSpec {
    JobSpec {
        domain: domain.into(),
        config: tiny_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    }
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xplain-mesh-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reserve `n` distinct loopback ports by binding and releasing them
/// (shard processes need addresses known before they start).
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("ephemeral bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// One shard process (the real `runner serve` binary), killed on drop.
struct ShardProc {
    child: Child,
    addr: SocketAddr,
    args: Vec<String>,
}

impl ShardProc {
    fn spawn(addr: SocketAddr, store: &Path, shard_id: &str, peers: Option<&str>) -> ShardProc {
        let mut args = vec![
            "serve".to_string(),
            "--addr".into(),
            addr.to_string(),
            "--workers".into(),
            "1".into(),
            "--store".into(),
            store.display().to_string(),
            "--shard-id".into(),
            shard_id.to_string(),
        ];
        if let Some(p) = peers {
            args.push("--peers".into());
            args.push(p.to_string());
        }
        let child = Command::new(env!("CARGO_BIN_EXE_runner"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("runner serve spawns");
        ShardProc { child, addr, args }
    }

    fn wait_ready(&self) {
        let api = Client::new(self.addr).with_timeout(Duration::from_secs(5));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if matches!(api.get("/v1/domains"), Ok(r) if r.status == 200) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "shard {} never became ready",
                self.addr
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Graceful stop: drain over HTTP, reap the process.
    fn stop(&mut self) {
        let _ = Client::new(self.addr)
            .with_timeout(Duration::from_secs(10))
            .post("/v1/shutdown", "");
        let _ = self.child.wait();
    }

    /// Stop, then start a fresh process on the same address with the
    /// same arguments — "the shard restarts".
    fn restart(&mut self) {
        self.stop();
        self.child = Command::new(env!("CARGO_BIN_EXE_runner"))
            .args(&self.args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("runner serve respawns");
        self.wait_ready();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn peers_of(addrs: &[SocketAddr]) -> Vec<Peer> {
    addrs
        .iter()
        .map(|a| Peer {
            id: a.to_string(),
            addr: *a,
        })
        .collect()
}

fn start_gateway(peers: Vec<Peer>) -> (GatewayHandle, std::thread::JoinHandle<()>) {
    let gateway = Gateway::bind(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        peers,
        heartbeat: Duration::from_millis(100),
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let handle = gateway.handle();
    let join = std::thread::spawn(move || gateway.run().expect("gateway runs"));
    (handle, join)
}

fn client_at(addr: SocketAddr) -> Client {
    Client::new(addr).with_timeout(Duration::from_secs(120))
}

/// The `runner --watch` lines of a direct, serial, storeless run — the
/// reference the gateway-served stream must match byte-for-byte.
fn reference_lines(job: &JobSpec) -> (Vec<String>, JobOutcome) {
    let registry = DomainRegistry::builtin();
    let jobs = vec![job.clone()];
    let lines: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let sink = |index: usize, event: &SessionEvent| {
        lines
            .lock()
            .unwrap()
            .push(watch_line(index, &jobs[index].domain, event));
    };
    let opts = RunOptions {
        budgets_override: None,
        resume: false,
        sink: Some(&sink),
        origin: None,
    };
    let outcomes = run_manifest_opts(&registry, &jobs, None, 1, opts);
    (
        lines.into_inner().unwrap(),
        outcomes.into_iter().next().unwrap(),
    )
}

fn normalize_terminal(line: &str) -> String {
    let mut parsed: WatchLine = serde_json::from_str(line).expect("watch line parses");
    if let SessionEvent::Finished { result, .. } = &mut parsed.event {
        result.wall_time_ms = 0;
    }
    serde_json::to_string(&parsed).expect("watch line reserializes")
}

fn line_kind(line: &str) -> String {
    serde_json::from_str::<WatchLine>(line)
        .expect("watch line parses")
        .kind
}

fn assert_streams_equal(served: &[String], reference: &[String], context: &str) {
    assert_eq!(
        served.len(),
        reference.len(),
        "{context}: stream lengths differ\nserved:    {served:#?}\nreference: {reference:#?}"
    );
    for (i, (s, r)) in served.iter().zip(reference).enumerate() {
        if line_kind(r) == "finished" {
            assert_eq!(
                normalize_terminal(s),
                normalize_terminal(r),
                "{context}: terminal line {i} differs"
            );
        } else {
            assert_eq!(s, r, "{context}: line {i} differs byte-for-byte");
        }
    }
}

#[derive(serde::Deserialize)]
struct SubmitResp {
    id: String,
    status: String,
    disposition: String,
    cache_hit: bool,
}

#[derive(serde::Deserialize)]
struct StatusResp {
    id: String,
    domain: String,
    status: String,
    outcome: Option<JobOutcome>,
}

fn wait_done(api: &Client, id: &str) -> StatusResp {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = api.get(&format!("/v1/jobs/{id}")).unwrap();
        if resp.status == 200 {
            let status: StatusResp = serde_json::from_str(&resp.body).unwrap();
            if status.status == "done" {
                return status;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Property 1: three shard processes, one gateway — dp/ff/sched routed
/// through the gateway produce byte-identical streams to direct runs,
/// and resubmits are cache hits.
#[test]
fn gateway_routed_streams_match_direct_runs_for_all_domains() {
    let _guard = test_lock();
    let store_dir = scratch_dir("route");
    let ports = free_ports(3);
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}").parse().unwrap())
        .collect();
    let mut shards: Vec<ShardProc> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| ShardProc::spawn(*a, &store_dir, &format!("shard-{i}"), None))
        .collect();
    for shard in &shards {
        shard.wait_ready();
    }
    let (gw, gw_join) = start_gateway(peers_of(&addrs));
    let api = client_at(gw.addr());

    for domain in ["dp", "ff", "sched"] {
        let job = spec(domain, 0xE2E);
        // Reference first: the shards are idle while this process
        // solves, and vice versa.
        let (reference, ref_outcome) = reference_lines(&job);

        let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
        assert_eq!(resp.status, 202, "{domain}: {}", resp.body);
        let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(submit.disposition, "enqueued", "{domain}");
        assert!(!submit.cache_hit);

        let (status, mut stream) = api
            .stream(&format!("/v1/jobs/{}/events", submit.id))
            .unwrap();
        assert_eq!(status, 200);
        let served = stream.collect_lines().unwrap();
        assert_streams_equal(&served, &reference, domain);

        let status = wait_done(&api, &submit.id);
        assert_eq!(status.id, submit.id);
        assert_eq!(status.domain, domain);
        let outcome = status.outcome.expect("done job has an outcome");
        assert_eq!(
            serde_json::to_string(&outcome.result).unwrap(),
            serde_json::to_string(&ref_outcome.result).unwrap(),
            "{domain}: gateway-served result differs from direct run"
        );

        // Resubmission through the gateway lands on the same owner and
        // answers from its cache.
        let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
        assert_eq!(resp.status, 200, "{domain}: {}", resp.body);
        let again: SubmitResp = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(again.id, submit.id);
        assert!(again.cache_hit, "{domain}: {}", resp.body);
    }

    // The gateway's metrics report the mesh: 3 healthy peers, epoch ≥ 1.
    let metrics = api.get("/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let parsed: serde::Value = serde_json::from_str(&metrics.body).unwrap();
    let mesh = serde::map_get(parsed.as_map().unwrap(), "mesh")
        .expect("gateway metrics carry a mesh block")
        .as_map()
        .unwrap();
    assert_eq!(
        serde::map_get(mesh, "shard_id").unwrap().as_str(),
        Some("gateway")
    );
    assert_eq!(
        serde::map_get(mesh, "peers_healthy").unwrap().as_f64(),
        Some(3.0),
        "{}",
        metrics.body
    );

    // Domains proxy through.
    let domains = api.get("/v1/domains").unwrap();
    assert_eq!(domains.status, 200);
    assert!(domains.body.contains("\"sched\""), "{}", domains.body);

    // Every store entry is stamped with the shard that computed it.
    let mut stamped = 0;
    for entry in std::fs::read_dir(&store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(
                text.contains("\"origin\":\"shard-"),
                "store entry {} lacks an origin stamp",
                path.display()
            );
            stamped += 1;
        }
    }
    assert_eq!(stamped, 3, "one committed entry per domain");

    gw.shutdown();
    gw_join.join().unwrap();
    for shard in &mut shards {
        shard.stop();
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Property 2: cancel through the gateway, restart the owning shard
/// process, resubmit through the gateway — the job resumes from its
/// checkpoint and the concatenated stream equals an uninterrupted run.
#[test]
fn cancel_then_shard_restart_then_resume_through_the_gateway() {
    let _guard = test_lock();
    let store_dir = scratch_dir("restart");
    let ports = free_ports(3);
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}").parse().unwrap())
        .collect();
    let mut shards: Vec<ShardProc> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| ShardProc::spawn(*a, &store_dir, &format!("shard-{i}"), None))
        .collect();
    for shard in &shards {
        shard.wait_ready();
    }
    let (gw, gw_join) = start_gateway(peers_of(&addrs));
    let api = client_at(gw.addr());

    let job = spec("sched", 0xCA7CE1);
    let (reference, _) = reference_lines(&job);
    assert!(reference.len() >= 4, "config too small to interrupt");

    // Submit and stream through the gateway; cancel after two events.
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", submit.id))
        .unwrap();
    let mut first_segment = Vec::new();
    for _ in 0..2 {
        first_segment.push(stream.next_line().unwrap().expect("live event"));
    }
    let resp = api
        .post(&format!("/v1/jobs/{}/cancel", submit.id), "")
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    first_segment.extend(stream.collect_lines().unwrap());
    let terminal = first_segment.pop().expect("cancelled stream terminates");
    assert_eq!(line_kind(&terminal), "finished");
    assert!(
        first_segment.len() < reference.len() - 1,
        "cancellation landed after the run finished"
    );

    // The checkpoint is in the *shared* store, named by content key.
    let ckpt = store_dir.join(format!("{}.ckpt", submit.id));
    assert!(ckpt.is_file(), "no checkpoint at {}", ckpt.display());

    // Restart the shard that owns this key (same address, same store).
    let view = View {
        epoch: 1,
        peers: addrs
            .iter()
            .map(|a| PeerState {
                peer: Peer {
                    id: a.to_string(),
                    addr: *a,
                },
                healthy: true,
            })
            .collect(),
    };
    let key = JobQueue::parse_id(&submit.id).expect("id parses");
    let owner_addr = ring::owner(key, &view).expect("owner exists").peer.addr;
    let owner = shards
        .iter_mut()
        .find(|s| s.addr == owner_addr)
        .expect("owner is one of ours");
    owner.restart();

    // Resubmit through the gateway: same key → same owner → resume.
    let resp = api.post("/v1/jobs", &spec_json(&job)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let resumed: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(resumed.id, submit.id, "content-addressed ids are stable");
    // The restarted process has no in-memory record of the cancel, so
    // the disposition is `enqueued`; the resume is proven below by
    // `finish.resumed` and the byte-equal concatenated stream.
    let (_, mut stream) = api
        .stream(&format!("/v1/jobs/{}/events", resumed.id))
        .unwrap();
    let second_segment = stream.collect_lines().unwrap();

    let status = wait_done(&api, &resumed.id);
    let finish = status.outcome.unwrap().finish.expect("session ran");
    assert!(finish.natural && finish.resumed, "{finish:?}");

    let mut concatenated = first_segment;
    concatenated.extend(second_segment);
    assert_streams_equal(&concatenated, &reference, "restart concatenation");
    assert!(!ckpt.exists(), "checkpoint must clear on natural finish");

    gw.shutdown();
    gw_join.join().unwrap();
    for shard in &mut shards {
        shard.stop();
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// In-process server helper for the failover and stealing tests.
fn start_inproc_shard(
    store_dir: Option<PathBuf>,
    shard_id: &str,
    pace_ms: u64,
    mesh: Option<Arc<MeshStatus>>,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 1,
        http_threads: 4,
        capacity: 32,
        store_dir,
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        shard_id: Some(shard_id.into()),
        pace_ms,
        mesh,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    (handle, join)
}

/// Property 3: dead-owner failover, single-node fallback, and the
/// all-dead 503.
#[test]
fn gateway_fails_over_dead_owners_and_degrades_honestly() {
    let _guard = test_lock();

    // One live in-process shard plus one permanently dead address.
    let (live, live_join) = start_inproc_shard(None, "live", 0, None);
    let dead_addr: SocketAddr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
        // listener drops here: the port is closed
    };
    let peers = peers_of(&[live.addr(), dead_addr]);
    let (gw, gw_join) = start_gateway(peers);
    let api = client_at(gw.addr());

    // Find a seed whose ring owner (all-healthy view) would be the dead
    // peer — the gateway must route it to the live shard anyway.
    let all_healthy = View {
        epoch: 1,
        peers: [live.addr(), dead_addr]
            .iter()
            .map(|a| PeerState {
                peer: Peer {
                    id: a.to_string(),
                    addr: *a,
                },
                healthy: true,
            })
            .collect(),
    };
    let victim_seed = (0..64u64)
        .find(|seed| {
            let key = JobQueue::job_key(&spec("dp", *seed), 0);
            ring::owner(key, &all_healthy).unwrap().peer.addr == dead_addr
        })
        .expect("some seed hashes to the dead peer");
    let resp = api
        .post("/v1/jobs", &spec_json(&spec("dp", victim_seed)))
        .unwrap();
    assert_eq!(
        resp.status, 202,
        "dead-owner submit must fail over: {}",
        resp.body
    );
    let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(submit.status, "queued");
    wait_done(&api, &submit.id);

    // Single-node fallback: the one-peer path is just a working proxy
    // (exercised above — the live shard took everything); check the
    // mesh gauges agree one peer is down.
    let metrics: serde::Value =
        serde_json::from_str(&api.get("/v1/metrics").unwrap().body).unwrap();
    let mesh = serde::map_get(metrics.as_map().unwrap(), "mesh")
        .unwrap()
        .as_map()
        .unwrap();
    assert_eq!(
        serde::map_get(mesh, "peers_total").unwrap().as_f64(),
        Some(2.0)
    );
    assert_eq!(
        serde::map_get(mesh, "peers_healthy").unwrap().as_f64(),
        Some(1.0)
    );

    // All-dead mesh: 503 on every proxied route.
    let (gw_dead, gw_dead_join) = start_gateway(peers_of(&[dead_addr]));
    let dead_api = client_at(gw_dead.addr());
    assert_eq!(
        dead_api
            .post("/v1/jobs", &spec_json(&spec("dp", 1)))
            .unwrap()
            .status,
        503
    );
    assert_eq!(dead_api.get("/v1/domains").unwrap().status, 503);
    assert_eq!(
        dead_api.get("/v1/jobs/0123456789abcdef").unwrap().status,
        503
    );
    gw_dead.shutdown();
    gw_dead_join.join().unwrap();

    gw.shutdown();
    gw_join.join().unwrap();
    live.shutdown();
    live_join.join().unwrap();
}

/// Property 4: an idle shard steals queued (never in-flight) jobs from
/// a busy peer; both sides' gauges move; everything completes; every
/// committed entry is origin-stamped.
#[test]
fn idle_shard_steals_queued_work_from_a_busy_peer() {
    let _guard = test_lock();
    let store_dir = scratch_dir("steal");

    // Victim "a" paces its worker (150ms per fresh job) so submissions
    // pile up; thief "b" runs flat out.
    let mesh_a = Arc::new(MeshStatus::new("a"));
    let mesh_b = Arc::new(MeshStatus::new("b"));
    let (a, a_join) =
        start_inproc_shard(Some(store_dir.clone()), "a", 150, Some(Arc::clone(&mesh_a)));
    let (b, b_join) =
        start_inproc_shard(Some(store_dir.clone()), "b", 0, Some(Arc::clone(&mesh_b)));
    let api_a = client_at(a.addr());
    let api_b = client_at(b.addr());

    // Load shard a directly with 6 distinct jobs.
    let mut ids = Vec::new();
    for seed in 1..=6u64 {
        let resp = api_a
            .post("/v1/jobs", &spec_json(&spec("sched", seed)))
            .unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
        let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
        ids.push(submit.id);
    }

    // Thief loop, ticked deterministically (no background thread).
    let membership = Membership::bootstrap(
        peers_of(&[a.addr(), b.addr()]),
        Duration::from_millis(250),
        Some(Arc::clone(&mesh_b)),
    );
    let stealer = Stealer::new(
        b.addr(),
        membership,
        Arc::clone(&mesh_b),
        StealerConfig {
            batch_max: 2,
            ..StealerConfig::default()
        },
    );
    let mut stolen = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while stolen == 0 && Instant::now() < deadline {
        stolen += stealer.tick();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(stolen > 0, "the idle shard never managed to steal");
    assert_eq!(mesh_b.jobs_stolen(), stolen as u64);

    // The victim's queue recorded the donation.
    let metrics_a: serde::Value =
        serde_json::from_str(&api_a.get("/v1/metrics").unwrap().body).unwrap();
    let queue_a = serde::map_get(metrics_a.as_map().unwrap(), "queue")
        .unwrap()
        .as_map()
        .unwrap();
    let donated = serde::map_get(queue_a, "donated")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        donated >= stolen as f64,
        "donated={donated} stolen={stolen}"
    );

    // The thief's metrics expose the stolen gauge on the wire.
    let metrics_b: serde::Value =
        serde_json::from_str(&api_b.get("/v1/metrics").unwrap().body).unwrap();
    let mesh_block = serde::map_get(metrics_b.as_map().unwrap(), "mesh")
        .unwrap()
        .as_map()
        .unwrap();
    assert_eq!(
        serde::map_get(mesh_block, "jobs_stolen").unwrap().as_f64(),
        Some(stolen as f64)
    );

    // Every job completes — on the victim's view of the world (donated
    // copies either recompute or answer from the shared store).
    for id in &ids {
        let status = wait_done(&api_a, id);
        assert!(status.outcome.is_some(), "job {id} has no outcome");
    }

    // All committed entries carry an origin stamp from one of the two
    // shards.
    let mut entries = 0;
    for entry in std::fs::read_dir(&store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(
                text.contains("\"origin\":\"a\"") || text.contains("\"origin\":\"b\""),
                "store entry {} lacks an origin stamp",
                path.display()
            );
            entries += 1;
        }
    }
    assert_eq!(entries, 6, "one committed entry per job");

    a.shutdown();
    b.shutdown();
    a_join.join().unwrap();
    b_join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Property 5: the repair-loop surface proxies transparently. The
/// regression listing (including its query string) is byte-identical
/// through the gateway and against the shard directly, and a tuning
/// stream relayed by the gateway matches the shard's NDJSON line for
/// line (same store ⇒ same corpus ⇒ deterministic tuner).
#[test]
fn regressions_and_tune_are_identical_through_gateway_and_shard() {
    let _guard = test_lock();
    let store_dir = scratch_dir("tune-proxy");

    let (shard, shard_join) = start_inproc_shard(Some(store_dir.clone()), "t0", 0, None);
    let (gw, gw_join) = start_gateway(peers_of(&[shard.addr()]));
    let direct = client_at(shard.addr());
    let proxied = client_at(gw.addr());

    // Seed the bank: one finished dp session, submitted via the gateway.
    let resp = proxied
        .post("/v1/jobs", &spec_json(&spec("dp", 0x5EED)))
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let submit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
    wait_done(&proxied, &submit.id);

    // Listing: byte-identical with and without a query string.
    for path in ["/v1/regressions", "/v1/regressions?offset=0&limit=2"] {
        let a = direct.get(path).unwrap();
        let b = proxied.get(path).unwrap();
        assert_eq!(a.status, 200, "{path}: {}", a.body);
        assert_eq!(b.status, 200, "{path}: {}", b.body);
        assert_eq!(a.body, b.body, "{path} differs through the gateway");
    }
    let listing: serde::Value =
        serde_json::from_str(&direct.get("/v1/regressions").unwrap().body).unwrap();
    let total = serde::map_get(listing.as_map().unwrap(), "total")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(total >= 1.0, "dp session seeded no regressions");

    // Tuning: the relayed stream is the shard's stream, line for line.
    let body = r#"{"domain":"dp","quick":true,"seed":11}"#;
    let (status, _, mut stream) = direct.stream_post("/v1/tune", body).unwrap();
    assert_eq!(status, 200);
    let direct_lines = stream.collect_lines().unwrap();
    let (status, headers, mut stream) = proxied.stream_post("/v1/tune", body).unwrap();
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("content-type") && v == "application/x-ndjson"),
        "gateway must relay the NDJSON content type: {headers:?}"
    );
    let proxied_lines = stream.collect_lines().unwrap();
    assert_eq!(
        direct_lines, proxied_lines,
        "tune stream differs through the gateway"
    );
    assert!(
        proxied_lines
            .last()
            .is_some_and(|l| l.starts_with("{\"report\":")),
        "stream must close with the report line: {proxied_lines:?}"
    );

    gw.shutdown();
    gw_join.join().unwrap();
    shard.shutdown();
    shard_join.join().unwrap();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Tenancy at the edge (DESIGN.md §12): the gateway authenticates
/// bearer keys exactly like a shard (401 missing/malformed on submit,
/// 403 unknown on every route), forwards the authenticated tenant id
/// upstream so the shard enforces that tenant's lane and quotas,
/// relays tenant-scoped 429s with Retry-After intact, and both tiers
/// report per-tenant metrics blocks.
#[test]
fn gateway_authenticates_tenants_at_the_edge_and_forwards_attribution() {
    let _guard = test_lock();
    let tenants_file =
        std::env::temp_dir().join(format!("xplain-mesh-tenants-{}.json", std::process::id()));
    std::fs::write(
        &tenants_file,
        format!(
            r#"{{"tenants": [
                {{"id": "heavy", "key_fnv": "{}", "weight": 3}},
                {{"id": "light", "key_fnv": "{}", "weight": 1,
                  "submit_rate": 0.25, "submit_burst": 1}}
            ]}}"#,
            TenantRegistry::hash_api_key("heavy-key"),
            TenantRegistry::hash_api_key("light-key"),
        ),
    )
    .expect("tenant config writes");

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 1,
        http_threads: 4,
        capacity: 32,
        store_dir: None,
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        shard_id: Some("t0".into()),
        pace_ms: 0,
        mesh: None,
        tenants: Some(tenants_file.clone()),
        ..ServerConfig::default()
    })
    .expect("shard binds");
    let shard = server.handle();
    let shard_join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });

    let gateway = Gateway::bind(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        peers: peers_of(&[shard.addr()]),
        heartbeat: Duration::from_millis(100),
        // One attempt per shard: a tenant-scoped 429 must surface to
        // the caller (Retry-After intact), not be waited out upstream.
        upstream_attempts: 1,
        tenants: Some(tenants_file.clone()),
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let gw = gateway.handle();
    let gw_join = std::thread::spawn(move || gateway.run().expect("gateway runs"));

    // The edge refuses anonymous and bad credentials before anything
    // is forwarded: 401 missing/malformed, 403 unknown — the same
    // answers a standalone shard gives.
    let anon = client_at(gw.addr());
    let resp = anon.post("/v1/jobs", &spec_json(&spec("dp", 1))).unwrap();
    assert_eq!(resp.status, 401, "{}", resp.body);
    let resp = client_at(gw.addr())
        .with_header("Authorization", "Basic dXNlcjpwdw==")
        .post("/v1/jobs", &spec_json(&spec("dp", 1)))
        .unwrap();
    assert_eq!(resp.status, 401, "{}", resp.body);
    let resp = client_at(gw.addr())
        .with_bearer("no-such-key")
        .get("/v1/domains")
        .unwrap();
    assert_eq!(resp.status, 403, "{}", resp.body);
    let resp = client_at(gw.addr())
        .with_tenant("nobody")
        .get("/v1/domains")
        .unwrap();
    assert_eq!(resp.status, 403, "{}", resp.body);

    // Authenticated submits route through; the light tenant's second
    // immediate submit trips its own token bucket on the shard and the
    // 429 relays back out with the tenant-scoped Retry-After.
    let heavy = client_at(gw.addr()).with_bearer("heavy-key");
    let light = client_at(gw.addr()).with_bearer("light-key");
    let resp = heavy.post("/v1/jobs", &spec_json(&spec("dp", 7))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let heavy_id = serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id;
    let resp = light.post("/v1/jobs", &spec_json(&spec("ff", 8))).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    let light_id = serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id;
    let resp = light.post("/v1/jobs", &spec_json(&spec("ff", 9))).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(
        resp.body.contains("tenant 'light'"),
        "429 must be tenant-scoped: {}",
        resp.body
    );
    assert!(
        resp.header("retry-after").is_some(),
        "gateway must relay Retry-After"
    );

    // Per-tenant metrics on both tiers: the gateway's edge counters and
    // the shard's authoritative queue view, both sorted by tenant id.
    let gw_metrics = anon.get("/v1/metrics").unwrap().body;
    assert!(
        gw_metrics.contains(
            "\"tenants\":[\
             {\"tenant\":\"heavy\",\"weight\":3,\"submitted\":1,\"rejected\":0},\
             {\"tenant\":\"light\",\"weight\":1,\"submitted\":1,\"rejected\":1}]"
        ),
        "gateway edge counters wrong: {gw_metrics}"
    );
    let shard_metrics = client_at(shard.addr()).get("/v1/metrics").unwrap().body;
    assert!(
        shard_metrics.contains("\"tenant\":\"heavy\",\"weight\":3,")
            && shard_metrics.contains("\"tenant\":\"light\",\"weight\":1,"),
        "shard lost forwarded attribution: {shard_metrics}"
    );

    wait_done(&heavy, &heavy_id);
    wait_done(&light, &light_id);

    gw.shutdown();
    gw_join.join().unwrap();
    shard.shutdown();
    shard_join.join().unwrap();
    let _ = std::fs::remove_file(&tenants_file);
}
