//! Crash-recovery e2e: a real `runner serve` process is SIGKILLed with
//! a mix of queued, running, and done jobs, then restarted over the
//! same store and journal. The write-ahead job journal (DESIGN.md §10)
//! must bring every accepted-but-unfinished job back — same ids, same
//! order, byte-identical results — and repeated kill/restart cycles
//! must not grow the journal without bound (compaction).
//!
//! `Child::kill` delivers SIGKILL on Unix: the server gets no chance to
//! drain, flush, or checkpoint. Whatever survives is exactly what the
//! journal and the store's fsync-before-rename discipline made durable.
//!
//! The byte-identity reference is an in-process serial run, which
//! touches the process-global solver counters — hence the file-wide
//! test mutex (same discipline as `mesh_e2e` and serve's `http_e2e`).

use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_mesh::{Gateway, GatewayConfig, Peer};
use xplain_runtime::{
    run_manifest_opts, DomainRegistry, JobOutcome, JobSpec, RunOptions, SessionBudgets,
    TenantRegistry,
};
use xplain_serve::Client;

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    }
}

fn spec(domain: &str, seed: u64) -> JobSpec {
    JobSpec {
        domain: domain.into(),
        config: tiny_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    }
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xplain-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("ephemeral bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// One `runner serve` process under crash-test: spawned with a fixed
/// argument list so a respawn is exactly "the same server, restarted".
struct ServeProc {
    child: Child,
    addr: SocketAddr,
    args: Vec<String>,
}

impl ServeProc {
    fn spawn(addr: SocketAddr, store: &Path, pace_ms: u64) -> ServeProc {
        Self::spawn_with_tenants(addr, store, pace_ms, None)
    }

    fn spawn_with_tenants(
        addr: SocketAddr,
        store: &Path,
        pace_ms: u64,
        tenants: Option<&Path>,
    ) -> ServeProc {
        let mut args = vec![
            "serve".to_string(),
            "--addr".into(),
            addr.to_string(),
            "--workers".into(),
            "1".into(),
            "--store".into(),
            store.display().to_string(),
            "--pace-ms".into(),
            pace_ms.to_string(),
        ];
        if let Some(file) = tenants {
            args.push("--tenants".into());
            args.push(file.display().to_string());
        }
        let child = Command::new(env!("CARGO_BIN_EXE_runner"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("runner serve spawns");
        ServeProc { child, addr, args }
    }

    fn wait_ready(&self) {
        let api = Client::new(self.addr).with_timeout(Duration::from_secs(5));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if matches!(api.get("/v1/domains"), Ok(r) if r.status == 200) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server {} never became ready",
                self.addr
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// SIGKILL — no drain, no flush, no goodbye.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Start a fresh process on the same address over the same store.
    fn respawn(&mut self) {
        self.child = Command::new(env!("CARGO_BIN_EXE_runner"))
            .args(&self.args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("runner serve respawns");
        self.wait_ready();
    }

    fn stop(&mut self) {
        let _ = Client::new(self.addr)
            .with_timeout(Duration::from_secs(10))
            .post("/v1/shutdown", "");
        let _ = self.child.wait();
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn client_at(addr: SocketAddr) -> Client {
    Client::new(addr).with_timeout(Duration::from_secs(120))
}

#[derive(serde::Deserialize)]
struct SubmitResp {
    id: String,
    #[serde(default)]
    cache_hit: bool,
}

#[derive(serde::Deserialize)]
struct StatusResp {
    status: String,
    #[serde(default)]
    recovered: bool,
    outcome: Option<JobOutcome>,
}

/// The byte-identity reference: a direct, serial, storeless in-process
/// run of the same spec (the result JSON the server must reproduce).
fn reference_result_json(job: &JobSpec) -> String {
    let registry = DomainRegistry::builtin();
    let outcomes = run_manifest_opts(
        &registry,
        std::slice::from_ref(job),
        None,
        1,
        RunOptions::default(),
    );
    serde_json::to_string(&outcomes[0].result).expect("result serializes")
}

/// Poll `GET /v1/jobs/{id}` until done; panics past the deadline.
fn wait_done(api: &Client, id: &str) -> StatusResp {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = api.get(&format!("/v1/jobs/{id}")).unwrap();
        if resp.status == 200 {
            let status: StatusResp = serde_json::from_str(&resp.body).unwrap();
            if status.status == "done" {
                return status;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn journal_bytes(store_dir: &Path) -> u64 {
    let journal = store_dir.join("journal");
    let Ok(entries) = std::fs::read_dir(&journal) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// The tentpole property: SIGKILL a server holding a mix of done,
/// running, and queued jobs; restart it over the same store + journal;
/// every accepted job reaches a terminal state with results
/// byte-identical to an uninterrupted run, and recovered executions say
/// so on `GET /v1/jobs/{id}`.
#[test]
fn sigkill_with_queued_jobs_recovers_every_accepted_job_byte_identically() {
    let _guard = test_lock();
    let store_dir = scratch_dir("recover");
    let port = free_ports(1)[0];
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    // One worker paced at 300ms per fresh job: submissions pile up
    // behind it, guaranteeing a queued backlog at kill time.
    let mut server = ServeProc::spawn(addr, &store_dir, 300);
    server.wait_ready();
    let api = client_at(addr);

    let specs: Vec<JobSpec> = [
        ("dp", 11u64),
        ("ff", 12),
        ("sched", 13),
        ("dp", 14),
        ("ff", 15),
    ]
    .iter()
    .map(|(d, s)| spec(d, *s))
    .collect();
    let mut ids = Vec::new();
    for job in &specs {
        let resp = api.post("/v1/jobs", &spec_json(job)).unwrap();
        assert!(
            resp.status == 202 || resp.status == 200,
            "submit failed: {} {}",
            resp.status,
            resp.body
        );
        ids.push(serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id);
    }

    // Let the first job finish so the kill catches a done/running/queued
    // mix, not just a cold queue.
    wait_done(&api, &ids[0]);
    server.kill9();

    // Restart over the same store + journal. Recovery happens before
    // the listener accepts, so the journal gauges are visible at once.
    server.respawn();
    let metrics = api.get("/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        !metrics.body.contains("\"journal\":null"),
        "store-backed server must journal by default: {}",
        metrics.body
    );
    assert!(
        !metrics.body.contains("\"recovered\":0,"),
        "a kill with a backlog must recover jobs: {}",
        metrics.body
    );

    // Every accepted job reaches a terminal state with the reference
    // bytes. Jobs that finished *before* the kill are terminal in the
    // journal and not re-enqueued — their ids read 404 from the fresh
    // process, and a resubmit must answer from the store (cache hit)
    // with the same bytes, never recompute.
    let mut recovered_seen = 0;
    for (job, id) in specs.iter().zip(&ids) {
        let reference = reference_result_json(job);
        let probe = api.get(&format!("/v1/jobs/{id}")).unwrap();
        let served = if probe.status == 404 {
            let resp = api.post("/v1/jobs", &spec_json(job)).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            let resubmit: SubmitResp = serde_json::from_str(&resp.body).unwrap();
            assert!(
                resubmit.cache_hit,
                "done-before-kill job {id} must answer from the store"
            );
            assert_eq!(resubmit.id, *id, "content key must be stable");
            wait_done(&api, id)
        } else {
            wait_done(&api, id)
        };
        recovered_seen += served.recovered as usize;
        let outcome = served.outcome.expect("done job has an outcome");
        assert_eq!(
            serde_json::to_string(&outcome.result).unwrap(),
            reference,
            "job {id} result differs from an uninterrupted run"
        );
    }
    assert!(
        recovered_seen >= 1,
        "at least one served job must be flagged recovered"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// The mesh-layer view of the same property: a gateway fronts a shard
/// that is SIGKILLed with queued work; after the shard restarts over
/// its store + journal, the gateway serves every accepted job to
/// completion and resubmits answer from the store.
#[test]
fn gateway_serves_queued_work_after_its_shard_recovers_from_sigkill() {
    let _guard = test_lock();
    let store_dir = scratch_dir("gateway");
    let port = free_ports(1)[0];
    let shard_addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    let mut shard = ServeProc::spawn(shard_addr, &store_dir, 300);
    shard.wait_ready();
    let gateway = Gateway::bind(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        peers: vec![Peer {
            id: shard_addr.to_string(),
            addr: shard_addr,
        }],
        heartbeat: Duration::from_millis(100),
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let gw_handle = gateway.handle();
    let gw_join = std::thread::spawn(move || gateway.run().expect("gateway runs"));
    let api = client_at(gw_handle.addr());

    let specs: Vec<JobSpec> = [("dp", 21u64), ("ff", 22), ("sched", 23)]
        .iter()
        .map(|(d, s)| spec(d, *s))
        .collect();
    let mut ids = Vec::new();
    for job in &specs {
        let resp = api.post_retry("/v1/jobs", &spec_json(job), 5).unwrap();
        assert!(
            resp.status == 202 || resp.status == 200,
            "gateway submit failed: {} {}",
            resp.status,
            resp.body
        );
        ids.push(serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id);
    }
    wait_done(&api, &ids[0]);

    shard.kill9();
    shard.respawn();

    // Every accepted job completes, served through the gateway; jobs
    // terminal before the kill answer from the store on resubmit.
    for (job, id) in specs.iter().zip(&ids) {
        let probe = api.get(&format!("/v1/jobs/{id}")).unwrap();
        if probe.status == 404 {
            let resp = api.post_retry("/v1/jobs", &spec_json(job), 5).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            assert!(
                serde_json::from_str::<SubmitResp>(&resp.body)
                    .unwrap()
                    .cache_hit,
                "pre-kill result must come from the store"
            );
        }
        wait_done(&api, id);
    }

    gw_handle.shutdown();
    gw_join.join().unwrap();
    shard.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[derive(serde::Deserialize)]
struct QueueResp {
    pending: Vec<PendingEntry>,
}

#[derive(serde::Deserialize)]
struct PendingEntry {
    id: String,
    #[serde(default)]
    tenant: Option<String>,
}

/// The tenancy view of crash recovery: SIGKILL a shard holding a mixed
/// two-tenant backlog; on restart the journal must re-enqueue every
/// accepted-but-unfinished job *in acceptance order* with its tenant
/// attribution intact — each lane's pending sequence is exactly that
/// tenant's submission order, every pending entry names its tenant, and
/// the recovered backlog drains to completion under enforcement.
#[test]
fn sigkill_with_two_tenant_backlog_recovers_attribution_and_order() {
    let _guard = test_lock();
    let store_dir = scratch_dir("tenancy");
    let tenants_file =
        std::env::temp_dir().join(format!("xplain-crash-tenants-{}.json", std::process::id()));
    std::fs::write(
        &tenants_file,
        format!(
            r#"{{"tenants": [
                {{"id": "heavy", "key_fnv": "{}", "weight": 3}},
                {{"id": "light", "key_fnv": "{}", "weight": 1}}
            ]}}"#,
            TenantRegistry::hash_api_key("heavy-key"),
            TenantRegistry::hash_api_key("light-key"),
        ),
    )
    .expect("tenant config writes");
    let port = free_ports(1)[0];
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    let mut server = ServeProc::spawn_with_tenants(addr, &store_dir, 300, Some(&tenants_file));
    server.wait_ready();
    let heavy = client_at(addr).with_bearer("heavy-key");
    let light = client_at(addr).with_bearer("light-key");

    // Interleaved acceptance: the per-tenant order the recovered queue
    // must reproduce.
    let plan: Vec<(&str, JobSpec)> = vec![
        ("heavy", spec("dp", 31)),
        ("heavy", spec("ff", 32)),
        ("light", spec("sched", 41)),
        ("heavy", spec("dp", 33)),
        ("light", spec("ff", 42)),
    ];
    let mut ids: Vec<(&str, String)> = Vec::new();
    for (tenant, job) in &plan {
        let api = if *tenant == "heavy" { &heavy } else { &light };
        let resp = api.post("/v1/jobs", &spec_json(job)).unwrap();
        assert!(
            resp.status == 202 || resp.status == 200,
            "submit failed: {} {}",
            resp.status,
            resp.body
        );
        ids.push((
            tenant,
            serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id,
        ));
    }

    // Kill with the backlog queued behind the paced worker, restart
    // over the same store + journal.
    server.kill9();
    server.respawn();

    // `/v1/queue` stays an open ops route under enforcement. The first
    // job may already be running again, so the pending view is checked
    // as: correct attribution on every entry, and each tenant's pending
    // sequence equals its acceptance order restricted to pending ids.
    let queue: QueueResp =
        serde_json::from_str(&client_at(addr).get("/v1/queue").unwrap().body).unwrap();
    let pending_ids: Vec<&str> = queue.pending.iter().map(|p| p.id.as_str()).collect();
    for entry in &queue.pending {
        let submitted_as = ids
            .iter()
            .find(|(_, id)| id == &entry.id)
            .map(|(t, _)| *t)
            .expect("pending job was one of ours");
        assert_eq!(
            entry.tenant.as_deref(),
            Some(submitted_as),
            "job {} lost its attribution across the crash",
            entry.id
        );
    }
    for tenant in ["heavy", "light"] {
        let accepted: Vec<&str> = ids
            .iter()
            .filter(|(t, id)| *t == tenant && pending_ids.contains(&id.as_str()))
            .map(|(_, id)| id.as_str())
            .collect();
        let recovered: Vec<&str> = queue
            .pending
            .iter()
            .filter(|p| p.tenant.as_deref() == Some(tenant))
            .map(|p| p.id.as_str())
            .collect();
        assert_eq!(
            recovered, accepted,
            "tenant '{tenant}' lane not recovered in acceptance order"
        );
    }

    // Enforcement survives the restart: the per-tenant metrics block is
    // present and anonymous submits are still refused.
    let metrics = client_at(addr).get("/v1/metrics").unwrap();
    assert!(
        metrics.body.contains("\"tenants\":[{\"tenant\":\"heavy\""),
        "restarted server lost its tenant registry: {}",
        metrics.body
    );
    let anon = client_at(addr)
        .post("/v1/jobs", &spec_json(&spec("dp", 99)))
        .unwrap();
    assert_eq!(anon.status, 401, "{}", anon.body);

    // The recovered backlog drains: every accepted job reaches done,
    // and at least one execution is flagged recovered.
    let mut recovered_seen = 0;
    for (_, id) in &ids {
        recovered_seen += wait_done(&heavy, id).recovered as usize;
    }
    assert!(
        recovered_seen >= 1,
        "a kill with a queued two-tenant backlog must recover jobs"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_file(&tenants_file);
}

/// The compaction bound: kill/restart cycles each replay and compact
/// the journal at open, so accumulated terminal history collapses and
/// the on-disk footprint stays flat instead of growing per cycle.
#[test]
fn repeated_kill_restart_cycles_keep_the_journal_bounded() {
    let _guard = test_lock();
    let store_dir = scratch_dir("bounded");
    let port = free_ports(1)[0];
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    let mut server = ServeProc::spawn(addr, &store_dir, 0);
    server.wait_ready();
    let api = client_at(addr);

    let mut seed = 100u64;
    let mut sizes = Vec::new();
    for _cycle in 0..4 {
        for _ in 0..3 {
            seed += 1;
            let resp = api.post("/v1/jobs", &spec_json(&spec("dp", seed))).unwrap();
            assert!(resp.status == 202 || resp.status == 200, "{}", resp.body);
            let id = serde_json::from_str::<SubmitResp>(&resp.body).unwrap().id;
            wait_done(&api, &id);
        }
        server.kill9();
        server.respawn(); // replays + compacts the dead process's journal
        sizes.push(journal_bytes(&store_dir));
    }
    server.stop();

    // All jobs were terminal at every kill, so each restart compacts to
    // an (almost) empty journal: the footprint must not trend upward
    // with history. Generous absolute bound — the point is "bytes, not
    // megabytes, and flat across cycles".
    let last = *sizes.last().unwrap();
    assert!(
        last <= 4096,
        "journal did not compact across restarts: sizes {sizes:?}"
    );
    assert!(
        last <= sizes[0] + 1024,
        "journal grows with restart history: sizes {sizes:?}"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
}
