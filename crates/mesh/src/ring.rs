//! Consistent placement via rendezvous (highest-random-weight) hashing.
//!
//! Every router hashes `(content key, peer id)` and ranks peers by the
//! resulting score: the top-ranked *healthy* peer owns the key, and the
//! rest of the ranking is the failover order. Rendezvous hashing has the
//! property this tier actually needs — when a peer leaves, only the keys
//! it owned move (each to its own runner-up), and when it returns the
//! exact same keys come back. No token ranges, no rebalancing protocol,
//! no state beyond the peer list itself; any process holding the same
//! membership view computes the same placement, which is what lets the
//! gateway, the stealers, and the tests agree on ownership without
//! coordinating.

use crate::membership::{PeerState, View};

/// FNV-1a over bytes — stable, dependency-free, and good enough to
/// decorrelate peer ids (the peer-id hash is mixed with the content key
/// through [`splitmix64`], which does the heavy lifting).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64 finalizer — full-period 64-bit mixer, so scores for
/// distinct `(key, peer)` pairs are effectively independent.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `peer_id` for `key`. Higher wins.
pub fn score(key: u64, peer_id: &str) -> u64 {
    splitmix64(key ^ fnv1a(peer_id.as_bytes()))
}

/// Every peer in the view — healthy or not — in deterministic preference
/// order for `key` (ties broken by id, so the order is total even in the
/// astronomically unlikely score collision).
pub fn preference(key: u64, view: &View) -> Vec<&PeerState> {
    let mut peers: Vec<&PeerState> = view.peers.iter().collect();
    peers.sort_by(|a, b| {
        score(key, &b.peer.id)
            .cmp(&score(key, &a.peer.id))
            .then_with(|| a.peer.id.cmp(&b.peer.id))
    });
    peers
}

/// The healthy peer that owns `key` under this view, or `None` when the
/// whole tier is down.
pub fn owner(key: u64, view: &View) -> Option<&PeerState> {
    preference(key, view).into_iter().find(|p| p.healthy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::{Peer, PeerState, View};

    fn view_of(ids: &[&str]) -> View {
        View {
            epoch: 1,
            peers: ids
                .iter()
                .map(|id| PeerState {
                    peer: Peer {
                        id: (*id).to_string(),
                        addr: "127.0.0.1:1".parse().unwrap(),
                    },
                    healthy: true,
                })
                .collect(),
        }
    }

    #[test]
    fn placement_is_deterministic_and_roughly_balanced() {
        let view = view_of(&["a", "b", "c", "d"]);
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            let first = owner(key, &view).unwrap().peer.id.clone();
            let second = owner(key, &view).unwrap().peer.id.clone();
            assert_eq!(first, second, "same view, same key, same owner");
            let idx = view.peers.iter().position(|p| p.peer.id == first).unwrap();
            counts[idx] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > 100,
                "peer {i} owns only {c}/1000 keys: {counts:?} — hash badly skewed"
            );
        }
    }

    #[test]
    fn losing_a_peer_only_moves_its_own_keys() {
        // The rendezvous property: marking one peer unhealthy remaps
        // exactly the keys it owned; everything else stays put.
        let full = view_of(&["a", "b", "c", "d"]);
        let mut degraded = full.clone();
        degraded.peers[2].healthy = false; // "c" goes down

        let mut moved = 0;
        for key in 0..1000u64 {
            let before = owner(key, &full).unwrap().peer.id.clone();
            let after = owner(key, &degraded).unwrap().peer.id.clone();
            if before == "c" {
                assert_ne!(after, "c");
                moved += 1;
            } else {
                assert_eq!(before, after, "key {key} moved although its owner is up");
            }
        }
        assert!(moved > 0, "the dead peer owned nothing — test is vacuous");
    }

    #[test]
    fn preference_ranks_every_peer_and_owner_skips_unhealthy() {
        let mut view = view_of(&["a", "b", "c"]);
        let key = 42;
        let pref = preference(key, &view);
        assert_eq!(pref.len(), 3, "preference covers all peers");
        let top = pref[0].peer.id.clone();
        let runner_up = pref[1].peer.id.clone();
        // Kill the top choice: ownership falls to the runner-up.
        let idx = view.peers.iter().position(|p| p.peer.id == top).unwrap();
        view.peers[idx].healthy = false;
        assert_eq!(owner(key, &view).unwrap().peer.id, runner_up);
        // Kill everything: no owner.
        for p in &mut view.peers {
            p.healthy = false;
        }
        assert!(owner(key, &view).is_none());
    }
}
