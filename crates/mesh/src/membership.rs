//! Membership: who is in the mesh, and who is alive right now.
//!
//! Deliberately the simplest protocol that serves the tier: a *static
//! seed list* (the operator names every shard up front — no gossip, no
//! joins) plus a TCP heartbeat that probes each peer and publishes an
//! epoch-numbered [`View`]. Routers hold an `Arc<View>` for the duration
//! of one request, so a heartbeat landing mid-request can never make the
//! preference order flip-flop under a router's feet; the epoch bumps
//! *only when health actually changes*, which also makes "did anything
//! move?" a single integer comparison.
//!
//! A one-peer seed list is the honest single-node fallback: the view has
//! one member, every key hashes to it, and the gateway degrades to a
//! plain reverse proxy.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use xplain_serve::MeshStatus;

/// One configured member of the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peer {
    /// Stable identity the ring hashes — the canonical `host:port`
    /// string, so every process derives identical placement from the
    /// same seed list.
    pub id: String,
    pub addr: SocketAddr,
}

/// A peer plus its last probed health.
#[derive(Debug, Clone)]
pub struct PeerState {
    pub peer: Peer,
    pub healthy: bool,
}

/// An immutable snapshot of the mesh. Routers capture one `Arc<View>`
/// per request and never observe a mid-request change.
#[derive(Debug, Clone)]
pub struct View {
    /// Monotonic; bumps only when some peer's health flips.
    pub epoch: u64,
    pub peers: Vec<PeerState>,
}

impl View {
    pub fn healthy_count(&self) -> usize {
        self.peers.iter().filter(|p| p.healthy).count()
    }

    pub fn healthy(&self) -> impl Iterator<Item = &PeerState> {
        self.peers.iter().filter(|p| p.healthy)
    }
}

/// Parse a `host:port,host:port,...` seed list (the `--peers` flag).
pub fn parse_peers(csv: &str) -> Result<Vec<Peer>, String> {
    let mut peers = Vec::new();
    for part in csv.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let addr: SocketAddr = part
            .parse()
            .map_err(|e| format!("bad peer address '{part}': {e}"))?;
        let peer = Peer {
            id: part.to_string(),
            addr,
        };
        if peers.contains(&peer) {
            return Err(format!("duplicate peer '{part}'"));
        }
        peers.push(peer);
    }
    if peers.is_empty() {
        return Err("peer list is empty".into());
    }
    Ok(peers)
}

/// The live membership tracker: seed list + heartbeat + published view.
pub struct Membership {
    probe_timeout: Duration,
    view: RwLock<Arc<View>>,
    /// Mesh gauges to keep in sync with the view (`GET /v1/metrics`).
    mesh: Option<Arc<MeshStatus>>,
}

impl Membership {
    /// Probe every seed synchronously and publish epoch 1. Bootstrap
    /// blocks for at most `peers.len() * probe_timeout`, so callers get
    /// an honest initial view before serving their first request.
    pub fn bootstrap(
        peers: Vec<Peer>,
        probe_timeout: Duration,
        mesh: Option<Arc<MeshStatus>>,
    ) -> Arc<Membership> {
        let states: Vec<PeerState> = peers
            .into_iter()
            .map(|peer| {
                let healthy = probe(&peer.addr, probe_timeout);
                PeerState { peer, healthy }
            })
            .collect();
        let view = View {
            epoch: 1,
            peers: states,
        };
        if let Some(m) = &mesh {
            m.set_view(view.epoch, view.peers.len(), view.healthy_count());
        }
        Arc::new(Membership {
            probe_timeout,
            view: RwLock::new(Arc::new(view)),
            mesh,
        })
    }

    /// The current snapshot (cheap: one `Arc` clone).
    pub fn view(&self) -> Arc<View> {
        Arc::clone(&self.view.read().expect("membership view"))
    }

    /// Re-probe every peer; publish a new view (epoch + 1) only if some
    /// health bit flipped. Returns whether it did.
    pub fn probe_once(&self) -> bool {
        let current = self.view();
        let fresh: Vec<bool> = current
            .peers
            .iter()
            .map(|p| probe(&p.peer.addr, self.probe_timeout))
            .collect();
        let changed = current
            .peers
            .iter()
            .zip(&fresh)
            .any(|(p, &h)| p.healthy != h);
        if !changed {
            return false;
        }
        let next = View {
            epoch: current.epoch + 1,
            peers: current
                .peers
                .iter()
                .zip(&fresh)
                .map(|(p, &healthy)| PeerState {
                    peer: p.peer.clone(),
                    healthy,
                })
                .collect(),
        };
        if let Some(m) = &self.mesh {
            m.set_view(next.epoch, next.peers.len(), next.healthy_count());
        }
        *self.view.write().expect("membership view") = Arc::new(next);
        true
    }

    /// Spawn the heartbeat thread: probe every `interval` until `stop`
    /// is raised. Join the handle after raising the flag — the sleep is
    /// chunked, so shutdown latency is bounded by ~50ms, not `interval`.
    pub fn start_heartbeat(
        self: Arc<Self>,
        interval: Duration,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                sleep_until(interval, &stop);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                self.probe_once();
            }
        })
    }
}

/// A peer is healthy iff its listener accepts a TCP connection within
/// the timeout. The connection is dropped immediately; the serve side
/// treats connect-then-close as normal churn and sends no response.
fn probe(addr: &SocketAddr, timeout: Duration) -> bool {
    TcpStream::connect_timeout(addr, timeout).is_ok()
}

/// Sleep `total` in ~50ms steps, returning early when `stop` raises.
pub(crate) fn sleep_until(total: Duration, stop: &AtomicBool) {
    let step = Duration::from_millis(50);
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::Relaxed) {
        let next = step.min(total - slept);
        std::thread::sleep(next);
        slept += next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn quick(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn parse_peers_accepts_lists_and_rejects_garbage() {
        let peers = parse_peers("127.0.0.1:7101, 127.0.0.1:7102").unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].id, "127.0.0.1:7101");
        assert_eq!(peers[1].addr.port(), 7102);
        assert!(parse_peers("").is_err());
        assert!(parse_peers("not-an-addr").is_err());
        assert!(
            parse_peers("127.0.0.1:1,127.0.0.1:1").is_err(),
            "duplicates"
        );
    }

    #[test]
    fn bootstrap_probes_and_epoch_bumps_only_on_change() {
        // One live listener, one address nothing listens on.
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap();
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead); // port now closed

        let peers = vec![
            Peer {
                id: live_addr.to_string(),
                addr: live_addr,
            },
            Peer {
                id: dead_addr.to_string(),
                addr: dead_addr,
            },
        ];
        let membership = Membership::bootstrap(peers, quick(200), None);
        let v1 = membership.view();
        assert_eq!(v1.epoch, 1);
        assert_eq!(v1.peers.len(), 2);
        assert!(v1.peers[0].healthy, "live listener probes healthy");
        assert!(!v1.peers[1].healthy, "closed port probes unhealthy");
        assert_eq!(v1.healthy_count(), 1);

        // Nothing changed: no new epoch, view pointer still equal.
        assert!(!membership.probe_once());
        assert_eq!(membership.view().epoch, 1);

        // Kill the live listener: exactly one epoch bump.
        drop(live);
        assert!(membership.probe_once());
        let v2 = membership.view();
        assert_eq!(v2.epoch, 2);
        assert_eq!(v2.healthy_count(), 0);
    }

    #[test]
    fn single_node_fallback_is_a_working_one_peer_view() {
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = live.local_addr().unwrap();
        let membership = Membership::bootstrap(
            vec![Peer {
                id: addr.to_string(),
                addr,
            }],
            quick(200),
            None,
        );
        let view = membership.view();
        assert_eq!(view.peers.len(), 1);
        assert_eq!(view.healthy_count(), 1);
        // Every key lands on the one peer.
        for key in [0u64, 1, 0xdead_beef] {
            assert_eq!(crate::ring::owner(key, &view).unwrap().peer.addr, addr);
        }
    }

    #[test]
    fn heartbeat_thread_observes_changes_and_stops() {
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = live.local_addr().unwrap();
        let membership = Membership::bootstrap(
            vec![Peer {
                id: addr.to_string(),
                addr,
            }],
            quick(200),
            None,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let hb = Arc::clone(&membership).start_heartbeat(quick(20), Arc::clone(&stop));
        drop(live);
        // The heartbeat must notice the death within a generous bound.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while membership.view().healthy_count() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "heartbeat never noticed the dead peer"
            );
            std::thread::sleep(quick(10));
        }
        stop.store(true, Ordering::Relaxed);
        hb.join().expect("heartbeat joins after stop");
    }
}
