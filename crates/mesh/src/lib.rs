//! # xplain-mesh
//!
//! The distributed tier: run N `xplain-serve` shards as **one logical
//! explanation server**. Still std-only, per the workspace's
//! vendored-deps policy — membership, routing, proxying, and stealing
//! are all built on `std::net` plus the serve crate's own HTTP pieces.
//!
//! The design leans entirely on the runtime's content addressing. A
//! job's identity is a deterministic hash of its spec, computed
//! identically by every process ([`xplain_runtime::JobQueue::job_key`]);
//! placement is a deterministic function of that key and the membership
//! view ([`ring`]). So the mesh needs no routing table, no job registry,
//! and no coordination protocol: every gateway and every shard derives
//! the same answer from the same seed list, and the shared
//! content-addressed store makes even *duplicated* execution harmless —
//! two shards computing the same key commit byte-identical entries.
//!
//! Module map, front to back:
//!
//! * [`ring`] — rendezvous hashing: content key + peer id → owner and
//!   failover order. Losing a shard moves only that shard's keys.
//! * [`membership`] — static seed list, TCP heartbeats, epoch-numbered
//!   immutable [`membership::View`]s. Routers capture one view per
//!   request and never flip-flop mid-request; a one-peer list is the
//!   honest single-node fallback.
//! * [`gateway`] — the HTTP front. Speaks the exact serve API
//!   (`POST /v1/jobs`, status, cancel, chunked NDJSON event streams) and
//!   proxies each request to the owning shard, failing over down the
//!   ring's preference list; 503 only when no shard is healthy.
//! * [`steal`] — work stealing. Idle shards poll peers'
//!   `GET /v1/queue`, pull *queued* (never in-flight) jobs via
//!   `POST /v1/queue/steal`, and resubmit them locally; the victim keeps
//!   donated jobs at the back of its queue as a safety net, and the
//!   shared store deduplicates the race.
//!
//! The `runner` binary lives here (it stacks `mesh` on top of `serve`,
//! `gc`, and the batch CLI): `runner mesh --shards N` spawns a local
//! mesh of N shard processes plus the gateway; `runner mesh --peers ...`
//! fronts shards that are already running. See DESIGN.md §9.

pub mod gateway;
pub mod membership;
pub mod ring;
pub mod steal;

pub use gateway::{Gateway, GatewayConfig, GatewayHandle};
pub use membership::{parse_peers, Membership, Peer, PeerState, View};
pub use steal::{Stealer, StealerConfig};
