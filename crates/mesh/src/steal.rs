//! Work stealing: idle shards pull *queued* (never in-flight) jobs from
//! the busiest peer.
//!
//! The stealer is deliberately an HTTP client of its own shard rather
//! than a thread with queue access: it polls `GET /v1/queue` on itself
//! to decide whether it is idle, polls the same endpoint on every
//! healthy peer to find the deepest backlog, asks the victim to donate
//! with `POST /v1/queue/steal`, and resubmits the donated specs to its
//! own `POST /v1/jobs`. Everything it does is observable (and testable)
//! at the API surface, and a donated spec travels as plain JSON — the
//! thief derives the *same* content key the victim had, so the job id a
//! client polls keeps working no matter which shard computes it.
//!
//! Safety over cleverness in the race window: the victim keeps donated
//! jobs at the back of its own queue as a safety net. If the thief dies
//! after stealing, the victim still executes the job; if both execute,
//! the second writer commits identical bytes to the shared store (or
//! answers straight from it as a cache hit). Stealing can duplicate
//! work; it can never lose it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::Deserialize;
use xplain_runtime::JobSpec;
use xplain_serve::{Client, MeshStatus};

use crate::membership::{sleep_until, Membership};

/// Stealer tunables.
#[derive(Debug, Clone)]
pub struct StealerConfig {
    /// Poll period while idle.
    pub interval: Duration,
    /// Most jobs to pull in one round (small batches keep placement
    /// close to the ring and limit the duplicated-work window).
    pub batch_max: usize,
    /// Per-request timeout against self and peers.
    pub timeout: Duration,
}

impl Default for StealerConfig {
    fn default() -> Self {
        StealerConfig {
            interval: Duration::from_millis(200),
            batch_max: 2,
            timeout: Duration::from_secs(5),
        }
    }
}

/// The subset of `GET /v1/queue` a stealing decision needs (extra
/// fields in the body are ignored by deserialization).
#[derive(Debug, Deserialize)]
struct QueueSnapshot {
    depth: usize,
    active: usize,
    stealable: usize,
}

/// `POST /v1/queue/steal` response body.
#[derive(Debug, Deserialize)]
struct StealBody {
    jobs: Vec<JobSpec>,
}

/// One shard's stealing loop.
pub struct Stealer {
    /// This shard's own serve address (jobs are resubmitted here).
    self_addr: SocketAddr,
    membership: Arc<Membership>,
    mesh: Arc<MeshStatus>,
    config: StealerConfig,
}

impl Stealer {
    pub fn new(
        self_addr: SocketAddr,
        membership: Arc<Membership>,
        mesh: Arc<MeshStatus>,
        config: StealerConfig,
    ) -> Stealer {
        Stealer {
            self_addr,
            membership,
            mesh,
            config,
        }
    }

    /// Spawn the polling thread; raises nothing itself — raise `stop`
    /// and join the handle to end it (shutdown latency ~50ms).
    pub fn start(self, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                sleep_until(self.config.interval, &stop);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                self.tick();
            }
        })
    }

    /// One stealing round. Public so tests (and operators embedding the
    /// tier) can drive it deterministically without the thread. Returns
    /// the number of jobs successfully pulled and resubmitted locally.
    pub fn tick(&self) -> usize {
        // Idle check against our own shard: anything waiting or running
        // means local capacity is spoken for.
        let own = match self.snapshot(self.self_addr) {
            Some(s) => s,
            None => return 0, // own server unreachable; nothing to do
        };
        if own.depth > 0 || own.active > 0 {
            return 0;
        }

        // Busiest healthy peer by stealable backlog (never ourselves).
        let view = self.membership.view();
        let victim = view
            .healthy()
            .filter(|p| p.peer.addr != self.self_addr)
            .filter_map(|p| {
                let snap = self.snapshot(p.peer.addr)?;
                (snap.stealable > 0).then_some((p.peer.addr, snap.stealable))
            })
            .max_by_key(|&(_, stealable)| stealable);
        let Some((victim_addr, stealable)) = victim else {
            return 0;
        };

        let max = stealable.min(self.config.batch_max.max(1));
        let request = format!("{{\"max\":{max}}}");
        let Ok(response) = self.client(victim_addr).post("/v1/queue/steal", &request) else {
            return 0;
        };
        if response.status != 200 {
            return 0;
        }
        let Ok(donated) = serde_json::from_str::<StealBody>(&response.body) else {
            return 0;
        };

        let mut pulled = 0usize;
        for spec in &donated.jobs {
            let body = serde_json::to_string(spec).expect("spec serializes");
            // Plain post, no retry: if our shard is suddenly busy the
            // victim's safety-net copy still runs the job.
            let accepted = self
                .client(self.self_addr)
                .post("/v1/jobs", &body)
                .map(|r| r.status == 200 || r.status == 202)
                .unwrap_or(false);
            if accepted {
                pulled += 1;
            }
        }
        if pulled > 0 {
            self.mesh.add_stolen(pulled as u64);
        }
        pulled
    }

    fn snapshot(&self, addr: SocketAddr) -> Option<QueueSnapshot> {
        let response = self.client(addr).get("/v1/queue").ok()?;
        (response.status == 200)
            .then(|| serde_json::from_str(&response.body).ok())
            .flatten()
    }

    fn client(&self, addr: SocketAddr) -> Client {
        Client::new(addr).with_timeout(self.config.timeout)
    }
}
