//! The mesh gateway: one HTTP front that makes N `xplain-serve` shards
//! look like a single logical explanation server.
//!
//! The gateway terminates the same API the shards speak (same routes,
//! same JSON, same NDJSON event stream) and *proxies* rather than
//! reimplements: a submitted `JobSpec` is hashed exactly the way every
//! shard hashes it (`JobQueue::job_key`, index 0), the rendezvous ring
//! picks the owning shard under the current membership view, and the
//! request is forwarded verbatim. Because content keys — not queue
//! state — decide placement, a resubmit of the same spec always lands on
//! the same shard and hits its cache or resumes its checkpoint, and any
//! two gateways (or a gateway and a stealing shard) agree on ownership
//! without talking to each other.
//!
//! Failure handling per request, in preference order of the ring:
//! unreachable shards are skipped; 429s are waited out per shard
//! ([`xplain_serve::Client::post_retry`]) before failing over; 404s on
//! id-routed requests fall through to the next shard (the job may have
//! been computed elsewhere — the store is shared, so a resubmit
//! anywhere answers from cache). Only when *no* healthy shard remains
//! does the gateway answer 503.
//!
//! Event streams are proxied chunk-for-chunk, live. Upstream truncation
//! (a shard dying mid-stream) is propagated as transport-level
//! truncation — the gateway never fabricates a clean terminator for a
//! stream it did not see end.
//!
//! With a tenant registry configured ([`GatewayConfig::tenants`]) the
//! gateway is the tier's *authentication edge*: it terminates
//! `Authorization: Bearer` exactly like a standalone shard (401
//! malformed/missing, 403 unknown), forwards the authenticated tenant
//! id upstream via the trusted `X-Xplain-Tenant` header, and reports
//! per-tenant edge counters in its own `/v1/metrics`. Shards are
//! assumed to sit on a private network behind the gateway (DESIGN.md
//! §12's trust model); quota enforcement itself lives on the shards,
//! whose tenant-scoped 429s relay through unchanged.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use xplain_runtime::{JobQueue, JobSpec, TenantRegistry};
use xplain_serve::http::{
    finish_chunked, read_request, start_chunked, write_chunk, HttpError, Request, Response,
};
use xplain_serve::router::{route, Route, RouteError};
use xplain_serve::{Client, MeshReport, MeshStatus};

use crate::membership::{Membership, Peer, PeerState};
use crate::ring;

/// Gateway tunables.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// The shard seed list (static membership).
    pub peers: Vec<Peer>,
    /// Connection handler threads; a streaming watcher occupies one for
    /// the life of its job.
    pub http_threads: usize,
    /// Client-facing socket read timeout.
    pub read_timeout: Duration,
    /// Upstream timeout for unary proxy calls.
    pub upstream_timeout: Duration,
    /// Upstream read timeout while proxying an event stream (streams
    /// idle between events; this bounds how long a stalled shard can
    /// hold a watcher).
    pub stream_timeout: Duration,
    /// TCP connect budget for one health probe.
    pub probe_timeout: Duration,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// `POST` attempts per shard (429 + Retry-After waits) before
    /// failing over to the next peer in the ring.
    pub upstream_attempts: u32,
    /// Tenant registry config path (DESIGN.md §12). `None` (the
    /// default) runs the gateway open — no authentication, every
    /// request anonymous, byte-for-byte the pre-tenancy behavior.
    pub tenants: Option<PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7080".into(),
            peers: Vec::new(),
            http_threads: 8,
            read_timeout: Duration::from_secs(5),
            upstream_timeout: Duration::from_secs(30),
            stream_timeout: Duration::from_secs(120),
            probe_timeout: Duration::from_millis(250),
            heartbeat: Duration::from_millis(500),
            upstream_attempts: 3,
            tenants: None,
        }
    }
}

/// A bound-but-not-yet-running gateway.
pub struct Gateway {
    listener: TcpListener,
    config: GatewayConfig,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running [`Gateway`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct GatewayHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl GatewayHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        request_shutdown(&self.shutdown, self.addr);
    }
}

/// Flag shutdown and poke the blocking accept loop awake with one
/// throwaway loopback connection (same idiom as the serve layer).
fn request_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::Relaxed);
    for timeout_ms in [200, 1000] {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(timeout_ms)).is_ok() {
            break;
        }
    }
}

impl Gateway {
    /// Bind the listening socket (fails fast on bad addresses or an
    /// empty peer list).
    pub fn bind(config: GatewayConfig) -> io::Result<Gateway> {
        if config.peers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one peer",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Gateway {
            listener,
            config,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            addr: self.local_addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until shutdown, then stop the heartbeat and return. Blocks
    /// the calling thread.
    pub fn run(self) -> io::Result<()> {
        let tenants = match &self.config.tenants {
            Some(path) => TenantRegistry::load(path)?,
            None => TenantRegistry::open(),
        };
        let mesh = Arc::new(MeshStatus::new("gateway"));
        let membership = Membership::bootstrap(
            self.config.peers.clone(),
            self.config.probe_timeout,
            Some(Arc::clone(&mesh)),
        );
        let hb_stop = Arc::new(AtomicBool::new(false));
        let heartbeat =
            Arc::clone(&membership).start_heartbeat(self.config.heartbeat, Arc::clone(&hb_stop));

        let tenant_stats = Mutex::new(BTreeMap::new());
        let ctx = GatewayCtx {
            membership: &membership,
            mesh: &mesh,
            config: &self.config,
            tenants: &tenants,
            tenant_stats: &tenant_stats,
            shutdown: &self.shutdown,
            addr: self.local_addr,
            started: Instant::now(),
        };
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Mutex::new(conn_rx);

        std::thread::scope(|scope| {
            for _ in 0..self.config.http_threads.max(1) {
                scope.spawn(|| loop {
                    let next = conn_rx
                        .lock()
                        .expect("connection channel")
                        .recv_timeout(Duration::from_millis(100));
                    match next {
                        Ok(stream) => handle_connection(stream, &ctx),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                });
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        let _ = conn_tx.send(stream);
                    }
                    Err(_) => {
                        if self.shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            drop(conn_tx);
        });
        hb_stop.store(true, Ordering::Relaxed);
        heartbeat.join().expect("heartbeat thread joins");
        Ok(())
    }
}

struct GatewayCtx<'a> {
    membership: &'a Arc<Membership>,
    mesh: &'a MeshStatus,
    config: &'a GatewayConfig,
    tenants: &'a TenantRegistry,
    /// Per-tenant edge counters (submits relayed/rejected *through this
    /// gateway* — shard metrics count the authoritative queue view).
    tenant_stats: &'a Mutex<BTreeMap<String, GatewayTenantStats>>,
    shutdown: &'a AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

#[derive(Debug, Default, Clone)]
struct GatewayTenantStats {
    submitted: u64,
    rejected: u64,
}

/// Resolve the caller's tenant identity — the same contract as the
/// serve layer's `authenticate` so a client cannot tell whether it hit
/// a shard or the gateway. Open mode: `Ok(None)`, headers ignored.
/// Enforcing: `Bearer` keys checked against the registry (401
/// malformed, 403 unknown — on every route); `X-Xplain-Tenant` is
/// honored as trusted forwarding (another gateway in front of this
/// one); neither header is `Ok(None)`, and attribution-requiring
/// routes (submit, tune) answer 401 downstream.
fn authenticate(ctx: &GatewayCtx<'_>, request: &Request) -> Result<Option<String>, Box<Response>> {
    if !ctx.tenants.enforcing() {
        return Ok(None);
    }
    if let Some(value) = request.header("authorization") {
        let key = match value.split_once(' ') {
            Some((scheme, rest)) if scheme.eq_ignore_ascii_case("bearer") => rest.trim(),
            _ => {
                return Err(Box::new(Response::error(
                    401,
                    "malformed Authorization header (expected 'Bearer <api-key>')",
                )))
            }
        };
        return match ctx.tenants.authenticate(key) {
            Some(tenant) => Ok(Some(tenant.id.clone())),
            None => Err(Box::new(Response::error(403, "unknown API key"))),
        };
    }
    if let Some(id) = request.header("x-xplain-tenant") {
        return match ctx.tenants.lookup(id) {
            Some(tenant) => Ok(Some(tenant.id.clone())),
            None => Err(Box::new(Response::error(
                403,
                &format!("unknown tenant id '{id}'"),
            ))),
        };
    }
    Ok(None)
}

fn handle_connection(mut stream: TcpStream, ctx: &GatewayCtx<'_>) {
    let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Closed) => return,
        Err(HttpError::TooLarge) => {
            let _ = Response::error(413, "request exceeds size caps").write_to(&mut stream);
            return;
        }
        Err(HttpError::BadRequest(m)) => {
            let _ = Response::error(400, &m).write_to(&mut stream);
            return;
        }
        Err(HttpError::Io(_)) => {
            let _ = Response::error(408, "timed out reading request").write_to(&mut stream);
            return;
        }
    };
    let tenant = match authenticate(ctx, &request) {
        Ok(tenant) => tenant,
        Err(response) => {
            let _ = response.write_to(&mut stream);
            return;
        }
    };
    match route(&request.method, &request.path) {
        Ok(Route::JobEvents(id)) => proxy_events(&mut stream, ctx, &id),
        Ok(Route::Tune) => proxy_tune(&mut stream, ctx, &request, tenant.as_deref()),
        Ok(r) => {
            let response = dispatch(ctx, r, &request, tenant.as_deref());
            let _ = response.write_to(&mut stream);
        }
        Err(RouteError::NotFound) => {
            let _ = Response::error(404, "no such resource").write_to(&mut stream);
        }
        Err(RouteError::MethodNotAllowed { allowed }) => {
            let _ = Response::error(405, "method not allowed")
                .with_header("Allow", allowed)
                .write_to(&mut stream);
        }
    }
}

#[derive(Debug, Serialize)]
struct ShutdownBody {
    shutting_down: bool,
}

/// The gateway's own `GET /v1/metrics` body: it holds no queue, so the
/// report is uptime plus the mesh block (shard metrics live on the
/// shards; aggregate by polling each). When the gateway enforces
/// tenancy a `tenants` block of edge counters is appended; in open
/// mode the key is absent and the body is byte-for-byte pre-tenancy.
#[derive(Debug)]
struct GatewayMetrics {
    uptime_ms: u64,
    mesh: MeshReport,
    tenants: Option<Vec<GatewayTenantReport>>,
}

// Hand-written: the vendored serde has no `skip_serializing_if`, and
// the open-mode body must not grow a `"tenants":null` key.
impl Serialize for GatewayMetrics {
    fn to_value(&self) -> serde::Value {
        let mut map: Vec<(String, serde::Value)> = vec![
            ("uptime_ms".into(), self.uptime_ms.to_value()),
            ("mesh".into(), self.mesh.to_value()),
        ];
        if let Some(tenants) = &self.tenants {
            map.push(("tenants".into(), tenants.to_value()));
        }
        serde::Value::Map(map)
    }
}

/// One tenant's edge counters, sorted by id in the report.
#[derive(Debug, Serialize)]
struct GatewayTenantReport {
    tenant: String,
    weight: u64,
    submitted: u64,
    rejected: u64,
}

/// Snapshot the per-tenant edge counters: every registered tenant
/// appears (zeroed if it never submitted here), sorted by id — the
/// same discipline as the shard-side `tenants` block.
fn tenant_reports(ctx: &GatewayCtx<'_>) -> Vec<GatewayTenantReport> {
    let stats = ctx.tenant_stats.lock().expect("tenant stats");
    let mut reports: Vec<GatewayTenantReport> = ctx
        .tenants
        .tenants()
        .iter()
        .map(|t| {
            let s = stats.get(&t.id).cloned().unwrap_or_default();
            GatewayTenantReport {
                tenant: t.id.clone(),
                weight: t.weight,
                submitted: s.submitted,
                rejected: s.rejected,
            }
        })
        .collect();
    reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    reports
}

/// Bump a tenant's edge counter for one settled submit.
fn record_submit(ctx: &GatewayCtx<'_>, tenant: Option<&str>, accepted: bool) {
    let Some(id) = tenant else { return };
    let mut stats = ctx.tenant_stats.lock().expect("tenant stats");
    let entry = stats.entry(id.to_string()).or_default();
    if accepted {
        entry.submitted += 1;
    } else {
        entry.rejected += 1;
    }
}

fn dispatch(
    ctx: &GatewayCtx<'_>,
    route: Route,
    request: &Request,
    tenant: Option<&str>,
) -> Response {
    match route {
        Route::SubmitJob => submit(ctx, request, tenant),
        Route::JobStatus(id) => forward_by_id(ctx, &id, "GET", &format!("/v1/jobs/{id}")),
        Route::CancelJob(id) => forward_by_id(ctx, &id, "POST", &format!("/v1/jobs/{id}/cancel")),
        Route::Domains => forward_any(ctx, "/v1/domains"),
        // The bank lives in the shared store, so any healthy shard
        // answers identically; the query string rides along verbatim.
        Route::Regressions => {
            let target = if request.query.is_empty() {
                "/v1/regressions".to_string()
            } else {
                format!("/v1/regressions?{}", request.query)
            };
            forward_any(ctx, &target)
        }
        Route::Metrics => {
            let body = GatewayMetrics {
                uptime_ms: ctx.started.elapsed().as_millis() as u64,
                mesh: ctx.mesh.report(0),
                tenants: ctx.tenants.enforcing().then(|| tenant_reports(ctx)),
            };
            Response::json(200, serde_json::to_string(&body).expect("body serializes"))
        }
        Route::Shutdown => {
            request_shutdown(ctx.shutdown, ctx.addr);
            Response::json(
                200,
                serde_json::to_string(&ShutdownBody {
                    shutting_down: true,
                })
                .expect("body serializes"),
            )
        }
        // The gateway holds no queue of its own; peers steal from
        // shards directly.
        Route::QueueInfo | Route::Steal => {
            Response::error(404, "the gateway holds no queue; address a shard directly")
        }
        // Streamed separately in `handle_connection`.
        Route::JobEvents(_) => Response::error(500, "events route must stream"),
        Route::Tune => Response::error(500, "tune route must stream"),
    }
}

/// Rebuild an upstream response for the client (body + status carried
/// verbatim; `Retry-After` preserved so backpressure propagates through
/// the gateway).
fn relay(upstream: xplain_serve::HttpResponse) -> Response {
    let mut response = Response::json(upstream.status, upstream.body.clone());
    if let Some(retry) = upstream.header("retry-after") {
        response = response.with_header("Retry-After", retry);
    }
    response
}

fn no_healthy() -> Response {
    Response::error(503, "no healthy shard in the mesh")
}

/// `POST /v1/jobs`: hash the spec exactly as every shard does, forward
/// to the ring owner, fail over down the preference list. When
/// enforcing, an anonymous submit is refused at the edge (401) and an
/// authenticated one carries its tenant id upstream, so the owning
/// shard applies that tenant's lane, caps, and submit rate — a
/// tenant-scoped 429 (Retry-After computed from *that tenant's*
/// backlog) relays through unchanged.
fn submit(ctx: &GatewayCtx<'_>, request: &Request, tenant: Option<&str>) -> Response {
    if ctx.tenants.enforcing() && tenant.is_none() {
        return Response::error(
            401,
            "missing API key (send 'Authorization: Bearer <api-key>')",
        );
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let spec: JobSpec = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("malformed JobSpec: {e:?}")),
    };
    let key = JobQueue::job_key(&spec, 0);
    let view = ctx.membership.view();
    let mut settled: Option<Response> = None;
    for peer in ring::preference(key, &view)
        .into_iter()
        .filter(|p| p.healthy)
    {
        let client = upstream_client(ctx, peer, tenant);
        match client.post_retry("/v1/jobs", body, ctx.config.upstream_attempts) {
            // Still 429 after the retry budget, or shard-side failure:
            // fail over (another shard computes the same bytes; the
            // shared store deduplicates).
            Ok(r) if r.status == 429 || r.status >= 500 => settled = Some(relay(r)),
            Ok(r) => {
                settled = Some(relay(r));
                break;
            }
            Err(_) => {} // unreachable mid-epoch; skip
        }
    }
    let response = settled.unwrap_or_else(no_healthy);
    record_submit(ctx, tenant, matches!(response.status, 200 | 202));
    response
}

/// Id-routed GET/POST (`/v1/jobs/{id}`, `/v1/jobs/{id}/cancel`): try the
/// ring owner first, then the rest of the preference list — after a
/// steal or a failover the job may live (or have completed into the
/// shared store via) another shard. 404 only once every healthy shard
/// said 404.
fn forward_by_id(ctx: &GatewayCtx<'_>, id: &str, method: &str, path: &str) -> Response {
    let Some(key) = JobQueue::parse_id(id) else {
        return Response::error(404, &format!("no job '{id}'"));
    };
    let view = ctx.membership.view();
    let mut last: Option<Response> = None;
    for peer in ring::preference(key, &view)
        .into_iter()
        .filter(|p| p.healthy)
    {
        let client = upstream_client(ctx, peer, None);
        let result = match method {
            "POST" => client.post(path, ""),
            _ => client.get(path),
        };
        match result {
            Ok(r) if r.status == 404 => last = Some(relay(r)),
            Ok(r) => return relay(r),
            Err(_) => {}
        }
    }
    last.unwrap_or_else(no_healthy)
}

/// Key-independent GET (`/v1/domains`): any healthy shard can answer.
fn forward_any(ctx: &GatewayCtx<'_>, path: &str) -> Response {
    let view = ctx.membership.view();
    for peer in view.healthy() {
        if let Ok(r) = upstream_client(ctx, peer, None).get(path) {
            return relay(r);
        }
    }
    no_healthy()
}

/// A unary upstream client; an authenticated tenant rides along as the
/// trusted `X-Xplain-Tenant` forwarding header.
fn upstream_client(ctx: &GatewayCtx<'_>, peer: &PeerState, tenant: Option<&str>) -> Client {
    let client = Client::new(peer.peer.addr).with_timeout(ctx.config.upstream_timeout);
    match tenant {
        Some(id) => client.with_tenant(id),
        None => client,
    }
}

/// `POST /v1/tune`: open the upstream tuning stream on any healthy
/// shard (the bank lives in the shared store, so each shard sees the
/// same corpus and — tuning being deterministic — produces the same
/// NDJSON bytes), then relay generation lines chunk-for-chunk.
/// Buffered upstream errors are relayed with their status; 429/5xx
/// fail over to the next shard, and `Retry-After` is preserved so
/// backpressure propagates.
fn proxy_tune(
    stream: &mut TcpStream,
    ctx: &GatewayCtx<'_>,
    request: &Request,
    tenant: Option<&str>,
) {
    // Tuning mutates the shipped heuristic corpus — it attributes work
    // just like a submit, so the edge demands identity too.
    if ctx.tenants.enforcing() && tenant.is_none() {
        let _ = Response::error(
            401,
            "missing API key (send 'Authorization: Bearer <api-key>')",
        )
        .write_to(stream);
        return;
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(e) => {
            let _ = Response::error(400, &e.to_string()).write_to(stream);
            return;
        }
    };
    let view = ctx.membership.view();
    let mut last: Option<Response> = None;
    for peer in view.healthy() {
        let mut client = Client::new(peer.peer.addr).with_timeout(ctx.config.stream_timeout);
        if let Some(id) = tenant {
            client = client.with_tenant(id);
        }
        match client.stream_post("/v1/tune", body) {
            Ok((200, _headers, mut lines)) => {
                if start_chunked(stream, 200, "application/x-ndjson").is_err() {
                    return;
                }
                loop {
                    match lines.next_line() {
                        Ok(Some(line)) => {
                            let mut payload = Vec::with_capacity(line.len() + 1);
                            payload.extend_from_slice(line.as_bytes());
                            payload.push(b'\n');
                            if write_chunk(stream, &payload).is_err() {
                                return; // client went away
                            }
                        }
                        Ok(None) => {
                            let _ = finish_chunked(stream);
                            return;
                        }
                        // Upstream truncated mid-tune: propagate by
                        // closing without a terminator.
                        Err(_) => return,
                    }
                }
            }
            Ok((status, headers, mut rest)) => {
                let upstream_body = rest
                    .collect_lines()
                    .map(|ls| ls.join("\n"))
                    .unwrap_or_default();
                let mut response = Response::json(status, upstream_body);
                if let Some(retry) = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .map(|(_, v)| v.as_str())
                {
                    response = response.with_header("Retry-After", retry);
                }
                if status == 429 || status >= 500 {
                    last = Some(response); // fail over
                } else {
                    let _ = response.write_to(stream);
                    return;
                }
            }
            Err(_) => {} // unreachable mid-epoch; skip
        }
    }
    let _ = last.unwrap_or_else(no_healthy).write_to(stream);
}

/// `GET /v1/jobs/{id}/events`: open the upstream stream on the owning
/// shard (failing over like any id-routed request), then relay NDJSON
/// lines chunk-for-chunk as they arrive. A clean upstream end gets a
/// clean chunked terminator; an upstream error mid-stream aborts the
/// client connection *without* one, so truncation stays visible as
/// truncation.
fn proxy_events(stream: &mut TcpStream, ctx: &GatewayCtx<'_>, id: &str) {
    let Some(key) = JobQueue::parse_id(id) else {
        let _ = Response::error(404, &format!("no job '{id}'")).write_to(stream);
        return;
    };
    let view = ctx.membership.view();
    let mut saw_404 = false;
    for peer in ring::preference(key, &view)
        .into_iter()
        .filter(|p| p.healthy)
    {
        let client = Client::new(peer.peer.addr).with_timeout(ctx.config.stream_timeout);
        let path = format!("/v1/jobs/{id}/events");
        match client.stream(&path) {
            Ok((200, mut events)) => {
                if start_chunked(stream, 200, "application/x-ndjson").is_err() {
                    return;
                }
                loop {
                    match events.next_line() {
                        Ok(Some(line)) => {
                            let mut payload = Vec::with_capacity(line.len() + 1);
                            payload.extend_from_slice(line.as_bytes());
                            payload.push(b'\n');
                            if write_chunk(stream, &payload).is_err() {
                                return; // watcher went away
                            }
                        }
                        Ok(None) => {
                            let _ = finish_chunked(stream);
                            return;
                        }
                        // Upstream truncated (shard died mid-stream):
                        // propagate by closing without a terminator.
                        Err(_) => return,
                    }
                }
            }
            Ok((404, _)) => saw_404 = true,
            Ok((_, _)) | Err(_) => {}
        }
    }
    let response = if saw_404 {
        Response::error(404, &format!("no job '{id}'"))
    } else {
        no_healthy()
    };
    let _ = response.write_to(stream);
}
