//! `runner` — drive the batch-analysis engine and the explanation
//! server from the command line.
//!
//! ```text
//! runner --manifest jobs.jsonl [--workers N] [--store DIR] [--json]
//!        [--watch] [--resume] [--deadline-ms N] [--max-analyzer-calls N]
//!        [--max-solver-iterations N]
//! runner --smoke [--watch] [--workers N] [--store DIR]
//! runner --list-domains | --emit-manifest | --version
//! runner serve [--addr HOST:PORT] [--workers N] [--http-threads N]
//!              [--capacity N] [--store DIR] [--journal DIR|--no-journal]
//!              [--shard-id ID] [--pace-ms N] [--peers HOST:PORT,...]
//!              [--tenants FILE]
//! runner mesh --shards N [--base-port P] [--addr HOST:PORT]
//!             [--store DIR] [--workers N] [--pace-ms N] [--capacity N]
//!             [--tenants FILE]
//! runner mesh --peers HOST:PORT,... [--addr HOST:PORT] [--tenants FILE]
//! runner tune --domain ID --store DIR [--generations N] [--population N]
//!             [--seed N] [--workers N] [--quick] [--watch] [--json]
//! runner bank replay --store DIR [--json]
//! runner gc --store DIR [--json]
//!
//!   --manifest PATH   JSONL manifest: one {"domain", "config", "seed"}
//!                     object per line (# starts a comment line; an
//!                     optional "budgets" object sets per-job limits)
//!   --workers N       worker threads (0 = auto) [default: 0]
//!   --store DIR       content-addressed result store; omit to disable
//!                     caching (and checkpointing)
//!   --json            print the machine-readable JSON outcome array
//!                     instead of the summary table
//!   --watch           stream session events as NDJSON on stdout while
//!                     jobs run: one {"job", "domain", "kind", "solver",
//!                     "event"} object per line, ending in a "finished"
//!                     event per job whose "solver" field carries the
//!                     job's solver-counter delta
//!   --resume          continue interrupted jobs from checkpoints in the
//!                     store (written after every event; cleared when a
//!                     job finishes naturally). Requires --store
//!   --deadline-ms N          per-job wall-clock budget (overrides
//!                            manifest budgets)
//!   --max-analyzer-calls N   per-job analyzer-invocation budget
//!   --max-solver-iterations N  per-job LP-iteration budget
//!   --list-domains    list registered domain ids and exit
//!   --emit-manifest   print an editable one-job-per-domain JSONL
//!                     manifest (default pipeline config) and exit
//!   --version         print the workspace version and exit
//!   --smoke           run the built-in one-job-per-domain manifest three
//!                     ways (1 worker, N workers, N workers against the
//!                     warm store) and fail unless all three agree
//!                     byte-for-byte and the third is pure cache hits.
//!                     With --watch, additionally exercises the event
//!                     stream headlessly: every event must serialize to
//!                     NDJSON, parse back, terminal lines must carry the
//!                     job's solver delta, and the streamed result must
//!                     match the batch result byte-for-byte.
//!                     Uses its own `runner-smoke-store/` scratch
//!                     subdirectory (under --store when given); existing
//!                     cache entries are never touched
//!
//! `runner serve` starts the HTTP explanation server (see DESIGN.md §8
//! for the API): --addr binds (port 0 = ephemeral), --workers sizes the
//! session worker pool, --http-threads the connection pool, --capacity
//! the admission cap (submissions beyond it get 429 + Retry-After), and
//! --store enables result caching, dedup and checkpoint/resume. A
//! store-backed server also keeps a write-ahead job journal (DESIGN.md
//! §10): accepted jobs are durable before the 202 goes out, and a
//! restart over the same store re-enqueues whatever a crashed
//! predecessor left unfinished. --journal overrides its directory
//! (default `<store>/journal`, per-shard when --shard-id is set);
//! --no-journal turns durability off. Stop the server with
//! `POST /v1/shutdown` — in-flight sessions checkpoint and resume
//! on resubmit. The mesh flags turn the server into one shard of a
//! distributed tier (DESIGN.md §9): --shard-id stamps store entries and
//! the metrics mesh block, --pace-ms sets a per-worker minimum service
//! time for freshly executed jobs (rate limiting), and --peers names
//! the full shard seed list — it starts the membership heartbeat and
//! the work-stealing loop against those peers. --tenants FILE loads a
//! tenant registry (DESIGN.md §12): submits then require
//! `Authorization: Bearer <api-key>`, each tenant gets a weighted
//! fair-share lane plus its configured caps and submit rate, and
//! `/v1/metrics` grows a per-tenant block. Without the flag the server
//! runs open (single anonymous tenant, pre-tenancy behavior).
//!
//! `runner mesh` runs the distributed tier itself. With `--shards N` it
//! spawns N local `runner serve` shard processes (ports `--base-port`
//! upward, shared `--store`, stealing enabled) and fronts them with the
//! gateway on --addr; `POST /v1/shutdown` on the gateway drains the
//! shards too. With `--peers` it only runs the gateway over shards that
//! are already running (started however the operator likes). --tenants
//! FILE makes the gateway the tier's authentication edge (and, with
//! `--shards`, hands the same registry to every spawned shard):
//! bearer keys are checked once at the gateway and the tenant id is
//! forwarded to the owning shard, which enforces that tenant's lane
//! weight, caps, and submit rate.
//!
//! `runner tune` closes the repair loop (DESIGN.md §11): it scores the
//! named domain's shipped heuristic against every banked adversarial
//! instance (plus fresh probes), then searches the domain's parameter
//! space for a candidate whose *worst-case* gap over that corpus is
//! strictly lower. `--quick` uses the CI-sized preset, `--watch`
//! streams one `{"generation":…}` NDJSON line per generation and a
//! terminal `{"report":…}` line (byte-identical to `POST /v1/tune`),
//! `--json` prints the bare report object. The tuner is deterministic:
//! `--workers N` changes wall-clock only, never a byte of output.
//!
//! `runner bank replay` is the regression gate: it recomputes every
//! banked instance's gap with the current oracle and fails (exit 1) if
//! any instance stopped exhibiting at least its recorded gap — either
//! the heuristic changed behavior or the oracle regressed. Entries no
//! current code can interpret (unknown schema version, unregistered
//! domain) are *skipped*, not failed; dropping them is `runner gc`'s
//! job.
//!
//! `runner gc --store DIR` deletes orphaned checkpoints (a `{key}.ckpt`
//! whose `{key}.json` result exists — what a killed `--resume` run
//! followed by a plain rerun strands) and stale temp files (a crash
//! between temp-write and rename strands a hidden `.*.tmp`), then
//! compacts every journal under the store (terminal history dropped,
//! live jobs kept) and sweeps the regression bank (entries with an
//! unknown schema version or an unregistered domain are removed).
//! `--json` prints one machine-readable object instead of the summary
//! line. Run it offline — no server may own the store meanwhile.
//!
//! Budget-stopped jobs report their partial result and finish reason in
//! the outcome; with `--store --resume` the next invocation continues
//! them mid-loop from the persisted checkpoint. Budgets count
//! *cumulatively* across resumed segments (a 2-call analyzer budget
//! already spent stays spent), so the resuming run must raise or drop
//! the budget to make progress.
//!
//! Exit status: 0 on success; 1 on any job error, determinism mismatch,
//! or cache inconsistency; 2 on usage errors.

use xplain_core::pipeline::PipelineConfig;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_mesh::{parse_peers, Gateway, GatewayConfig, Membership, Stealer, StealerConfig};
use xplain_runtime::{
    manifest_to_jsonl, parse_manifest, run_manifest_opts, watch_line, DomainRegistry, JobJournal,
    JobOutcome, JobSpec, ResultStore, RunOptions, SessionBudgets, SessionEvent, WatchLine,
};
use xplain_serve::{MeshStatus, Server, ServerConfig};
use xplain_tune::{generation_line, replay_bank, report_line, tune_with, TuneOptions};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Default)]
struct Args {
    manifest: Option<String>,
    workers: usize,
    store: Option<String>,
    json: bool,
    watch: bool,
    resume: bool,
    deadline_ms: Option<u64>,
    max_analyzer_calls: Option<usize>,
    max_solver_iterations: Option<u64>,
    list_domains: bool,
    emit_manifest: bool,
    smoke: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifest" => {
                args.manifest = Some(it.next().ok_or("--manifest needs a path")?.clone())
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a count")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--store" => args.store = Some(it.next().ok_or("--store needs a directory")?.clone()),
            "--json" => args.json = true,
            "--watch" => args.watch = true,
            "--resume" => args.resume = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a millisecond count")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--max-analyzer-calls" => {
                args.max_analyzer_calls = Some(
                    it.next()
                        .ok_or("--max-analyzer-calls needs a count")?
                        .parse()
                        .map_err(|e| format!("--max-analyzer-calls: {e}"))?,
                )
            }
            "--max-solver-iterations" => {
                args.max_solver_iterations = Some(
                    it.next()
                        .ok_or("--max-solver-iterations needs a count")?
                        .parse()
                        .map_err(|e| format!("--max-solver-iterations: {e}"))?,
                )
            }
            "--list-domains" => args.list_domains = true,
            "--emit-manifest" => args.emit_manifest = true,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.resume && args.store.is_none() {
        return Err("--resume requires --store (checkpoints live in the store)".into());
    }
    Ok(args)
}

const USAGE: &str = "\
runner — XPlain batch-analysis engine and explanation server

usage:
  runner --manifest jobs.jsonl [--workers N] [--store DIR] [--json]
         [--watch] [--resume] [--deadline-ms N] [--max-analyzer-calls N]
         [--max-solver-iterations N]
  runner --smoke [--watch] [--workers N] [--store DIR]
  runner --list-domains | --emit-manifest | --version
  runner serve [--addr HOST:PORT] [--workers N] [--http-threads N]
               [--capacity N] [--store DIR] [--journal DIR|--no-journal]
               [--shard-id ID] [--pace-ms N] [--peers HOST:PORT,...]
               [--tenants FILE]
  runner mesh --shards N [--base-port P] [--addr HOST:PORT]
              [--store DIR] [--workers N] [--pace-ms N] [--capacity N]
              [--tenants FILE]
  runner mesh --peers HOST:PORT,... [--addr HOST:PORT] [--tenants FILE]
  runner tune --domain ID --store DIR [--generations N] [--population N]
              [--seed N] [--workers N] [--quick] [--watch] [--json]
  runner bank replay --store DIR [--json]
  runner gc --store DIR [--json]
";

/// CLI budget flags folded into one override (None: manifest budgets
/// apply unchanged).
fn budgets_override(args: &Args) -> Option<SessionBudgets> {
    let budgets = SessionBudgets {
        deadline_ms: args.deadline_ms,
        max_analyzer_calls: args.max_analyzer_calls,
        max_solver_iterations: args.max_solver_iterations,
    };
    (!budgets.is_unlimited()).then_some(budgets)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("runner {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    match argv.first().map(String::as_str) {
        Some("serve") => std::process::exit(serve_main(&argv[1..])),
        Some("mesh") => std::process::exit(mesh_main(&argv[1..])),
        Some("tune") => std::process::exit(tune_main(&argv[1..])),
        Some("bank") => std::process::exit(bank_main(&argv[1..])),
        Some("gc") => std::process::exit(gc_main(&argv[1..])),
        _ => {}
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("runner: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let registry = DomainRegistry::builtin();

    if args.list_domains {
        print!("{}", list_domains_text(&registry));
        return;
    }

    if args.emit_manifest {
        println!(
            "# one job per registered domain; edit configs/seeds and feed back via --manifest"
        );
        println!(
            "# each job's pipeline seed derives from its \"seed\" field and its line position;"
        );
        println!(
            "# the \"seed\" inside \"config\" is overwritten at run time — edit the outer one"
        );
        print!("{}", manifest_to_jsonl(&default_manifest(&registry)));
        return;
    }

    if args.smoke {
        std::process::exit(run_smoke(&registry, &args));
    }

    let Some(path) = &args.manifest else {
        eprintln!("runner: --manifest, --smoke, or --list-domains required\n{USAGE}");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("runner: cannot read manifest '{path}': {e}");
            std::process::exit(2);
        }
    };
    let jobs = match parse_manifest(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("runner: {e}");
            std::process::exit(2);
        }
    };

    let store = args.store.as_ref().map(ResultStore::new);
    // `println!` takes the stdout lock per call, so concurrent workers
    // interleave whole lines, never fragments.
    let sink = |index: usize, event: &SessionEvent| {
        println!("{}", watch_line(index, &jobs[index].domain, event));
    };
    let opts = RunOptions {
        budgets_override: budgets_override(&args),
        resume: args.resume,
        sink: args.watch.then_some(&sink),
        origin: None,
    };
    let outcomes = run_manifest_opts(&registry, &jobs, store.as_ref(), args.workers, opts);

    if args.json {
        println!(
            "{}",
            serde_json::to_string(&outcomes).expect("outcomes serialize")
        );
    } else if !args.watch {
        print!("{}", summary_table(&outcomes));
    }

    if outcomes.iter().any(|o| o.error.is_some()) {
        std::process::exit(1);
    }
}

// ------------------------------------------------------------ subcommands

/// `runner serve` — start the HTTP explanation server and block until a
/// `POST /v1/shutdown` lands.
fn serve_main(argv: &[String]) -> i32 {
    let mut config = ServerConfig::default();
    let mut peers_csv: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let take = |it: &mut std::slice::Iter<'_, String>, what: &str| {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--addr" => take(&mut it, "--addr").map(|v| config.addr = v),
            "--workers" => take(&mut it, "--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.queue_workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--http-threads" => take(&mut it, "--http-threads").and_then(|v| {
                v.parse()
                    .map(|n| config.http_threads = n)
                    .map_err(|e| format!("--http-threads: {e}"))
            }),
            "--capacity" => take(&mut it, "--capacity").and_then(|v| {
                v.parse()
                    .map(|n| config.capacity = n)
                    .map_err(|e| format!("--capacity: {e}"))
            }),
            "--store" => take(&mut it, "--store").map(|v| config.store_dir = Some(v.into())),
            "--journal" => take(&mut it, "--journal").map(|v| config.journal_dir = Some(v.into())),
            "--no-journal" => {
                config.journal = false;
                Ok(())
            }
            "--shard-id" => take(&mut it, "--shard-id").map(|v| config.shard_id = Some(v)),
            "--pace-ms" => take(&mut it, "--pace-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.pace_ms = n)
                    .map_err(|e| format!("--pace-ms: {e}"))
            }),
            "--peers" => take(&mut it, "--peers").map(|v| peers_csv = Some(v)),
            "--tenants" => take(&mut it, "--tenants").map(|v| config.tenants = Some(v.into())),
            "--help" | "-h" => {
                print!("{}", USAGE);
                return 0;
            }
            other => Err(format!("unknown serve argument '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("runner serve: {e}\n{USAGE}");
            return 2;
        }
    }
    let peers = match peers_csv.as_deref().map(parse_peers).transpose() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("runner serve: --peers: {e}\n{USAGE}");
            return 2;
        }
    };
    // Mesh gauges exist whenever this server is a shard of a tier; the
    // membership heartbeat and the stealer keep them current, and
    // `GET /v1/metrics` reports them.
    let mesh = peers.as_ref().map(|_| {
        Arc::new(MeshStatus::new(
            config
                .shard_id
                .clone()
                .unwrap_or_else(|| config.addr.clone()),
        ))
    });
    config.mesh = mesh.clone();
    let registry = DomainRegistry::builtin();
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("runner serve: cannot bind '{}': {e}", config.addr);
            return 2;
        }
    };
    let self_addr = server.local_addr();
    println!(
        "runner serve: listening on http://{} ({} domains: {}; store: {})",
        self_addr,
        registry.len(),
        registry.ids().join(", "),
        config
            .store_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".into()),
    );
    println!("runner serve: POST /v1/shutdown for graceful shutdown");

    // Shard mode: membership heartbeat + work-stealing loop alongside
    // the server, torn down after it drains.
    let stop = Arc::new(AtomicBool::new(false));
    let mut mesh_threads = Vec::new();
    if let (Some(peers), Some(mesh)) = (peers, mesh) {
        println!(
            "runner serve: shard '{}' of a {}-peer mesh (heartbeat + stealer running)",
            mesh.shard_id(),
            peers.len()
        );
        let membership =
            Membership::bootstrap(peers, Duration::from_millis(250), Some(Arc::clone(&mesh)));
        mesh_threads.push(
            Arc::clone(&membership).start_heartbeat(Duration::from_millis(500), Arc::clone(&stop)),
        );
        let stealer = Stealer::new(self_addr, membership, mesh, StealerConfig::default());
        mesh_threads.push(stealer.start(Arc::clone(&stop)));
    }

    let outcome = server.run(&registry);
    stop.store(true, Ordering::Relaxed);
    for thread in mesh_threads {
        let _ = thread.join();
    }
    match outcome {
        Ok(()) => {
            println!("runner serve: drained and stopped");
            0
        }
        Err(e) => {
            eprintln!("runner serve: {e}");
            1
        }
    }
}

/// `runner mesh` — run the distributed tier: spawn local shard
/// processes (`--shards`) or front already-running ones (`--peers`),
/// then block in the gateway until `POST /v1/shutdown`.
fn mesh_main(argv: &[String]) -> i32 {
    let mut gateway_addr = "127.0.0.1:7080".to_string();
    let mut peers_csv: Option<String> = None;
    let mut shards: usize = 0;
    let mut base_port: u16 = 7101;
    let mut store: Option<String> = None;
    let mut workers: usize = 0;
    let mut pace_ms: u64 = 0;
    let mut capacity: usize = 64;
    let mut tenants: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let take = |it: &mut std::slice::Iter<'_, String>, what: &str| {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--addr" => take(&mut it, "--addr").map(|v| gateway_addr = v),
            "--peers" => take(&mut it, "--peers").map(|v| peers_csv = Some(v)),
            "--shards" => take(&mut it, "--shards").and_then(|v| {
                v.parse()
                    .map(|n| shards = n)
                    .map_err(|e| format!("--shards: {e}"))
            }),
            "--base-port" => take(&mut it, "--base-port").and_then(|v| {
                v.parse()
                    .map(|n| base_port = n)
                    .map_err(|e| format!("--base-port: {e}"))
            }),
            "--store" => take(&mut it, "--store").map(|v| store = Some(v)),
            "--workers" => take(&mut it, "--workers").and_then(|v| {
                v.parse()
                    .map(|n| workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--pace-ms" => take(&mut it, "--pace-ms").and_then(|v| {
                v.parse()
                    .map(|n| pace_ms = n)
                    .map_err(|e| format!("--pace-ms: {e}"))
            }),
            "--capacity" => take(&mut it, "--capacity").and_then(|v| {
                v.parse()
                    .map(|n| capacity = n)
                    .map_err(|e| format!("--capacity: {e}"))
            }),
            "--tenants" => take(&mut it, "--tenants").map(|v| tenants = Some(v)),
            "--help" | "-h" => {
                print!("{}", USAGE);
                return 0;
            }
            other => Err(format!("unknown mesh argument '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("runner mesh: {e}\n{USAGE}");
            return 2;
        }
    }
    if peers_csv.is_some() == (shards > 0) {
        eprintln!("runner mesh: exactly one of --peers or --shards is required\n{USAGE}");
        return 2;
    }

    // --shards: spawn the shard processes (this same binary, `serve`
    // mode) on consecutive ports over one shared store.
    let mut children: Vec<(std::process::Child, std::net::SocketAddr)> = Vec::new();
    let peers_arg = if shards > 0 {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("runner mesh: cannot locate own binary: {e}");
                return 1;
            }
        };
        let store_dir = store.clone().unwrap_or_else(|| "mesh-store".into());
        let addrs: Vec<String> = (0..shards)
            .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
            .collect();
        let all = addrs.join(",");
        for (i, addr) in addrs.iter().enumerate() {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("serve")
                .arg("--addr")
                .arg(addr)
                .arg("--store")
                .arg(&store_dir)
                .arg("--shard-id")
                .arg(format!("shard-{i}"))
                .arg("--peers")
                .arg(&all)
                .arg("--capacity")
                .arg(capacity.to_string());
            if workers > 0 {
                cmd.arg("--workers").arg(workers.to_string());
            }
            if pace_ms > 0 {
                cmd.arg("--pace-ms").arg(pace_ms.to_string());
            }
            // Shards enforce quotas, so they need the same registry the
            // gateway authenticates against.
            if let Some(file) = &tenants {
                cmd.arg("--tenants").arg(file);
            }
            match cmd.spawn() {
                Ok(child) => children.push((child, addr.parse().expect("shard addr parses"))),
                Err(e) => {
                    eprintln!("runner mesh: cannot spawn shard {i}: {e}");
                    shutdown_children(&mut children);
                    return 1;
                }
            }
        }
        all
    } else {
        peers_csv.expect("checked above")
    };
    let peers = match parse_peers(&peers_arg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("runner mesh: --peers: {e}\n{USAGE}");
            shutdown_children(&mut children);
            return 2;
        }
    };

    // Wait for spawned shards to start listening (bounded).
    for (_, addr) in &children {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::net::TcpStream::connect_timeout(addr, Duration::from_millis(200)).is_err() {
            if std::time::Instant::now() > deadline {
                eprintln!("runner mesh: shard {addr} never came up");
                shutdown_children(&mut children);
                return 1;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    let config = GatewayConfig {
        addr: gateway_addr.clone(),
        peers,
        tenants: tenants.clone().map(Into::into),
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::bind(config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("runner mesh: cannot bind '{gateway_addr}': {e}");
            shutdown_children(&mut children);
            return 2;
        }
    };
    println!(
        "runner mesh: gateway on http://{} over {} shard(s): {}",
        gateway.local_addr(),
        peers_arg.split(',').count(),
        peers_arg
    );
    println!("runner mesh: POST /v1/shutdown (on the gateway) drains the tier");
    let code = match gateway.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("runner mesh: {e}");
            1
        }
    };
    shutdown_children(&mut children);
    println!("runner mesh: drained and stopped");
    code
}

/// Gracefully stop spawned shard processes: ask each over HTTP, then
/// wait (kill only if the socket is already gone).
fn shutdown_children(children: &mut Vec<(std::process::Child, std::net::SocketAddr)>) {
    for (child, addr) in children.iter_mut() {
        let asked = xplain_serve::Client::new(*addr)
            .with_timeout(Duration::from_secs(5))
            .post("/v1/shutdown", "")
            .is_ok();
        if !asked {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
    children.clear();
}

/// `runner tune` — search the domain's parameter space for a repair
/// whose worst-case gap over the regression bank (plus fresh probes)
/// strictly beats the shipped heuristic's.
fn tune_main(argv: &[String]) -> i32 {
    let mut domain_id: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut opts = TuneOptions::default();
    let mut quick = false;
    let mut watch = false;
    let mut json = false;
    let mut generations: Option<usize> = None;
    let mut population: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let take = |it: &mut std::slice::Iter<'_, String>, what: &str| {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--domain" => take(&mut it, "--domain").map(|v| domain_id = Some(v)),
            "--store" => take(&mut it, "--store").map(|v| store_dir = Some(v)),
            "--generations" => take(&mut it, "--generations").and_then(|v| {
                v.parse()
                    .map(|n| generations = Some(n))
                    .map_err(|e| format!("--generations: {e}"))
            }),
            "--population" => take(&mut it, "--population").and_then(|v| {
                v.parse()
                    .map(|n| population = Some(n))
                    .map_err(|e| format!("--population: {e}"))
            }),
            "--seed" => take(&mut it, "--seed").and_then(|v| {
                v.parse()
                    .map(|n| seed = Some(n))
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--workers" => take(&mut it, "--workers").and_then(|v| {
                v.parse()
                    .map(|n| workers = Some(n))
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--watch" => {
                watch = true;
                Ok(())
            }
            "--json" => {
                json = true;
                Ok(())
            }
            "--help" | "-h" => {
                print!("{}", USAGE);
                return 0;
            }
            other => Err(format!("unknown tune argument '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("runner tune: {e}\n{USAGE}");
            return 2;
        }
    }
    let (Some(domain_id), Some(dir)) = (domain_id, store_dir) else {
        eprintln!("runner tune: --domain ID and --store DIR required\n{USAGE}");
        return 2;
    };
    let registry = DomainRegistry::builtin();
    let Some(domain) = registry.get(&domain_id) else {
        eprintln!("runner tune: unknown domain '{domain_id}' (try --list-domains)\n{USAGE}");
        return 2;
    };
    if quick {
        opts = TuneOptions::quick();
    }
    if let Some(n) = generations {
        opts.generations = n.max(1);
    }
    if let Some(n) = population {
        opts.population = n.max(2);
    }
    if let Some(s) = seed {
        opts.seed = s;
    }
    if let Some(w) = workers {
        opts.workers = w.max(1);
    }

    let records = ResultStore::new(&dir).bank().entries();
    let on_generation = |stat: &xplain_tune::GenerationStat| {
        if watch {
            println!("{}", generation_line(stat));
        }
    };
    let report = match tune_with(domain, &records, &opts, on_generation) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("runner tune: {e}");
            return 1;
        }
    };

    if watch {
        println!("{}", report_line(&report));
    } else if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        let pairs: Vec<String> = report
            .param_names
            .iter()
            .zip(&report.best.params)
            .map(|(name, v)| format!("{name}={v}"))
            .collect();
        println!(
            "tune: domain '{}' — {} bank instance(s), {} probe(s), {} skipped",
            report.domain, report.bank_instances, report.probe_points, report.skipped_instances
        );
        println!(
            "tune: worst-case gap {:.6} (shipped) → {:.6} (best candidate): {}",
            report.default_fitness,
            report.best.fitness,
            if report.improved {
                "improved"
            } else {
                "no strict improvement"
            }
        );
        println!("tune: best params: {}", pairs.join(", "));
        if report.still_defeated.is_empty() {
            println!("tune: no banked instance defeats the best candidate");
        } else {
            println!(
                "tune: {} banked instance(s) still defeat it: {}",
                report.still_defeated.len(),
                report.still_defeated.join(", ")
            );
        }
    }
    0
}

/// `runner bank replay` — the regression gate: recompute every banked
/// instance's gap with the current oracle; exit 1 on any regression.
fn bank_main(argv: &[String]) -> i32 {
    let Some(("replay", rest)) = argv
        .split_first()
        .map(|(first, rest)| (first.as_str(), rest))
    else {
        eprintln!("runner bank: expected a 'replay' subcommand\n{USAGE}");
        return 2;
    };
    let mut store_dir: Option<String> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_dir = it.next().cloned(),
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                return 0;
            }
            other => {
                eprintln!("runner bank replay: unknown argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(dir) = store_dir else {
        eprintln!("runner bank replay: --store DIR required\n{USAGE}");
        return 2;
    };
    let registry = DomainRegistry::builtin();
    let bank = ResultStore::new(&dir).bank();
    let report = replay_bank(&registry, &bank);

    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("replay report serializes")
        );
    } else {
        for entry in &report.entries {
            if entry.status == "fail" {
                eprintln!(
                    "bank replay FAIL: {} ({}): recorded gap {:.6}, recomputed {}",
                    entry.id,
                    entry.domain,
                    entry.recorded_gap,
                    entry
                        .recomputed_gap
                        .map(|g| format!("{g:.6}"))
                        .unwrap_or_else(|| "non-finite".into()),
                );
            }
        }
        println!(
            "bank replay: {}/{} passed, {} failed, {} skipped (store: {dir}) — {}",
            report.passed,
            report.total,
            report.failed,
            report.skipped,
            if report.pass { "PASS" } else { "FAIL" },
        );
    }
    if report.pass {
        0
    } else {
        1
    }
}

/// The `runner gc --json` output — one object so scripts (and the CI
/// smoke) parse one line instead of scraping the human text.
#[derive(serde::Serialize)]
struct GcOutput {
    checkpoints_removed: usize,
    temp_files_removed: usize,
    bytes_reclaimed: u64,
    journals_compacted: usize,
    journal_bytes_reclaimed: u64,
    bank_entries_removed: usize,
    bank_bytes_reclaimed: u64,
}

/// Journal directories living under a store: the standalone server's
/// `journal/` plus any per-shard `journal-<id>/` dirs.
fn find_journal_dirs(store_dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let Ok(entries) = std::fs::read_dir(store_dir) else {
        return Vec::new();
    };
    let mut dirs: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n == "journal" || n.starts_with("journal-"))
        })
        .collect();
    dirs.sort();
    dirs
}

/// `runner gc` — sweep orphaned checkpoints and stale temp files from a
/// store, and compact its write-ahead journal(s). Offline maintenance:
/// run it while no server owns the store (a live server compacts its
/// own journal as it rotates).
fn gc_main(argv: &[String]) -> i32 {
    let mut store_dir: Option<String> = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_dir = it.next().cloned(),
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                return 0;
            }
            other => {
                eprintln!("runner gc: unknown argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(dir) = store_dir else {
        eprintln!("runner gc: --store DIR required\n{USAGE}");
        return 2;
    };
    let store = ResultStore::new(&dir);
    let report = store.gc();

    // Opening a journal replays and compacts it (terminal history is
    // dropped, live jobs are carried forward); `bytes_compacted` is what
    // that freed. Live jobs stay journaled — gc never forgets work.
    let mut journals_compacted = 0usize;
    let mut journal_bytes_reclaimed = 0u64;
    for journal_dir in find_journal_dirs(std::path::Path::new(&dir)) {
        match JobJournal::open(&journal_dir) {
            Ok(journal) => {
                journal.compact();
                journal_bytes_reclaimed += journal.stats().bytes_compacted;
                journals_compacted += 1;
            }
            Err(e) => {
                eprintln!(
                    "runner gc: cannot open journal '{}': {e}",
                    journal_dir.display()
                );
                return 1;
            }
        }
    }

    // Bank hygiene rides the same offline pass: entries no current
    // deployment can interpret (unknown schema version, unregistered
    // domain) would sit as permanent replay `skipped` noise otherwise.
    let swept = store.bank().sweep(&DomainRegistry::builtin().ids());

    if json {
        let out = GcOutput {
            checkpoints_removed: report.checkpoints_removed,
            temp_files_removed: report.temp_files_removed,
            bytes_reclaimed: report.bytes_reclaimed,
            journals_compacted,
            journal_bytes_reclaimed,
            bank_entries_removed: swept.entries_removed,
            bank_bytes_reclaimed: swept.bytes_reclaimed,
        };
        println!("{}", serde_json::to_string(&out).expect("gc serializes"));
    } else {
        println!(
            "gc: removed {} orphaned checkpoint(s) and {} stale temp file(s), reclaimed {} bytes; \
             compacted {} journal(s), reclaimed {} journal bytes; \
             swept {} uninterpretable bank entr(ies), reclaimed {} bank bytes (store: {dir})",
            report.checkpoints_removed,
            report.temp_files_removed,
            report.bytes_reclaimed,
            journals_compacted,
            journal_bytes_reclaimed,
            swept.entries_removed,
            swept.bytes_reclaimed,
        );
    }
    0
}

// ------------------------------------------------------------- batch mode

/// Registered ids (sorted — the registry is id-keyed) with descriptions
/// aligned to the longest id, so the listing is stable and columnar no
/// matter what order domains were registered in.
fn list_domains_text(registry: &DomainRegistry) -> String {
    let ids = registry.ids();
    let width = ids.iter().map(|id| id.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    for id in ids {
        let d = registry.get(&id).expect("listed id resolves");
        out.push_str(&format!("{id:<width$}  {}\n", d.description()));
    }
    out
}

/// Render outcomes as a fixed-width summary table.
fn summary_table(outcomes: &[JobOutcome]) -> String {
    let mut out = String::new();
    out.push_str(
        "  job  domain    seed              cache  findings  rejected  oracle-evals  lp-solves  warm%  ms\n",
    );
    for o in outcomes {
        let (findings, rejected, evals) = o
            .result
            .as_ref()
            .map(|r| (r.findings.len(), r.rejected, r.oracle_evaluations))
            .unwrap_or((0, 0, 0));
        let warm_pct = if o.solver.lp_solves > 0 {
            100.0 * o.solver.lp_warm_hits as f64 / o.solver.lp_solves as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<4} {:<9} {:016x}  {:<5} {:<9} {:<9} {:<13} {:<10} {:<6.1} {}\n",
            o.index,
            o.domain,
            o.derived_seed,
            if o.cache_hit { "hit" } else { "miss" },
            findings,
            rejected,
            evals,
            o.solver.lp_solves,
            warm_pct,
            o.wall_time_ms,
        ));
        if let Some(finish) = &o.finish {
            if !finish.natural {
                // Budgets are cumulative across resumed segments, so
                // continuing needs --resume AND a raised (or dropped)
                // budget — rerunning with the same one re-finishes
                // instantly with zero progress.
                out.push_str(&format!(
                    "       STOPPED: {:?} after {} events{} — rerun with --store --resume and a higher (or no) budget to continue\n",
                    finish.reason,
                    finish.events,
                    if finish.resumed { " (resumed)" } else { "" },
                ));
            }
        }
        if let Some(err) = &o.error {
            out.push_str(&format!("       ERROR: {err}\n"));
        }
    }
    out
}

/// CI-sized pipeline config for the smoke manifest.
fn smoke_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        significance: SignificanceParams {
            pairs: 60,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 120,
            threads: 2,
            ..Default::default()
        },
        coverage_samples: 300,
        ..Default::default()
    }
}

/// One default-config job per registered domain.
fn default_manifest(registry: &DomainRegistry) -> Vec<JobSpec> {
    registry
        .ids()
        .into_iter()
        .map(|id| JobSpec {
            domain: id,
            config: PipelineConfig::default(),
            seed: 7,
            budgets: SessionBudgets::unlimited(),
        })
        .collect()
}

/// The zero-setup self-check gating CI: one job per registered domain,
/// run three ways.
///
/// 1. serial (1 worker, no store) — the reference;
/// 2. parallel (N workers, cold store) — must match 1 byte-for-byte;
/// 3. parallel again (warm store) — must be all cache hits and match 2.
///
/// With `--watch`, a fourth streaming pass re-runs the manifest serially
/// with an NDJSON event sink: every event line must parse back, every
/// job must end in a natural `finished` event carrying its solver-counter
/// delta, and the streamed terminal results must equal the batch results
/// byte-for-byte.
fn run_smoke(registry: &DomainRegistry, args: &Args) -> i32 {
    let jobs: Vec<JobSpec> = registry
        .ids()
        .into_iter()
        .map(|id| JobSpec {
            domain: id,
            config: smoke_config(),
            seed: 0x5A05E,
            budgets: SessionBudgets::unlimited(),
        })
        .collect();
    println!(
        "smoke: {} jobs (one per domain: {})",
        jobs.len(),
        registry.ids().join(", ")
    );
    let workers = if args.workers == 0 { 4 } else { args.workers };

    // The smoke needs a cold store, so it owns a dedicated scratch
    // subdirectory (under --store's path when given) and never touches
    // the user's actual cache entries.
    let base = args.store.clone().unwrap_or_else(|| "target".into());
    let store_dir = std::path::Path::new(&base).join("runner-smoke-store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ResultStore::new(&store_dir);

    let serial = run_manifest_opts(registry, &jobs, None, 1, RunOptions::default());
    let parallel = run_manifest_opts(
        registry,
        &jobs,
        Some(&store),
        workers,
        RunOptions::default(),
    );
    let cached = run_manifest_opts(
        registry,
        &jobs,
        Some(&store),
        workers,
        RunOptions::default(),
    );

    print!("{}", summary_table(&parallel));

    let mut failures = 0;
    for ((s, p), c) in serial.iter().zip(&parallel).zip(&cached) {
        let id = format!("job {} ({})", s.index, s.domain);
        for o in [s, p, c] {
            if let Some(err) = &o.error {
                eprintln!("smoke FAIL: {id}: {err}");
                failures += 1;
            }
        }
        let sj = serde_json::to_string(&s.result).expect("result serializes");
        let pj = serde_json::to_string(&p.result).expect("result serializes");
        let cj = serde_json::to_string(&c.result).expect("result serializes");
        if sj != pj {
            eprintln!("smoke FAIL: {id}: 1-worker and {workers}-worker results differ");
            failures += 1;
        }
        if pj != cj {
            eprintln!("smoke FAIL: {id}: cached result differs from computed result");
            failures += 1;
        }
        if !c.cache_hit {
            eprintln!("smoke FAIL: {id}: second store pass was not a cache hit");
            failures += 1;
        }
        if s.result.as_ref().is_none_or(|r| r.findings.is_empty()) {
            eprintln!("smoke FAIL: {id}: pipeline found no significant subspace");
            failures += 1;
        }
    }

    if args.watch {
        failures += run_streaming_smoke(registry, &jobs, &serial);
    }

    if failures == 0 {
        println!(
            "smoke OK: serial ≡ {workers}-worker ≡ cached for all {} jobs{} (store: {})",
            jobs.len(),
            if args.watch { " ≡ streamed" } else { "" },
            store_dir.display()
        );
        0
    } else {
        eprintln!("smoke: {failures} failure(s)");
        1
    }
}

/// The `--watch --smoke` gate: exercise the event stream headlessly.
fn run_streaming_smoke(
    registry: &DomainRegistry,
    jobs: &[JobSpec],
    reference: &[JobOutcome],
) -> i32 {
    use std::sync::Mutex;

    println!("smoke: streaming pass (--watch): NDJSON event-stream checks");
    let lines: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let sink = |index: usize, event: &SessionEvent| {
        let line = watch_line(index, &jobs[index].domain, event);
        println!("{line}");
        lines.lock().expect("line log").push(line);
    };
    let opts = RunOptions {
        budgets_override: None,
        resume: false,
        sink: Some(&sink),
        origin: None,
    };
    let streamed = run_manifest_opts(registry, jobs, None, 1, opts);

    let mut failures = 0;
    let lines = lines.into_inner().expect("line log");
    if lines.is_empty() {
        eprintln!("smoke FAIL: streaming pass emitted no events");
        failures += 1;
    }
    // Every NDJSON line must parse back into a typed event; terminal
    // lines must carry the job's solver-counter delta (the field the
    // batch table prints but the stream used to drop).
    let mut finished_per_job = vec![0usize; jobs.len()];
    let mut terminal_solver: Vec<Option<xplain_runtime::SolverCounters>> = vec![None; jobs.len()];
    for line in &lines {
        match serde_json::from_str::<WatchLine>(line) {
            Ok(parsed) => {
                if parsed.kind == "finished" {
                    finished_per_job[parsed.job] += 1;
                    if parsed.solver.is_none() {
                        eprintln!(
                            "smoke FAIL: terminal watch line lacks the solver delta\n  {line}"
                        );
                        failures += 1;
                    }
                    terminal_solver[parsed.job] = parsed.solver;
                } else if parsed.solver.is_some() {
                    eprintln!(
                        "smoke FAIL: non-terminal watch line carries a solver delta\n  {line}"
                    );
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("smoke FAIL: watch line does not parse back: {e:?}\n  {line}");
                failures += 1;
            }
        }
    }
    for (i, count) in finished_per_job.iter().enumerate() {
        if *count != 1 {
            eprintln!("smoke FAIL: job {i} emitted {count} terminal events (expected exactly 1)");
            failures += 1;
        }
    }
    // The streamed terminal results must equal the batch results, and
    // the streamed solver delta must be the outcome's.
    for (s, r) in streamed.iter().zip(reference) {
        let id = format!("job {} ({})", s.index, s.domain);
        match &s.finish {
            Some(finish) if finish.natural => {}
            other => {
                eprintln!("smoke FAIL: {id}: streamed run did not finish naturally: {other:?}");
                failures += 1;
            }
        }
        let sj = serde_json::to_string(&s.result).expect("result serializes");
        let rj = serde_json::to_string(&r.result).expect("result serializes");
        if sj != rj {
            eprintln!("smoke FAIL: {id}: streamed result differs from batch result");
            failures += 1;
        }
        if terminal_solver[s.index].is_some_and(|solver| solver != s.solver) {
            eprintln!("smoke FAIL: {id}: terminal line solver delta differs from the outcome's");
            failures += 1;
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_domains_output_is_sorted_and_aligned() {
        let registry = DomainRegistry::builtin();
        let text = list_domains_text(&registry);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), registry.len());
        // Sorted by id.
        let ids: Vec<&str> = lines
            .iter()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "listing must be sorted by id");
        // Descriptions start at one aligned column.
        let starts: Vec<usize> = lines
            .iter()
            .map(|l| {
                let id_len = l.split_whitespace().next().unwrap().len();
                l[id_len..]
                    .find(|c: char| !c.is_whitespace())
                    .map(|o| id_len + o)
                    .unwrap()
            })
            .collect();
        assert!(
            starts.windows(2).all(|w| w[0] == w[1]),
            "description columns not aligned: {starts:?}\n{text}"
        );
    }

    #[test]
    fn budget_flags_fold_into_an_override() {
        let mut args = Args::default();
        assert!(budgets_override(&args).is_none());
        args.deadline_ms = Some(500);
        args.max_analyzer_calls = Some(3);
        let b = budgets_override(&args).unwrap();
        assert_eq!(b.deadline_ms, Some(500));
        assert_eq!(b.max_analyzer_calls, Some(3));
        assert_eq!(b.max_solver_iterations, None);
    }

    #[test]
    fn arg_parser_accepts_the_batch_surface() {
        let argv: Vec<String> = ["--manifest", "jobs.jsonl", "--workers", "3", "--watch"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = parse_args(&argv).unwrap();
        assert_eq!(args.manifest.as_deref(), Some("jobs.jsonl"));
        assert_eq!(args.workers, 3);
        assert!(args.watch);
        // --resume without --store is a usage error.
        let argv: Vec<String> = vec!["--resume".into()];
        assert!(parse_args(&argv).is_err());
    }
}
