//! Branch-and-bound regression pins for the sched/vbp MILP encodings.
//!
//! Objectives alone cannot catch a warm-start bug that silently explores
//! extra nodes — the answer stays right, the solver just gets slower. So
//! these tests pin the *node counts* (and warm-hit accounting) of the
//! assignment/packing MILPs on fixed instances. The counts are a property
//! of the branching rule + LP vertex selection, both deterministic; if a
//! solver change moves them, this file is the reviewable record of the
//! before/after.

use xplain_domains::sched::{self, SchedInstance};
use xplain_domains::vbp::{self, VbpInstance};

#[test]
fn sched_tight_family_nodes_pinned() {
    // (machines, expected optimal makespan 3m, pinned node count)
    for (machines, expected_nodes) in [(2usize, PIN_SCHED_M2), (3, PIN_SCHED_M3)] {
        let inst = SchedInstance::lpt_tight(machines);
        let (schedule, stats) = sched::optimal_milp_stats(&inst).expect("solvable");
        assert!(
            (schedule.makespan - (3 * machines) as f64).abs() < 1e-6,
            "m={machines}: makespan {}",
            schedule.makespan
        );
        assert_eq!(
            stats.nodes, expected_nodes,
            "m={machines}: node count drifted (stats: {stats:?})"
        );
        // Warm-start accounting must hold exactly: one cold root solve,
        // everything else warm.
        assert_eq!(stats.lp.cold_starts, 1, "m={machines}: {stats:?}");
        assert_eq!(
            stats.lp.warm_hits + 1,
            stats.lp.solves,
            "m={machines}: {stats:?}"
        );
    }
}

#[test]
fn sched_two_machine_example_nodes_pinned() {
    let inst = SchedInstance::two_machine_example();
    let (schedule, stats) = sched::optimal_milp_stats(&inst).expect("solvable");
    assert!(
        (schedule.makespan - 6.0).abs() < 1e-6,
        "{}",
        schedule.makespan
    );
    assert_eq!(stats.nodes, PIN_SCHED_2MX, "node count drifted: {stats:?}");
}

#[test]
fn vbp_sec2_nodes_pinned() {
    // §2's 4-ball instance (1%, 49%, 51%, 51%): optimal is 2 bins.
    let inst = VbpInstance::sec2_example();
    let (packing, stats) = vbp::optimal_milp_stats(&inst, 3).expect("solvable");
    assert_eq!(packing.bins_used, 2);
    assert_eq!(stats.nodes, PIN_VBP_SEC2, "node count drifted: {stats:?}");
    assert_eq!(stats.lp.cold_starts, 1, "{stats:?}");
}

#[test]
fn vbp_mixed_instance_nodes_pinned() {
    // A 6-ball single-dimension instance needing 3 bins.
    let inst = VbpInstance {
        bin_capacity: vec![1.0],
        balls: vec![
            vec![0.55],
            vec![0.50],
            vec![0.45],
            vec![0.40],
            vec![0.35],
            vec![0.30],
        ],
    };
    let (packing, stats) = vbp::optimal_milp_stats(&inst, 4).expect("solvable");
    assert_eq!(packing.bins_used, 3);
    assert_eq!(stats.nodes, PIN_VBP_MIXED, "node count drifted: {stats:?}");
}

#[test]
fn node_counts_are_deterministic() {
    // The pins above only mean something if repeated runs agree.
    let inst = SchedInstance::lpt_tight(2);
    let (_, a) = sched::optimal_milp_stats(&inst).unwrap();
    let (_, b) = sched::optimal_milp_stats(&inst).unwrap();
    assert_eq!(a, b);
}

// --- The pinned values -----------------------------------------------------
// Recorded from the revised-solver branch-and-bound. An increase means warm
// starts stopped reproducing the reference exploration; a decrease is a
// (welcome, but reviewable) change of branching behavior. Re-pinned when
// the sparse-factorization engine with devex pricing and the adaptive
// refactorization cadence landed: devex picks different LP vertices than
// Dantzig did, and the cadence moves where exact recomputation replaces
// maintained costs, so the trees moved on most instances (sched m=2
// 15 → 7, m=3 87 → 53; vbp_sec2 13 → 5, vbp_mixed 35 → 41).
const PIN_SCHED_M2: u64 = 7;
const PIN_SCHED_M3: u64 = 53;
const PIN_SCHED_2MX: u64 = 7;
const PIN_VBP_SEC2: u64 = 5;
const PIN_VBP_MIXED: u64 = 41;
