//! Vector bin packing: the first-fit running example (§2, Fig. 1c, Fig. 2).

pub mod dsl;
pub mod exact;
pub mod heuristics;
pub mod instance;

pub use dsl::VbpDsl;
pub use exact::{optimal, optimal_milp, optimal_milp_stats};
pub use heuristics::{best_fit, first_fit, first_fit_decreasing, first_fit_deferred};
pub use instance::{Packing, VbpInstance};
