//! Fig. 4b: vector bin packing in the XPlain DSL.
//!
//! * **BALLS** — one pick-source per ball; the ball's size is its emitted
//!   volume (an OuterVar for analysis), and pick behavior enforces "each
//!   ball can only be placed in one bin";
//! * **BINS** — one split node per bin whose drain edge into the
//!   *Occupancy* sink is capacity-limited to the bin size (the  nodes
//!   with limited outgoing capacity in the figure).
//!
//! Heuristic (FF) and benchmark (optimal) packings are mapped onto the
//! ball→bin edges with [`VbpDsl::assignment`]; the explainer diffs those
//! edges to produce Fig. 4b's red/blue heat-map (e.g. "FF places a large
//! ball B0 in the first bin, causing it to have to place the last ball
//! differently").
//!
//! The DSL model is one-dimensional (the figure's setting); the
//! multi-dimensional domain logic lives in [`crate::vbp`] proper.

use crate::vbp::instance::{Packing, VbpInstance};
use xplain_flownet::{EdgeId, FlowNet, NodeId, SourceInput, SourceKind};

/// DSL encoding of a (one-dimensional) VBP instance.
#[derive(Debug, Clone)]
pub struct VbpDsl {
    pub net: FlowNet,
    /// Source node per ball.
    pub ball_nodes: Vec<NodeId>,
    /// `ball_bin_edges[i][j]`: ball i → bin j edge.
    pub ball_bin_edges: Vec<Vec<EdgeId>>,
    /// Bin → occupancy drain edges.
    pub bin_drain_edges: Vec<EdgeId>,
    pub num_bins: usize,
}

impl VbpDsl {
    /// Build the Fig. 4b network for `n_balls` balls and `n_bins` bins with
    /// the given bin capacity; ball sizes range over `[0, capacity]`.
    pub fn build(n_balls: usize, n_bins: usize, capacity: f64) -> Self {
        let mut net = FlowNet::new(format!("vbp[{n_balls}x{n_bins}]"));
        let occupancy = net.sink("Occupancy", "SINKS", 1.0);

        let mut bin_nodes = Vec::with_capacity(n_bins);
        let mut bin_drain_edges = Vec::with_capacity(n_bins);
        for j in 0..n_bins {
            let node = net.split(format!("Bin{j}"), "BINS");
            let drain = net
                .edge(node, occupancy, format!("Bin{j}|drain"))
                .capacity(capacity)
                .id();
            bin_nodes.push(node);
            bin_drain_edges.push(drain);
        }

        let mut ball_nodes = Vec::with_capacity(n_balls);
        let mut ball_bin_edges = Vec::with_capacity(n_balls);
        for i in 0..n_balls {
            let src = net.source(
                format!("B{i}"),
                "BALLS",
                SourceKind::Pick,
                SourceInput::Var {
                    lo: 0.0,
                    hi: capacity,
                },
            );
            ball_nodes.push(src);
            let mut row = Vec::with_capacity(n_bins);
            for (j, &bin) in bin_nodes.iter().enumerate() {
                let e = net.edge(src, bin, format!("B{i}->Bin{j}")).id();
                row.push(e);
            }
            ball_bin_edges.push(row);
        }

        VbpDsl {
            net,
            ball_nodes,
            ball_bin_edges,
            bin_drain_edges,
            num_bins: n_bins,
        }
    }

    /// Map a packing of `inst` onto DSL edge flows (ball i's size flows on
    /// its assigned ball→bin edge). Packings using more bins than the DSL
    /// has are truncated modulo nothing — they return `None`.
    pub fn assignment(&self, inst: &VbpInstance, packing: &Packing) -> Option<Vec<f64>> {
        if inst.num_dims() != 1 || inst.num_balls() != self.ball_nodes.len() {
            return None;
        }
        if packing.assignment.iter().any(|&b| b >= self.num_bins) {
            return None;
        }
        let mut flows = vec![0.0; self.net.num_edges()];
        let mut bin_load = vec![0.0; self.num_bins];
        for (i, &bin) in packing.assignment.iter().enumerate() {
            let size = inst.balls[i][0];
            flows[self.ball_bin_edges[i][bin].0] = size;
            bin_load[bin] += size;
        }
        for (j, &e) in self.bin_drain_edges.iter().enumerate() {
            flows[e.0] = bin_load[j];
        }
        Some(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbp::exact::optimal;
    use crate::vbp::heuristics::first_fit;

    #[test]
    fn structure_matches_fig4b() {
        let dsl = VbpDsl::build(4, 3, 1.0);
        dsl.net.validate().unwrap();
        assert_eq!(dsl.ball_nodes.len(), 4);
        assert_eq!(dsl.bin_drain_edges.len(), 3);
        assert_eq!(dsl.net.num_edges(), 4 * 3 + 3);
    }

    #[test]
    fn ff_and_optimal_assignments_check_out() {
        let inst = VbpInstance::sec2_example();
        let dsl = VbpDsl::build(4, 3, 1.0);
        let ff = first_fit(&inst);
        let opt = optimal(&inst);
        let ff_flows = dsl.assignment(&inst, &ff).unwrap();
        let opt_flows = dsl.assignment(&inst, &opt).unwrap();
        assert_eq!(dsl.net.check_assignment(&ff_flows, 1e-9), None);
        assert_eq!(dsl.net.check_assignment(&opt_flows, 1e-9), None);
        // FF occupies three bins, OPT two.
        let used = |flows: &[f64]| {
            dsl.bin_drain_edges
                .iter()
                .filter(|e| flows[e.0] > 1e-9)
                .count()
        };
        assert_eq!(used(&ff_flows), 3);
        assert_eq!(used(&opt_flows), 2);
    }

    #[test]
    fn oversized_packing_rejected() {
        let inst = VbpInstance::sec2_example();
        let dsl = VbpDsl::build(4, 2, 1.0); // only 2 bins in the DSL
        let ff = first_fit(&inst); // uses 3 bins
        assert!(dsl.assignment(&inst, &ff).is_none());
    }

    #[test]
    fn wrong_ball_count_rejected() {
        let inst = VbpInstance::one_dim(&[0.5]);
        let dsl = VbpDsl::build(4, 3, 1.0);
        let p = first_fit(&inst);
        assert!(dsl.assignment(&inst, &p).is_none());
    }

    #[test]
    fn occupancy_objective_counts_total_size() {
        let inst = VbpInstance::sec2_example();
        let dsl = VbpDsl::build(4, 3, 1.0);
        let flows = dsl.assignment(&inst, &first_fit(&inst)).unwrap();
        let total: f64 = inst.balls.iter().map(|b| b[0]).sum();
        assert!((dsl.net.objective_of(&flows) - total).abs() < 1e-9);
    }
}
