//! Bin-packing heuristics: first-fit (the paper's running example), plus
//! best-fit and first-fit-decreasing — the variants §2 names as harder to
//! reason about ("best fit or first fit decreasing, as evidenced by the
//! years of research by theoreticians in this space").

use crate::vbp::instance::{Packing, VbpInstance};

/// Does `ball` fit in a bin with `remaining` capacity (per dimension)?
fn fits(ball: &[f64], remaining: &[f64], tol: f64) -> bool {
    ball.iter().zip(remaining).all(|(s, r)| *s <= *r + tol)
}

/// First-fit: place each ball (in input order) into the first bin it fits;
/// open a new bin when none fits (Fig. 1c's heuristic).
pub fn first_fit(inst: &VbpInstance) -> Packing {
    place_in_order(
        inst,
        &(0..inst.num_balls()).collect::<Vec<_>>(),
        BinChoice::First,
    )
}

/// Best-fit: place each ball into the *fullest* bin it fits (the one whose
/// remaining capacity, summed over dimensions, is smallest after placing).
pub fn best_fit(inst: &VbpInstance) -> Packing {
    place_in_order(
        inst,
        &(0..inst.num_balls()).collect::<Vec<_>>(),
        BinChoice::Best,
    )
}

/// First-fit-decreasing: sort balls by total size descending, then
/// first-fit. The returned assignment is indexed by *original* ball order.
pub fn first_fit_decreasing(inst: &VbpInstance) -> Packing {
    let mut order: Vec<usize> = (0..inst.num_balls()).collect();
    let size = |i: usize| -> f64 { inst.balls[i].iter().sum() };
    order.sort_by(|&a, &b| {
        size(b)
            .partial_cmp(&size(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    place_in_order(inst, &order, BinChoice::First)
}

/// First-fit with deferred small balls: balls of total size at least
/// `defer_below` are placed first (in input order), then the deferred
/// small ones (also in input order). `defer_below = 0.0` defers nothing
/// and is exactly [`first_fit`] — the identity default the tuner starts
/// from. A positive threshold repairs §2's pathology: small fillers no
/// longer claim early bins that over-half balls can then not join.
pub fn first_fit_deferred(inst: &VbpInstance, defer_below: f64) -> Packing {
    let size = |i: usize| -> f64 { inst.balls[i].iter().sum() };
    let mut order: Vec<usize> = (0..inst.num_balls())
        .filter(|&i| size(i) >= defer_below)
        .collect();
    order.extend((0..inst.num_balls()).filter(|&i| size(i) < defer_below));
    place_in_order(inst, &order, BinChoice::First)
}

enum BinChoice {
    First,
    Best,
}

fn place_in_order(inst: &VbpInstance, order: &[usize], choice: BinChoice) -> Packing {
    const TOL: f64 = 1e-9;
    let dims = inst.num_dims();
    let mut remaining: Vec<Vec<f64>> = Vec::new();
    let mut assignment = vec![usize::MAX; inst.num_balls()];

    for &i in order {
        let ball = &inst.balls[i];
        let target = match choice {
            BinChoice::First => remaining.iter().position(|r| fits(ball, r, TOL)),
            BinChoice::Best => remaining
                .iter()
                .enumerate()
                .filter(|(_, r)| fits(ball, r, TOL))
                .min_by(|(_, a), (_, b)| {
                    let ra: f64 = a.iter().sum::<f64>();
                    let rb: f64 = b.iter().sum::<f64>();
                    ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(ix, _)| ix),
        };
        let bin = match target {
            Some(b) => b,
            None => {
                remaining.push(inst.bin_capacity.clone());
                remaining.len() - 1
            }
        };
        for d in 0..dims {
            remaining[bin][d] -= ball[d];
        }
        assignment[i] = bin;
    }

    Packing {
        bins_used: remaining.len(),
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2: sizes (1%, 49%, 51%, 51%) — FF uses 3 bins, OPT needs only 2.
    #[test]
    fn sec2_first_fit_uses_three_bins() {
        let inst = VbpInstance::sec2_example();
        let p = first_fit(&inst);
        assert_eq!(p.bins_used, 3);
        assert!(p.check(&inst, 1e-9).is_none());
        // 0.01 and 0.49 share bin 0; each 0.51 gets its own bin.
        assert_eq!(p.assignment, vec![0, 0, 1, 2]);
    }

    /// Fig. 2: FF uses 9 bins on the 17-ball instance (optimal is 8).
    #[test]
    fn fig2_first_fit_uses_nine_bins() {
        let inst = VbpInstance::fig2_example();
        let p = first_fit(&inst);
        assert_eq!(p.bins_used, 9);
        assert!(p.check(&inst, 1e-9).is_none());
    }

    #[test]
    fn ffd_beats_ff_on_sec2() {
        let inst = VbpInstance::sec2_example();
        let p = first_fit_decreasing(&inst);
        // Sorted: 0.51, 0.51, 0.49, 0.01 -> bins {0.51+0.49}, {0.51+0.01}.
        assert_eq!(p.bins_used, 2);
        assert!(p.check(&inst, 1e-9).is_none());
    }

    #[test]
    fn best_fit_on_sec2() {
        // BF behaves like FF here (same 3 bins) — the example targets FF
        // but BF shares the pathology.
        let inst = VbpInstance::sec2_example();
        let p = best_fit(&inst);
        assert_eq!(p.bins_used, 3);
    }

    #[test]
    fn best_fit_prefers_fuller_bin() {
        // Balls 0.5, 0.3, 0.2: FF puts 0.2 in bin 0 (0.5 + 0.3 + 0.2 = 1.0
        // exactly fits!). Use 0.5, 0.3, 0.4, 0.2: FF -> bin0 {0.5,0.3,0.2}
        // ... construct a case where they differ:
        // sizes 0.6, 0.5, 0.4: FF: {0.6,0.4}? No: 0.5 opens bin1 (0.6+0.5>1),
        // 0.4 goes to bin0 (0.6+0.4=1.0). BF: same. Use dims where best
        // picks the tighter bin: 0.3, 0.55, 0.4, 0.45:
        //   FF: b0={0.3,0.55}(0.85), 0.4 -> b1, 0.45 -> b1 (0.85). 2 bins.
        //   BF: same count, but 0.45 placed in the fuller of {b0: 0.15 rem,
        //       b1: 0.6 rem} -> must go b1 anyway.
        // Differentiating case: 0.5, 0.25, 0.7, 0.25:
        //   FF: b0={0.5,0.25}, 0.7->b1, 0.25->b0 (1.0). bins 2.
        //   BF: b0={0.5,0.25}, 0.7->b1, 0.25: fits b0 (rem .25) and b1
        //       (rem .3); BF picks b0. bins 2, same count, diff layout OK.
        // Assert layout difference instead of count.
        let inst = VbpInstance::one_dim(&[0.5, 0.25, 0.7, 0.26]);
        let bf = best_fit(&inst);
        // rem after 3 balls: b0 = 0.25, b1 = 0.3 -> 0.26 fits only b1 for
        // FF-order too; tighten: ball 0.24 fits both; BF chooses b0.
        let inst2 = VbpInstance::one_dim(&[0.5, 0.25, 0.7, 0.24]);
        let bf2 = best_fit(&inst2);
        assert_eq!(bf2.assignment[3], 0, "best-fit picks the fuller bin");
        let ff2 = first_fit(&inst2);
        assert_eq!(ff2.assignment[3], 0, "first bin also fits here");
        assert!(bf.check(&inst, 1e-9).is_none());
    }

    /// `defer_below = 0` must be *exactly* first-fit: the tuner's default
    /// candidate may not change behavior.
    #[test]
    fn deferred_zero_is_first_fit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let n = rng.gen_range(1..12);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let inst = VbpInstance::one_dim(&sizes);
            let ff = first_fit(&inst);
            let fd = first_fit_deferred(&inst, 0.0);
            assert_eq!(ff.bins_used, fd.bins_used);
            assert_eq!(ff.assignment, fd.assignment);
        }
    }

    /// §2's adversarial sizes (1%, 49%, 51%, 51%): deferring the small
    /// filler recovers the optimal 2 bins where FF burns 3.
    #[test]
    fn deferred_repairs_sec2() {
        let inst = VbpInstance::sec2_example();
        let p = first_fit_deferred(&inst, 0.1);
        assert_eq!(p.bins_used, 2);
        assert!(p.check(&inst, 1e-9).is_none());
    }

    #[test]
    fn exact_fit_boundary() {
        // Sizes that sum to exactly 1.0 share a bin (no float drama).
        let inst = VbpInstance::one_dim(&[0.3, 0.7, 0.3, 0.7]);
        let p = first_fit(&inst);
        assert_eq!(p.bins_used, 2);
        assert_eq!(p.assignment, vec![0, 0, 1, 1]);
    }

    #[test]
    fn empty_instance_zero_bins() {
        let inst = VbpInstance::one_dim(&[]);
        assert_eq!(first_fit(&inst).bins_used, 0);
        assert_eq!(best_fit(&inst).bins_used, 0);
        assert_eq!(first_fit_decreasing(&inst).bins_used, 0);
    }

    #[test]
    fn multi_dim_first_fit() {
        // Two dims: balls conflict on different dimensions.
        let inst = VbpInstance {
            bin_capacity: vec![1.0, 1.0],
            balls: vec![
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.9, 0.1], // fits with ball 1 in dim0? 0.1+0.9 = 1.0 ok dim0, dim1 0.9+0.1 ok
            ],
        };
        let p = first_fit(&inst);
        assert!(p.check(&inst, 1e-9).is_none());
        // Ball 2 cannot join bin 0 (dim0: 0.9+0.9 > 1) but joins bin 1.
        assert_eq!(p.assignment, vec![0, 0, 1]);
    }

    #[test]
    fn ffd_assignment_indexed_by_original_order() {
        let inst = VbpInstance::one_dim(&[0.2, 0.9]);
        let p = first_fit_decreasing(&inst);
        // 0.9 placed first (bin 0), then 0.2 — doesn't fit (1.1), bin 1.
        assert_eq!(p.assignment, vec![1, 0]);
    }

    #[test]
    fn heuristics_never_overload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(1..15);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let inst = VbpInstance::one_dim(&sizes);
            for p in [
                first_fit(&inst),
                best_fit(&inst),
                first_fit_decreasing(&inst),
            ] {
                assert!(p.check(&inst, 1e-9).is_none());
                assert!(p.bins_used >= inst.lower_bound());
            }
        }
    }
}
