//! Exact (optimal) vector bin packing by branch and bound.
//!
//! The benchmark side of the analyzer needs true optima. A specialized
//! search beats the generic MILP here: balls are assigned in order, each to
//! an existing bin or one fresh bin (symmetry breaking), pruned by the
//! per-dimension volume lower bound and the incumbent (seeded with FFD).
//!
//! A MILP formulation via `xplain-lp` is also provided as a cross-check —
//! the property tests assert both agree.

use crate::vbp::heuristics::first_fit_decreasing;
use crate::vbp::instance::{Packing, VbpInstance};
use xplain_lp::{milp, Cmp, LinExpr, LpError, Model, Sense};

/// Exact optimum by branch and bound. Suitable for the paper-scale
/// instances (n ≲ 25 in the adversarial analyses).
pub fn optimal(inst: &VbpInstance) -> Packing {
    let n = inst.num_balls();
    if n == 0 {
        return Packing {
            assignment: Vec::new(),
            bins_used: 0,
        };
    }
    let dims = inst.num_dims();

    // Incumbent from FFD.
    let mut best = first_fit_decreasing(inst);
    let lower = inst.lower_bound();
    if best.bins_used == lower {
        return best;
    }

    // Sort balls by size descending: large balls first fail fast.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let sa: f64 = inst.balls[a].iter().sum();
        let sb: f64 = inst.balls[b].iter().sum();
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });

    struct Ctx<'a> {
        inst: &'a VbpInstance,
        order: &'a [usize],
        dims: usize,
        best_bins: usize,
        best_assignment: Vec<usize>,
        lower: usize,
        assignment: Vec<usize>,
    }

    fn recurse(ctx: &mut Ctx<'_>, depth: usize, remaining: &mut Vec<Vec<f64>>) {
        if remaining.len() >= ctx.best_bins {
            return; // can't improve
        }
        if depth == ctx.order.len() {
            ctx.best_bins = remaining.len();
            ctx.best_assignment = ctx.assignment.clone();
            return;
        }
        let ball_ix = ctx.order[depth];
        let ball = &ctx.inst.balls[ball_ix];

        // Try existing bins.
        for b in 0..remaining.len() {
            let fits = (0..ctx.dims).all(|d| ball[d] <= remaining[b][d] + 1e-9);
            if !fits {
                continue;
            }
            for d in 0..ctx.dims {
                remaining[b][d] -= ball[d];
            }
            ctx.assignment[ball_ix] = b;
            recurse(ctx, depth + 1, remaining);
            for d in 0..ctx.dims {
                remaining[b][d] += ball[d];
            }
            if ctx.best_bins == ctx.lower {
                return; // proven optimal
            }
        }
        // Open one new bin (symmetry: only one).
        if remaining.len() + 1 < ctx.best_bins {
            remaining.push(
                (0..ctx.dims)
                    .map(|d| ctx.inst.bin_capacity[d] - ball[d])
                    .collect(),
            );
            ctx.assignment[ball_ix] = remaining.len() - 1;
            recurse(ctx, depth + 1, remaining);
            remaining.pop();
        }
    }

    let mut ctx = Ctx {
        inst,
        order: &order,
        dims,
        best_bins: best.bins_used,
        best_assignment: best.assignment.clone(),
        lower,
        assignment: vec![usize::MAX; n],
    };
    let mut remaining: Vec<Vec<f64>> = Vec::new();
    recurse(&mut ctx, 0, &mut remaining);

    if ctx.best_bins < best.bins_used {
        best = Packing {
            assignment: ctx.best_assignment,
            bins_used: ctx.best_bins,
        };
    }
    best
}

/// MILP formulation of optimal bin packing (cross-check for [`optimal`]):
/// binaries `x[i][j]` (ball i in bin j) and `y[j]` (bin j used), at most
/// `max_bins` bins.
pub fn optimal_milp(inst: &VbpInstance, max_bins: usize) -> Result<Packing, LpError> {
    optimal_milp_stats(inst, max_bins).map(|(p, _)| p)
}

/// [`optimal_milp`] plus branch-and-bound work counters (see the sched
/// twin for why node counts are worth pinning).
pub fn optimal_milp_stats(
    inst: &VbpInstance,
    max_bins: usize,
) -> Result<(Packing, milp::MilpStats), LpError> {
    let n = inst.num_balls();
    if n == 0 {
        return Ok((
            Packing {
                assignment: Vec::new(),
                bins_used: 0,
            },
            milp::MilpStats::default(),
        ));
    }
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<_>> = (0..n)
        .map(|i| {
            (0..max_bins)
                .map(|j| m.add_binary(format!("x[{i},{j}]")))
                .collect()
        })
        .collect();
    let y: Vec<_> = (0..max_bins)
        .map(|j| m.add_binary(format!("y[{j}]")))
        .collect();

    for i in 0..n {
        m.add_constr(
            format!("place[{i}]"),
            LinExpr::sum(x[i].iter().copied()),
            Cmp::Eq,
            1.0,
        );
    }
    for j in 0..max_bins {
        for d in 0..inst.num_dims() {
            let mut load = LinExpr::new();
            for i in 0..n {
                load.add_term(x[i][j], inst.balls[i][d]);
            }
            load.add_term(y[j], -inst.bin_capacity[d]);
            m.add_constr(format!("cap[{j},{d}]"), load, Cmp::Le, 0.0);
        }
        // Symmetry breaking: bins used in order.
        if j + 1 < max_bins {
            m.add_constr(
                format!("sym[{j}]"),
                LinExpr::term(y[j + 1], 1.0) - y[j],
                Cmp::Le,
                0.0,
            );
        }
    }
    m.set_objective(LinExpr::sum(y.iter().copied()));
    let (sol, stats) = milp::solve_with(&m, milp::Backend::Revised)?;

    let mut assignment = vec![0usize; n];
    for i in 0..n {
        for j in 0..max_bins {
            if sol.value(x[i][j]) > 0.5 {
                assignment[i] = j;
                break;
            }
        }
    }
    Ok((
        Packing {
            assignment,
            bins_used: sol.objective.round() as usize,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbp::heuristics::first_fit;

    /// §2: optimal packs (1%, 49%, 51%, 51%) into 2 bins.
    #[test]
    fn sec2_optimal_is_two_bins() {
        let inst = VbpInstance::sec2_example();
        let p = optimal(&inst);
        assert_eq!(p.bins_used, 2);
        assert!(p.check(&inst, 1e-9).is_none());
    }

    /// Fig. 2: optimal packs the 17 balls into 8 bins (FF needs 9).
    #[test]
    fn fig2_optimal_is_eight_bins() {
        let inst = VbpInstance::fig2_example();
        let p = optimal(&inst);
        assert_eq!(p.bins_used, 8);
        assert!(p.check(&inst, 1e-9).is_none());
        assert_eq!(first_fit(&inst).bins_used, 9);
    }

    #[test]
    fn milp_agrees_on_sec2() {
        let inst = VbpInstance::sec2_example();
        let p = optimal_milp(&inst, 4).unwrap();
        assert_eq!(p.bins_used, 2);
        assert!(p.check(&inst, 1e-9).is_none());
    }

    #[test]
    fn empty_and_single() {
        let empty = VbpInstance::one_dim(&[]);
        assert_eq!(optimal(&empty).bins_used, 0);
        let single = VbpInstance::one_dim(&[0.4]);
        assert_eq!(optimal(&single).bins_used, 1);
    }

    #[test]
    fn perfect_pairs() {
        let inst = VbpInstance::one_dim(&[0.4, 0.6, 0.3, 0.7, 0.5, 0.5]);
        assert_eq!(optimal(&inst).bins_used, 3);
    }

    #[test]
    fn optimal_never_above_heuristics() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..25 {
            let n = rng.gen_range(1..12);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..0.95)).collect();
            let inst = VbpInstance::one_dim(&sizes);
            let opt = optimal(&inst);
            assert!(opt.check(&inst, 1e-9).is_none());
            assert!(opt.bins_used <= first_fit(&inst).bins_used);
            assert!(opt.bins_used <= first_fit_decreasing(&inst).bins_used);
            assert!(opt.bins_used >= inst.lower_bound());
        }
    }

    #[test]
    fn milp_and_bnb_agree_on_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let n = rng.gen_range(2..7);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
            let inst = VbpInstance::one_dim(&sizes);
            let a = optimal(&inst);
            let b = optimal_milp(&inst, n).unwrap();
            assert_eq!(a.bins_used, b.bins_used, "sizes {sizes:?}");
        }
    }

    #[test]
    fn multi_dim_optimal() {
        let inst = VbpInstance {
            bin_capacity: vec![1.0, 1.0],
            balls: vec![
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.5, 0.5],
                vec![0.5, 0.5],
            ],
        };
        let p = optimal(&inst);
        // {0.9,0.1}+{0.1,0.9} share a bin; the two {0.5,0.5} share another.
        assert_eq!(p.bins_used, 2);
    }
}
