//! Vector bin packing instances and packings.
//!
//! Balls are `d`-dimensional nonnegative vectors; bins have a capacity per
//! dimension. The paper's running examples are one-dimensional with unit
//! bins (sizes expressed as a fraction of the bin), but VBP itself — and
//! everything in this module — is multi-dimensional (§2: "places
//! multi-dimensional balls into multi-dimensional bins").

use serde::{Deserialize, Serialize};

/// A VBP instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VbpInstance {
    /// Per-dimension bin capacity (same for every bin).
    pub bin_capacity: Vec<f64>,
    /// `balls[i][d]` = size of ball `i` in dimension `d`.
    pub balls: Vec<Vec<f64>>,
}

impl VbpInstance {
    /// One-dimensional instance with unit bins.
    pub fn one_dim(sizes: &[f64]) -> Self {
        VbpInstance {
            bin_capacity: vec![1.0],
            balls: sizes.iter().map(|&s| vec![s]).collect(),
        }
    }

    /// The §2 example: ball sizes 1%, 49%, 51%, 51% of the bin.
    /// First-fit uses 3 bins, the optimal 2.
    pub fn sec2_example() -> Self {
        VbpInstance::one_dim(&[0.01, 0.49, 0.51, 0.51])
    }

    /// The Fig. 2 instance (17 balls): first-fit uses 9 bins, optimal 8.
    pub fn fig2_example() -> Self {
        VbpInstance::one_dim(&[
            0.3, 0.8, 0.2, 0.4, 0.7, 0.7, 0.15, 0.85, 0.25, 0.25, 0.3, 0.75, 0.75, 0.6, 0.12, 0.4,
            0.4,
        ])
    }

    pub fn num_balls(&self) -> usize {
        self.balls.len()
    }

    pub fn num_dims(&self) -> usize {
        self.bin_capacity.len()
    }

    /// Sanity checks: consistent dimensions, nonnegative finite sizes, and
    /// every ball individually fits a bin.
    pub fn validate(&self) -> Result<(), String> {
        if self.bin_capacity.is_empty() {
            return Err("zero-dimensional bins".into());
        }
        if self
            .bin_capacity
            .iter()
            .any(|c| !c.is_finite() || *c <= 0.0)
        {
            return Err("bin capacities must be positive and finite".into());
        }
        for (i, b) in self.balls.iter().enumerate() {
            if b.len() != self.num_dims() {
                return Err(format!(
                    "ball {i} has {} dims, expected {}",
                    b.len(),
                    self.num_dims()
                ));
            }
            for (d, &s) in b.iter().enumerate() {
                if !s.is_finite() || s < 0.0 {
                    return Err(format!("ball {i} dim {d} size {s}"));
                }
                if s > self.bin_capacity[d] + 1e-12 {
                    return Err(format!(
                        "ball {i} dim {d} size {s} exceeds bin capacity {}",
                        self.bin_capacity[d]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Per-dimension lower bound on the optimal bin count:
    /// `max_d ceil(Σ_i size_i_d / cap_d)` (at least 1 if there are balls).
    pub fn lower_bound(&self) -> usize {
        if self.balls.is_empty() {
            return 0;
        }
        let mut best = 1usize;
        for d in 0..self.num_dims() {
            let total: f64 = self.balls.iter().map(|b| b[d]).sum();
            let lb = (total / self.bin_capacity[d] - 1e-9).ceil().max(0.0) as usize;
            best = best.max(lb);
        }
        best
    }
}

/// A packing: bin index per ball.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packing {
    /// `assignment[i]` = bin of ball `i`.
    pub assignment: Vec<usize>,
    pub bins_used: usize,
}

impl Packing {
    /// Build from an assignment, computing `bins_used` as the number of
    /// distinct bins actually used.
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for &b in &assignment {
            seen.insert(b);
        }
        Packing {
            bins_used: seen.len(),
            assignment,
        }
    }

    /// Check capacity feasibility against an instance.
    pub fn check(&self, inst: &VbpInstance, tol: f64) -> Option<String> {
        if self.assignment.len() != inst.num_balls() {
            return Some(format!(
                "assignment covers {} balls, instance has {}",
                self.assignment.len(),
                inst.num_balls()
            ));
        }
        let max_bin = self.assignment.iter().copied().max().unwrap_or(0);
        let mut load = vec![vec![0.0; inst.num_dims()]; max_bin + 1];
        for (i, &b) in self.assignment.iter().enumerate() {
            for d in 0..inst.num_dims() {
                load[b][d] += inst.balls[i][d];
            }
        }
        for (b, l) in load.iter().enumerate() {
            for d in 0..inst.num_dims() {
                if l[d] > inst.bin_capacity[d] + tol {
                    return Some(format!(
                        "bin {b} dim {d} overloaded: {} > {}",
                        l[d], inst.bin_capacity[d]
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec2_example_shape() {
        let inst = VbpInstance::sec2_example();
        inst.validate().unwrap();
        assert_eq!(inst.num_balls(), 4);
        assert_eq!(inst.lower_bound(), 2); // sum = 1.52 -> 2 bins minimum
    }

    #[test]
    fn fig2_example_shape() {
        let inst = VbpInstance::fig2_example();
        inst.validate().unwrap();
        assert_eq!(inst.num_balls(), 17);
        assert_eq!(inst.lower_bound(), 8); // sum = 7.92 -> 8 bins minimum
    }

    #[test]
    fn validation_rejects_oversized_ball() {
        let inst = VbpInstance::one_dim(&[0.5, 1.5]);
        assert!(inst.validate().is_err());
    }

    #[test]
    fn validation_rejects_ragged_dims() {
        let inst = VbpInstance {
            bin_capacity: vec![1.0, 1.0],
            balls: vec![vec![0.5, 0.5], vec![0.5]],
        };
        assert!(inst.validate().is_err());
    }

    #[test]
    fn packing_check_finds_overload() {
        let inst = VbpInstance::one_dim(&[0.6, 0.6]);
        let p = Packing::from_assignment(vec![0, 0]);
        assert!(p.check(&inst, 1e-9).is_some());
        let q = Packing::from_assignment(vec![0, 1]);
        assert!(q.check(&inst, 1e-9).is_none());
        assert_eq!(q.bins_used, 2);
    }

    #[test]
    fn empty_instance() {
        let inst = VbpInstance::one_dim(&[]);
        inst.validate().unwrap();
        assert_eq!(inst.lower_bound(), 0);
    }

    #[test]
    fn multi_dim_lower_bound_takes_max() {
        let inst = VbpInstance {
            bin_capacity: vec![1.0, 1.0],
            balls: vec![vec![0.2, 0.9], vec![0.2, 0.9], vec![0.2, 0.9]],
        };
        // dim 0: 0.6 -> 1 bin; dim 1: 2.7 -> 3 bins.
        assert_eq!(inst.lower_bound(), 3);
    }
}
