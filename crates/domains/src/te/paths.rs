//! Simple-path enumeration for the path-based traffic-engineering
//! formulation.
//!
//! MetaOpt's DP encoding (Fig. 1b) takes the path set `P_k` per demand as
//! *input*; we enumerate all simple paths with a DFS (the paper's
//! topologies are small) and order them by hop count so `paths[0]` is the
//! shortest path `p̂_k` that Demand Pinning pins to.

use crate::te::topology::Topology;
use serde::{Deserialize, Serialize};

/// A path: node sequence plus the link indices it traverses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    pub nodes: Vec<usize>,
    pub links: Vec<usize>,
}

impl Path {
    /// Hop count.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// `"1-2-3"`-style rendering using topology node names.
    pub fn name(&self, topo: &Topology) -> String {
        self.nodes
            .iter()
            .map(|&n| topo.node_names[n].clone())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Minimum capacity along the path.
    pub fn min_capacity(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|&l| topo.links[l].capacity)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Enumerate all simple paths from `src` to `dst` with at most `max_hops`
/// links, ordered by (hop count, discovery order). `k = 0` means "all".
pub fn k_shortest_paths(
    topo: &Topology,
    src: usize,
    dst: usize,
    max_hops: usize,
    k: usize,
) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    let mut visited = vec![false; topo.num_nodes()];
    let mut node_stack = vec![src];
    let mut link_stack: Vec<usize> = Vec::new();
    visited[src] = true;

    // Adjacency list once.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); topo.num_nodes()];
    for (i, l) in topo.links.iter().enumerate() {
        adj[l.from].push((l.to, i));
    }

    fn dfs(
        cur: usize,
        dst: usize,
        max_hops: usize,
        adj: &[Vec<(usize, usize)>],
        visited: &mut [bool],
        node_stack: &mut Vec<usize>,
        link_stack: &mut Vec<usize>,
        result: &mut Vec<Path>,
    ) {
        if cur == dst {
            result.push(Path {
                nodes: node_stack.clone(),
                links: link_stack.clone(),
            });
            return;
        }
        if link_stack.len() >= max_hops {
            return;
        }
        for &(next, link) in &adj[cur] {
            if visited[next] {
                continue;
            }
            visited[next] = true;
            node_stack.push(next);
            link_stack.push(link);
            dfs(
                next, dst, max_hops, adj, visited, node_stack, link_stack, result,
            );
            link_stack.pop();
            node_stack.pop();
            visited[next] = false;
        }
    }

    dfs(
        src,
        dst,
        max_hops,
        &adj,
        &mut visited,
        &mut node_stack,
        &mut link_stack,
        &mut result,
    );

    result.sort_by_key(|p| p.len());
    if k > 0 {
        result.truncate(k);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_paths_for_1_to_3() {
        let t = Topology::fig1a();
        let paths = k_shortest_paths(&t, 0, 2, 8, 0);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].name(&t), "1-2-3"); // shortest first
        assert_eq!(paths[1].name(&t), "1-4-5-3");
        assert_eq!(paths[0].min_capacity(&t), 100.0);
        assert_eq!(paths[1].min_capacity(&t), 50.0);
    }

    #[test]
    fn single_path_demands() {
        let t = Topology::fig1a();
        let p12 = k_shortest_paths(&t, 0, 1, 8, 0);
        assert_eq!(p12.len(), 1);
        assert_eq!(p12[0].name(&t), "1-2");
        let p23 = k_shortest_paths(&t, 1, 2, 8, 0);
        assert_eq!(p23.len(), 1);
    }

    #[test]
    fn no_path_when_disconnected() {
        let t = Topology::fig1a();
        // Node 3 (id 2) has no outgoing links; 3 -> 1 unreachable.
        assert!(k_shortest_paths(&t, 2, 0, 8, 0).is_empty());
    }

    #[test]
    fn hop_limit_prunes() {
        let t = Topology::fig1a();
        let paths = k_shortest_paths(&t, 0, 2, 2, 0);
        assert_eq!(paths.len(), 1); // only 1-2-3 within 2 hops
    }

    #[test]
    fn k_truncates() {
        let t = Topology::fig1a();
        let paths = k_shortest_paths(&t, 0, 2, 8, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].name(&t), "1-2-3");
    }

    #[test]
    fn simple_paths_only() {
        // Diamond with a back edge: paths must not revisit nodes.
        let mut t = Topology::with_nodes(4);
        t.add_link(0, 1, 1.0);
        t.add_link(1, 2, 1.0);
        t.add_link(2, 1, 1.0); // back edge
        t.add_link(2, 3, 1.0);
        let paths = k_shortest_paths(&t, 0, 3, 10, 0);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2, 3]);
    }
}
