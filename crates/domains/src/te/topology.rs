//! Network topologies for the traffic-engineering domain.

use serde::{Deserialize, Serialize};

/// A directed link with capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub from: usize,
    pub to: usize,
    pub capacity: f64,
}

/// A directed capacitated network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    pub node_names: Vec<String>,
    pub links: Vec<Link>,
}

impl Topology {
    /// Create a topology with `n` nodes named `"1".."n"`.
    pub fn with_nodes(n: usize) -> Self {
        Topology {
            node_names: (1..=n).map(|i| i.to_string()).collect(),
            links: Vec::new(),
        }
    }

    /// Add a directed link; returns its index.
    pub fn add_link(&mut self, from: usize, to: usize, capacity: f64) -> usize {
        self.links.push(Link { from, to, capacity });
        self.links.len() - 1
    }

    /// Add links in both directions with the same capacity.
    pub fn add_bidirectional(&mut self, a: usize, b: usize, capacity: f64) -> (usize, usize) {
        (self.add_link(a, b, capacity), self.add_link(b, a, capacity))
    }

    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Find the link index from `a` to `b`, if present.
    pub fn link_between(&self, a: usize, b: usize) -> Option<usize> {
        self.links.iter().position(|l| l.from == a && l.to == b)
    }

    /// Human-readable link name like `"1->2"`.
    pub fn link_name(&self, ix: usize) -> String {
        let l = &self.links[ix];
        format!("{}->{}", self.node_names[l.from], self.node_names[l.to])
    }

    /// Sanity checks: endpoints in range, positive finite capacities.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            if l.from >= self.num_nodes() || l.to >= self.num_nodes() {
                return Err(format!("link {i} endpoint out of range"));
            }
            if l.from == l.to {
                return Err(format!("link {i} is a self-loop"));
            }
            if !l.capacity.is_finite() || l.capacity < 0.0 {
                return Err(format!("link {i} capacity {}", l.capacity));
            }
        }
        Ok(())
    }

    /// The Fig. 1a topology: nodes 1..5; links 1→2 (100), 2→3 (100),
    /// 1→4 (50), 4→5 (50), 5→3 (50).
    ///
    /// Node ids are zero-based (node "1" is id 0).
    pub fn fig1a() -> Self {
        let mut t = Topology::with_nodes(5);
        t.add_link(0, 1, 100.0); // 1->2
        t.add_link(1, 2, 100.0); // 2->3
        t.add_link(0, 3, 50.0); // 1->4
        t.add_link(3, 4, 50.0); // 4->5
        t.add_link(4, 2, 50.0); // 5->3
        t
    }

    /// A chain `0 -> 1 -> ... -> len` with a parallel two-hop bypass per
    /// chain hop. Used by the instance generator to vary the pinned path
    /// length for Type-3 analysis (§5.4).
    ///
    /// Chain links have capacity `chain_cap`; bypass links `bypass_cap`.
    pub fn chain_with_bypass(len: usize, chain_cap: f64, bypass_cap: f64) -> Self {
        let mut t = Topology::with_nodes(len + 1 + len); // chain nodes + one bypass node per hop
        for i in 0..len {
            t.add_link(i, i + 1, chain_cap);
            let via = len + 1 + i;
            t.add_link(i, via, bypass_cap);
            t.add_link(via, i + 1, bypass_cap);
        }
        t
    }

    /// A chain `0 -> 1 -> ... -> len` plus one **end-to-end** bypass of
    /// length `len + 1` (one hop longer than the chain, so the chain stays
    /// the shortest path). This is Fig. 1a generalized to arbitrary pinned
    /// path length: a pinnable end-to-end demand shares every chain link
    /// with the per-hop demands, while the optimal can escape over the
    /// bypass. Used for the §5.4 `increasing(P)` experiment.
    pub fn chain_with_long_bypass(len: usize, chain_cap: f64, bypass_cap: f64) -> Self {
        assert!(len >= 1, "chain needs at least one hop");
        // Nodes: 0..=len are the chain; len+1..=2len are bypass relays.
        let mut t = Topology::with_nodes(2 * len + 1);
        for i in 0..len {
            t.add_link(i, i + 1, chain_cap);
        }
        let mut prev = 0;
        for r in 0..len {
            let relay = len + 1 + r;
            t.add_link(prev, relay, bypass_cap);
            prev = relay;
        }
        t.add_link(prev, len, bypass_cap);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_shape() {
        let t = Topology::fig1a();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.link_between(0, 1), Some(0));
        assert_eq!(t.links[0].capacity, 100.0);
        assert_eq!(t.link_between(4, 2), Some(4));
        t.validate().unwrap();
    }

    #[test]
    fn link_names() {
        let t = Topology::fig1a();
        assert_eq!(t.link_name(0), "1->2");
        assert_eq!(t.link_name(4), "5->3");
    }

    #[test]
    fn bidirectional_adds_two() {
        let mut t = Topology::with_nodes(2);
        let (a, b) = t.add_bidirectional(0, 1, 7.0);
        assert_ne!(a, b);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    fn validation_catches_problems() {
        let mut t = Topology::with_nodes(2);
        t.add_link(0, 1, -3.0);
        assert!(t.validate().is_err());
        let mut t2 = Topology::with_nodes(2);
        t2.add_link(0, 5, 1.0);
        assert!(t2.validate().is_err());
    }

    #[test]
    fn chain_with_bypass_structure() {
        let t = Topology::chain_with_bypass(3, 100.0, 50.0);
        t.validate().unwrap();
        assert_eq!(t.num_links(), 9); // 3 chain + 3*2 bypass
        assert_eq!(t.link_between(0, 1), Some(0));
    }
}
