//! The traffic-engineering problem: demands over a topology with a fixed
//! path set, plus the optimal (benchmark) max-flow LP.

use crate::te::paths::{k_shortest_paths, Path};
use crate::te::topology::Topology;
use serde::{Deserialize, Serialize};
use xplain_lp::{Cmp, LinExpr, LpError, Model, Prepared, Sense, SessionPool, SolverStats, VarType};

/// A demand endpoint pair (amounts are supplied separately — they are the
/// *input space* the analyzer searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandPair {
    pub src: usize,
    pub dst: usize,
}

/// A TE problem instance: topology, demand pairs, and per-demand path sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeProblem {
    pub topology: Topology,
    pub demands: Vec<DemandPair>,
    /// `paths[k]` are the candidate paths of demand `k`, shortest first
    /// (`paths[k][0]` is the pinning target `p̂_k`).
    pub paths: Vec<Vec<Path>>,
    /// Upper bound on any single demand (the input-space box).
    pub demand_cap: f64,
}

/// A flow allocation: per demand, per path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeAllocation {
    /// `flows[k][p]` = flow of demand `k` on path `p`.
    pub flows: Vec<Vec<f64>>,
    /// Total routed flow (the TE objective).
    pub total: f64,
}

impl TeProblem {
    /// Build a problem over all given demand pairs, enumerating every
    /// simple path (up to `max_hops`).
    pub fn new(
        topology: Topology,
        demands: Vec<DemandPair>,
        max_hops: usize,
        demand_cap: f64,
    ) -> Result<Self, String> {
        topology.validate()?;
        let paths: Vec<Vec<Path>> = demands
            .iter()
            .map(|d| k_shortest_paths(&topology, d.src, d.dst, max_hops, 0))
            .collect();
        for (k, ps) in paths.iter().enumerate() {
            if ps.is_empty() {
                return Err(format!(
                    "demand {k} ({} -> {}) has no path",
                    topology.node_names[demands[k].src], topology.node_names[demands[k].dst]
                ));
            }
        }
        Ok(TeProblem {
            topology,
            demands,
            paths,
            demand_cap,
        })
    }

    /// The Fig. 1a instance: three demands 1⇝3, 1⇝2, 2⇝3 on the Fig. 1a
    /// topology with a demand cap of 100.
    pub fn fig1a() -> Self {
        let topo = Topology::fig1a();
        let demands = vec![
            DemandPair { src: 0, dst: 2 }, // 1 ⇝ 3
            DemandPair { src: 0, dst: 1 }, // 1 ⇝ 2
            DemandPair { src: 1, dst: 2 }, // 2 ⇝ 3
        ];
        TeProblem::new(topo, demands, 8, 100.0).expect("fig1a is well-formed")
    }

    /// The Fig. 4a instance: all eight connected demand pairs of the
    /// Fig. 1a topology (1⇝2, 1⇝3, 1⇝4, 1⇝5, 2⇝3, 4⇝3, 4⇝5, 5⇝3).
    pub fn fig4a() -> Self {
        let topo = Topology::fig1a();
        let demands = vec![
            DemandPair { src: 0, dst: 1 },
            DemandPair { src: 0, dst: 2 },
            DemandPair { src: 0, dst: 3 },
            DemandPair { src: 0, dst: 4 },
            DemandPair { src: 1, dst: 2 },
            DemandPair { src: 3, dst: 2 },
            DemandPair { src: 3, dst: 4 },
            DemandPair { src: 4, dst: 2 },
        ];
        TeProblem::new(topo, demands, 8, 100.0).expect("fig4a is well-formed")
    }

    /// Number of demands (the dimensionality of the input space).
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// Demand label like `"1~3"`.
    pub fn demand_name(&self, k: usize) -> String {
        let d = self.demands[k];
        format!(
            "{}~{}",
            self.topology.node_names[d.src], self.topology.node_names[d.dst]
        )
    }

    /// Build the path-based max-flow LP for the given demand volumes and
    /// residual link capacities. `capacities` defaults to the topology's.
    pub fn max_flow_model(
        &self,
        volumes: &[f64],
        capacities: Option<&[f64]>,
        skip_demand: &[bool],
    ) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let mut path_vars: Vec<Vec<xplain_lp::VarId>> = Vec::with_capacity(self.num_demands());
        for (k, paths) in self.paths.iter().enumerate() {
            let mut row = Vec::with_capacity(paths.len());
            for (p, _) in paths.iter().enumerate() {
                row.push(m.add_var(
                    format!("f[{}/{p}]", self.demand_name(k)),
                    VarType::Continuous,
                    0.0,
                    f64::INFINITY,
                ));
            }
            path_vars.push(row);
        }
        // Demand constraints.
        for k in 0..self.num_demands() {
            let vol = if skip_demand.get(k).copied().unwrap_or(false) {
                0.0
            } else {
                volumes.get(k).copied().unwrap_or(0.0)
            };
            m.add_constr(
                format!("demand[{}]", self.demand_name(k)),
                LinExpr::sum(path_vars[k].iter().copied()),
                Cmp::Le,
                vol.max(0.0),
            );
        }
        // Link capacity constraints.
        for (l, link) in self.topology.links.iter().enumerate() {
            let mut e = LinExpr::new();
            for (k, paths) in self.paths.iter().enumerate() {
                for (p, path) in paths.iter().enumerate() {
                    if path.links.contains(&l) {
                        e.add_term(path_vars[k][p], 1.0);
                    }
                }
            }
            let cap = capacities.map(|c| c[l]).unwrap_or(link.capacity).max(0.0);
            m.add_constr(
                format!("cap[{}]", self.topology.link_name(l)),
                e,
                Cmp::Le,
                cap,
            );
        }
        let mut obj = LinExpr::new();
        for row in &path_vars {
            for &v in row {
                obj.add_term(v, 1.0);
            }
        }
        m.set_objective(obj);
        m
    }

    /// Solve the benchmark: optimal multi-commodity max-flow.
    ///
    /// Max-flow optima are generally not unique. Among them we pick the
    /// one minimizing total flow on *shortest* paths (a second,
    /// lexicographic solve). This makes the benchmark deterministic and
    /// matches the paper's Type-2 narrative — "DP does shortest-path
    /// routing for these demands, whereas the optimal does not" — so the
    /// explainer's heat-map contrasts are crisp (see DESIGN.md §6).
    pub fn optimal(&self, volumes: &[f64]) -> Result<TeAllocation, LpError> {
        self.solve_max_flow_lex(volumes, None, &[])
    }

    /// [`TeProblem::optimal`] through a warm-start [`SessionPool`]: the
    /// benchmark LP has a fixed structure per problem, so sweeps over
    /// demand vectors (the analyzer's bread and butter) re-solve from the
    /// previous basis instead of running a cold phase 1 every time.
    pub fn optimal_pooled(
        &self,
        volumes: &[f64],
        pool: &mut SessionPool,
    ) -> Result<TeAllocation, LpError> {
        self.solve_max_flow_lex_pooled(volumes, None, &[], pool)
    }

    /// Lexicographic max-flow: maximize total, then among optima minimize
    /// the flow carried by each demand's shortest path.
    pub fn solve_max_flow_lex(
        &self,
        volumes: &[f64],
        capacities: Option<&[f64]>,
        skip_demand: &[bool],
    ) -> Result<TeAllocation, LpError> {
        let mut pool = SessionPool::new();
        self.solve_max_flow_lex_pooled(volumes, capacities, skip_demand, &mut pool)
    }

    /// [`TeProblem::solve_max_flow_lex`] through a caller-owned pool. The
    /// two lexicographic stages have different shapes (stage 2 carries the
    /// `lex_total` pin), so they warm-start against separate sessions.
    pub fn solve_max_flow_lex_pooled(
        &self,
        volumes: &[f64],
        capacities: Option<&[f64]>,
        skip_demand: &[bool],
        pool: &mut SessionPool,
    ) -> Result<TeAllocation, LpError> {
        let model = self.max_flow_model(volumes, capacities, skip_demand);
        let sol = pool.solve(&model)?;
        let total = sol.objective;

        // Phase 2: pin the total, minimize shortest-path usage.
        let mut model2 = self.max_flow_model(volumes, capacities, skip_demand);
        let objective = model2.objective().clone();
        // Tiny slack: just enough to absorb phase-1 round-off without
        // letting phase 2 trade away measurable total flow.
        let slack = 1e-9 * total.abs().max(1.0);
        model2.add_constr("lex_total", objective, Cmp::Ge, total - slack);
        let mut secondary = LinExpr::new();
        let mut var_ix = 0usize;
        for paths in &self.paths {
            for pp in 0..paths.len() {
                if pp == 0 {
                    secondary.add_term(xplain_lp::VarId::from_index(var_ix), 1.0);
                }
                var_ix += 1;
            }
        }
        model2.set_objective(-secondary);
        let sol2 = pool.solve(&model2)?;

        let mut flows = Vec::with_capacity(self.num_demands());
        let mut var_ix = 0usize;
        let mut routed = 0.0;
        for paths in &self.paths {
            let mut row = Vec::with_capacity(paths.len());
            for _ in paths {
                let f = sol2.values[var_ix].max(0.0);
                routed += f;
                row.push(f);
                var_ix += 1;
            }
            flows.push(row);
        }
        Ok(TeAllocation {
            flows,
            total: routed,
        })
    }

    /// Build a [`TeLexSolver`]: both lexicographic stage LPs standardized
    /// once, so sweeps over demand vectors (the analyzer's probe fan-out)
    /// re-solve through rhs deltas with no per-evaluation model build.
    pub fn lex_solver(&self) -> Result<TeLexSolver, LpError> {
        let zeros = vec![0.0; self.num_demands()];
        let stage1 = Prepared::new(&self.max_flow_model(&zeros, None, &[]))?;
        // Stage 2 mirrors `solve_max_flow_lex_pooled` exactly: same model,
        // plus the `lex_total` pin row (rhs set per solve) and the negated
        // shortest-path objective.
        let mut m2 = self.max_flow_model(&zeros, None, &[]);
        let objective = m2.objective().clone();
        m2.add_constr("lex_total", objective, Cmp::Ge, 0.0);
        let mut secondary = LinExpr::new();
        let mut var_ix = 0usize;
        for paths in &self.paths {
            for pp in 0..paths.len() {
                if pp == 0 {
                    secondary.add_term(xplain_lp::VarId::from_index(var_ix), 1.0);
                }
                var_ix += 1;
            }
        }
        m2.set_objective(-secondary);
        let stage2 = Prepared::new(&m2)?;
        Ok(TeLexSolver {
            stage1,
            stage2,
            path_counts: self.paths.iter().map(|ps| ps.len()).collect(),
            link_caps: self.topology.links.iter().map(|l| l.capacity).collect(),
            pool: SessionPool::new(),
        })
    }

    /// Total link load of an allocation, per link.
    pub fn link_loads(&self, alloc: &TeAllocation) -> Vec<f64> {
        let mut loads = vec![0.0; self.topology.num_links()];
        for (k, paths) in self.paths.iter().enumerate() {
            for (p, path) in paths.iter().enumerate() {
                for &l in &path.links {
                    loads[l] += alloc.flows[k][p];
                }
            }
        }
        loads
    }

    /// Verify an allocation: nonnegative flows, demand limits, capacities.
    pub fn check_allocation(
        &self,
        volumes: &[f64],
        alloc: &TeAllocation,
        tol: f64,
    ) -> Option<String> {
        for (k, row) in alloc.flows.iter().enumerate() {
            let routed: f64 = row.iter().sum();
            if row.iter().any(|f| *f < -tol) {
                return Some(format!("demand {k} has negative flow"));
            }
            if routed > volumes.get(k).copied().unwrap_or(0.0) + tol {
                return Some(format!(
                    "demand {k} routes {routed} > volume {}",
                    volumes.get(k).copied().unwrap_or(0.0)
                ));
            }
        }
        let loads = self.link_loads(alloc);
        for (l, load) in loads.iter().enumerate() {
            if *load > self.topology.links[l].capacity + tol {
                return Some(format!(
                    "link {} overloaded: {load} > {}",
                    self.topology.link_name(l),
                    self.topology.links[l].capacity
                ));
            }
        }
        None
    }
}

/// Prepared lexicographic max-flow solver for one [`TeProblem`].
///
/// Holds both stage LPs pre-standardized plus a warm-start [`SessionPool`];
/// [`TeLexSolver::solve_max_flow_lex`] only writes rhs values (demand
/// volumes, residual capacities, the stage-2 total pin) before re-solving.
/// The rhs computation mirrors [`TeProblem::max_flow_model`] bit for bit
/// and both paths funnel into the same solver entry point, so a prepared
/// solve returns *byte-identical* solutions to building the model afresh —
/// pinned by `te_lex_solver_matches_model_path` below and the analyzer's
/// replay suite.
pub struct TeLexSolver {
    stage1: Prepared,
    stage2: Prepared,
    /// Paths per demand, for flow extraction (demand rows are `0..n`).
    path_counts: Vec<usize>,
    /// Topology link capacities — the per-solve default (cap rows follow
    /// the demand rows).
    link_caps: Vec<f64>,
    pool: SessionPool,
}

impl TeLexSolver {
    /// Lexicographic max-flow (see [`TeProblem::solve_max_flow_lex`]) via
    /// rhs deltas on the prepared stage LPs.
    pub fn solve_max_flow_lex(
        &mut self,
        volumes: &[f64],
        capacities: Option<&[f64]>,
        skip_demand: &[bool],
    ) -> Result<TeAllocation, LpError> {
        let n = self.path_counts.len();
        for k in 0..n {
            let vol = if skip_demand.get(k).copied().unwrap_or(false) {
                0.0
            } else {
                volumes.get(k).copied().unwrap_or(0.0)
            };
            let rhs = vol.max(0.0);
            self.stage1.set_rhs(k, rhs);
            self.stage2.set_rhs(k, rhs);
        }
        for (l, &link_cap) in self.link_caps.iter().enumerate() {
            let cap = capacities.map(|c| c[l]).unwrap_or(link_cap).max(0.0);
            self.stage1.set_rhs(n + l, cap);
            self.stage2.set_rhs(n + l, cap);
        }
        let sol = self.pool.solve_prepared(&self.stage1)?;
        let total = sol.objective;

        let slack = 1e-9 * total.abs().max(1.0);
        self.stage2.set_rhs(n + self.link_caps.len(), total - slack);
        let sol2 = self.pool.solve_prepared(&self.stage2)?;

        let mut flows = Vec::with_capacity(n);
        let mut var_ix = 0usize;
        let mut routed = 0.0;
        for &count in &self.path_counts {
            let mut row = Vec::with_capacity(count);
            for _ in 0..count {
                let f = sol2.values[var_ix].max(0.0);
                routed += f;
                row.push(f);
                var_ix += 1;
            }
            flows.push(row);
        }
        Ok(TeAllocation {
            flows,
            total: routed,
        })
    }

    /// The benchmark (see [`TeProblem::optimal`]) through the prepared LPs.
    pub fn optimal(&mut self, volumes: &[f64]) -> Result<TeAllocation, LpError> {
        self.solve_max_flow_lex(volumes, None, &[])
    }

    /// The maximum total flow alone — stage 1's objective, skipping the
    /// vertex-refinement stage entirely.
    ///
    /// Stage 2 only decides *which* optimal allocation to report; the
    /// total is fixed by stage 1 (the objective is the plain sum of path
    /// flows). Callers that consume nothing but the value — the gap
    /// oracle's `OPT − DP`, evaluated tens of thousands of times per
    /// analysis — halve their LP count by calling this instead of
    /// [`TeLexSolver::solve_max_flow_lex`].
    pub fn total_flow(
        &mut self,
        volumes: &[f64],
        capacities: Option<&[f64]>,
        skip_demand: &[bool],
    ) -> Result<f64, LpError> {
        let n = self.path_counts.len();
        for k in 0..n {
            let vol = if skip_demand.get(k).copied().unwrap_or(false) {
                0.0
            } else {
                volumes.get(k).copied().unwrap_or(0.0)
            };
            self.stage1.set_rhs(k, vol.max(0.0));
        }
        for (l, &link_cap) in self.link_caps.iter().enumerate() {
            let cap = capacities.map(|c| c[l]).unwrap_or(link_cap).max(0.0);
            self.stage1.set_rhs(n + l, cap);
        }
        Ok(self.pool.solve_prepared(&self.stage1)?.objective)
    }

    /// Clone the prepared stage LPs with a *fresh* session pool.
    ///
    /// Every solve through the clone starts cold, so the returned vertex
    /// depends only on the input — exactly the model-building path's
    /// behavior, minus the per-call model build and standardization. This
    /// is what callers that need vertex determinism across threads (the
    /// explainer's DSL mappers) use: one prototype, one cheap cold clone
    /// per evaluation.
    pub fn cold_clone(&self) -> TeLexSolver {
        TeLexSolver {
            stage1: self.stage1.clone(),
            stage2: self.stage2.clone(),
            path_counts: self.path_counts.clone(),
            link_caps: self.link_caps.clone(),
            pool: SessionPool::new(),
        }
    }

    /// Aggregate solver statistics of the internal pool.
    pub fn stats(&self) -> SolverStats {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// A prepared solver and the model-building path must return
    /// byte-identical allocations across a sweep (they feed the replay
    /// pins, which compare serialized output exactly).
    #[test]
    fn te_lex_solver_matches_model_path() {
        let p = TeProblem::fig1a();
        let mut solver = p.lex_solver().unwrap();
        let mut pool = SessionPool::new();
        let sweeps: &[[f64; 3]] = &[
            [50.0, 100.0, 100.0],
            [0.0, 0.0, 0.0],
            [10.0, 90.0, 20.0],
            [100.0, 100.0, 100.0],
            [-5.0, 10.0, 10.0],
        ];
        for volumes in sweeps {
            let a = solver.solve_max_flow_lex(volumes, None, &[]).unwrap();
            let b = p
                .solve_max_flow_lex_pooled(volumes, None, &[], &mut pool)
                .unwrap();
            assert_eq!(a.total.to_bits(), b.total.to_bits());
            for (ra, rb) in a.flows.iter().zip(&b.flows) {
                for (fa, fb) in ra.iter().zip(rb) {
                    assert_eq!(fa.to_bits(), fb.to_bits());
                }
            }
        }
        // Residual-capacity + skip route (the DP phase-2 shape).
        let caps = vec![50.0, 50.0, 50.0, 50.0, 50.0];
        let skips = [true, false, false];
        let a = solver
            .solve_max_flow_lex(&[100.0, 100.0, 100.0], Some(&caps), &skips)
            .unwrap();
        let b = p
            .solve_max_flow_lex_pooled(&[100.0, 100.0, 100.0], Some(&caps), &skips, &mut pool)
            .unwrap();
        assert_eq!(a.total.to_bits(), b.total.to_bits());
    }

    #[test]
    fn fig1a_optimal_is_250() {
        let p = TeProblem::fig1a();
        let opt = p.optimal(&[50.0, 100.0, 100.0]).unwrap();
        assert_close(opt.total, 250.0);
        assert!(p
            .check_allocation(&[50.0, 100.0, 100.0], &opt, 1e-6)
            .is_none());
        // The optimal must route 1⇝3 over the long path 1-4-5-3.
        assert_close(opt.flows[0][1], 50.0);
        assert_close(opt.flows[0][0], 0.0);
    }

    #[test]
    fn optimal_zero_demands() {
        let p = TeProblem::fig1a();
        let opt = p.optimal(&[0.0, 0.0, 0.0]).unwrap();
        assert_close(opt.total, 0.0);
    }

    #[test]
    fn optimal_caps_by_capacity() {
        let p = TeProblem::fig1a();
        // Demand 2⇝3 of 500 can route at most 100 (link 2->3).
        let opt = p.optimal(&[0.0, 0.0, 500.0]).unwrap();
        assert_close(opt.total, 100.0);
    }

    #[test]
    fn fig4a_has_eight_demands() {
        let p = TeProblem::fig4a();
        assert_eq!(p.num_demands(), 8);
        // Paths listed in Fig. 4a: 1⇝3 has two, 1⇝5 has one (1-4-5)...
        assert_eq!(p.paths[1].len(), 2);
        let opt = p.optimal(&[10.0; 8]).unwrap();
        assert!(opt.total > 0.0);
    }

    #[test]
    fn no_path_rejected() {
        let topo = Topology::fig1a();
        let r = TeProblem::new(
            topo,
            vec![DemandPair { src: 2, dst: 0 }], // 3 ⇝ 1 unreachable
            8,
            100.0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn skip_demand_zeroes_volume() {
        let p = TeProblem::fig1a();
        let m = p.max_flow_model(&[50.0, 100.0, 100.0], None, &[true, false, false]);
        let sol = m.solve().unwrap();
        assert_close(sol.objective, 200.0); // only 1⇝2 and 2⇝3
    }

    #[test]
    fn residual_capacities_respected() {
        let p = TeProblem::fig1a();
        let caps = vec![50.0, 50.0, 50.0, 50.0, 50.0];
        let m = p.max_flow_model(&[100.0, 100.0, 100.0], Some(&caps), &[]);
        let sol = m.solve().unwrap();
        // 1->2 and 2->3 reduced to 50: total at most 50(1⇝2) + 50(2⇝3) + 50(1⇝3 long)
        assert_close(sol.objective, 150.0);
    }

    #[test]
    fn negative_volumes_clamped() {
        let p = TeProblem::fig1a();
        let opt = p.optimal(&[-5.0, 10.0, 10.0]).unwrap();
        assert_close(opt.total, 20.0);
    }

    #[test]
    fn demand_names() {
        let p = TeProblem::fig1a();
        assert_eq!(p.demand_name(0), "1~3");
        assert_eq!(p.demand_name(2), "2~3");
    }
}
