//! Fig. 4a: the traffic-engineering problem expressed in the XPlain DSL.
//!
//! Layout (matching the figure's rows):
//!
//! * **DEMANDS** — one split-source per demand whose emitted volume is the
//!   demand amount (an OuterVar for analysis); outgoing edges go to each
//!   candidate path node and to the *Unmet Demand* sink;
//! * **PATHS** — one copy node per (demand, path); the copy duplicates the
//!   path's flow onto every link node it traverses *and* onto the
//!   *Met Demand* sink (the copy-to-sink keeps the objective equal to
//!   total routed flow — see DESIGN.md §6 on this modeling note);
//! * **EDGES** — one split node per topology link, with its single outgoing
//!   edge capacity-limited to the link capacity (the  nodes of the
//!   figure), draining to a zero-weight ground sink.
//!
//! Compiling this network and maximizing yields exactly the optimal
//! max-flow benchmark; pinning the source variables evaluates the network
//! at a concrete input. Heuristic allocations are *mapped* onto the same
//! edges via [`TeDsl::assignment`], which is what the explainer diffs.

use crate::te::problem::{TeAllocation, TeProblem};
use xplain_flownet::{EdgeId, FlowNet, NodeId, SourceInput, SourceKind};

/// The DSL encoding of a TE problem plus the edge bookkeeping needed to
/// map allocations onto it.
#[derive(Debug, Clone)]
pub struct TeDsl {
    pub net: FlowNet,
    /// Source node per demand (for pinning input values).
    pub demand_nodes: Vec<NodeId>,
    /// `demand_path_edges[k][p]`: demand k → path-node edge.
    pub demand_path_edges: Vec<Vec<EdgeId>>,
    /// `unmet_edges[k]`: demand k → Unmet sink.
    pub unmet_edges: Vec<EdgeId>,
    /// `met_edges[k][p]`: path node → Met sink.
    pub met_edges: Vec<Vec<EdgeId>>,
    /// `path_link_edges[k][p]`: (link index, edge) pairs for the copies
    /// from path (k, p) to each traversed link node.
    pub path_link_edges: Vec<Vec<Vec<(usize, EdgeId)>>>,
    /// Ground drain per link.
    pub link_ground_edges: Vec<EdgeId>,
}

impl TeDsl {
    /// Build the Fig. 4a-style network for `problem`.
    pub fn build(problem: &TeProblem) -> Self {
        let mut net = FlowNet::new(format!("te[{}]", problem.num_demands()));
        let unmet_sink = net.sink("Unmet Demand", "SINKS", 0.0);
        let met_sink = net.sink("Met Demand", "SINKS", 1.0);
        let ground = net.sink("ground", "SINKS", 0.0);

        // EDGES row: one split node per link, capacity on the drain edge.
        let mut link_nodes = Vec::with_capacity(problem.topology.num_links());
        let mut link_ground_edges = Vec::with_capacity(problem.topology.num_links());
        for l in 0..problem.topology.num_links() {
            let name = problem.topology.link_name(l);
            let node = net.split(name.clone(), "EDGES");
            let e = net
                .edge(node, ground, format!("{name}|drain"))
                .capacity(problem.topology.links[l].capacity)
                .id();
            link_nodes.push(node);
            link_ground_edges.push(e);
        }

        let mut demand_nodes = Vec::new();
        let mut demand_path_edges = Vec::new();
        let mut unmet_edges = Vec::new();
        let mut met_edges = Vec::new();
        let mut path_link_edges = Vec::new();

        for (k, paths) in problem.paths.iter().enumerate() {
            let dname = problem.demand_name(k);
            let src = net.source(
                dname.clone(),
                "DEMANDS",
                SourceKind::Split,
                SourceInput::Var {
                    lo: 0.0,
                    hi: problem.demand_cap,
                },
            );
            demand_nodes.push(src);

            let mut dp_row = Vec::with_capacity(paths.len());
            let mut met_row = Vec::with_capacity(paths.len());
            let mut pl_row = Vec::with_capacity(paths.len());
            for (p, path) in paths.iter().enumerate() {
                let pname = path.name(&problem.topology);
                let pnode = net.copy(format!("{dname}|{pname}"), "PATHS");
                let dp = net.edge(src, pnode, format!("{dname}->{pname}")).id();
                dp_row.push(dp);
                let met = net
                    .edge(pnode, met_sink, format!("{dname}|{pname}->met"))
                    .id();
                met_row.push(met);
                let mut links = Vec::with_capacity(path.links.len());
                for &l in &path.links {
                    let e = net
                        .edge(
                            pnode,
                            link_nodes[l],
                            format!("{dname}|{pname}->{}", problem.topology.link_name(l)),
                        )
                        .id();
                    links.push((l, e));
                }
                pl_row.push((p, links));
            }
            let unmet = net.edge(src, unmet_sink, format!("{dname}->unmet")).id();

            demand_path_edges.push(dp_row);
            unmet_edges.push(unmet);
            met_edges.push(met_row);
            path_link_edges.push(pl_row.into_iter().map(|(_, links)| links).collect());
        }

        TeDsl {
            net,
            demand_nodes,
            demand_path_edges,
            unmet_edges,
            met_edges,
            path_link_edges,
            link_ground_edges,
        }
    }

    /// Map a (heuristic or benchmark) allocation at `volumes` onto per-edge
    /// flows of the DSL graph.
    pub fn assignment(&self, volumes: &[f64], alloc: &TeAllocation) -> Vec<f64> {
        let mut flows = vec![0.0; self.net.num_edges()];
        let mut link_load = vec![0.0; self.link_ground_edges.len()];
        for (k, row) in alloc.flows.iter().enumerate() {
            let mut routed = 0.0;
            for (p, &f) in row.iter().enumerate() {
                flows[self.demand_path_edges[k][p].0] = f;
                flows[self.met_edges[k][p].0] = f;
                for &(l, e) in &self.path_link_edges[k][p] {
                    flows[e.0] = f;
                    link_load[l] += f;
                }
                routed += f;
            }
            let vol = volumes.get(k).copied().unwrap_or(0.0).max(0.0);
            flows[self.unmet_edges[k].0] = (vol - routed).max(0.0);
        }
        for (l, &e) in self.link_ground_edges.iter().enumerate() {
            flows[e.0] = link_load[l];
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::te::demand_pinning::DemandPinning;
    use std::collections::BTreeMap;
    use xplain_flownet::CompileOptions;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn dsl_structure_matches_fig4a_rows() {
        let p = TeProblem::fig4a();
        let dsl = TeDsl::build(&p);
        dsl.net.validate().unwrap();
        let groups: std::collections::BTreeSet<&str> =
            dsl.net.nodes().iter().map(|n| n.group.as_str()).collect();
        assert!(groups.contains("DEMANDS"));
        assert!(groups.contains("PATHS"));
        assert!(groups.contains("EDGES"));
        assert_eq!(dsl.demand_nodes.len(), 8);
        // Fig. 4a lists 9 paths across the 8 demands.
        let n_paths: usize = dsl.demand_path_edges.iter().map(|r| r.len()).sum();
        assert_eq!(n_paths, 9);
    }

    /// Compiling the DSL and maximizing = the optimal benchmark.
    #[test]
    fn compiled_dsl_equals_optimal_lp() {
        let p = TeProblem::fig1a();
        let dsl = TeDsl::build(&p);
        let compiled = dsl.net.compile(&CompileOptions::default()).unwrap();
        let volumes = [50.0, 100.0, 100.0];
        let mut pins = BTreeMap::new();
        for (k, &node) in dsl.demand_nodes.iter().enumerate() {
            pins.insert(node, volumes[k]);
        }
        let pinned = compiled.with_source_values(&pins).unwrap();
        let sol = pinned.solve().unwrap();
        assert_close(sol.objective, 250.0);
    }

    #[test]
    fn optimal_assignment_is_dsl_valid() {
        let p = TeProblem::fig1a();
        let dsl = TeDsl::build(&p);
        let volumes = [50.0, 100.0, 100.0];
        let opt = p.optimal(&volumes).unwrap();
        let flows = dsl.assignment(&volumes, &opt);
        // Sources are variable-input so conservation at them is checked
        // against emitted volume implicitly; the structural checker must
        // accept the mapped assignment.
        assert_eq!(dsl.net.check_assignment(&flows, 1e-6), None);
        assert_close(dsl.net.objective_of(&flows), 250.0);
    }

    #[test]
    fn dp_assignment_is_dsl_valid_and_scores_lower() {
        let p = TeProblem::fig1a();
        let dsl = TeDsl::build(&p);
        let volumes = [50.0, 100.0, 100.0];
        let dp = DemandPinning::new(50.0).solve(&p, &volumes).unwrap();
        let flows = dsl.assignment(&volumes, &dp);
        assert_eq!(dsl.net.check_assignment(&flows, 1e-6), None);
        assert_close(dsl.net.objective_of(&flows), 150.0);
        // DP leaves 100 unmet in total (50 + 50 on the two big demands).
        let unmet: f64 = dsl.unmet_edges.iter().map(|e| flows[e.0]).sum();
        assert_close(unmet, 100.0);
    }

    #[test]
    fn heuristic_vs_optimal_differ_on_fig4a_edges() {
        // The explainer's raw signal: on the Fig. 1a adversarial input the
        // heuristic uses 1~3|1-2-3 while the optimal uses 1~3|1-4-5-3.
        let p = TeProblem::fig1a();
        let dsl = TeDsl::build(&p);
        let volumes = [50.0, 100.0, 100.0];
        let opt_flows = dsl.assignment(&volumes, &p.optimal(&volumes).unwrap());
        let dp_flows = dsl.assignment(
            &volumes,
            &DemandPinning::new(50.0).solve(&p, &volumes).unwrap(),
        );
        let short = dsl.demand_path_edges[0][0]; // 1~3 -> 1-2-3
        let long = dsl.demand_path_edges[0][1]; // 1~3 -> 1-4-5-3
        assert!(dp_flows[short.0] > 1.0 && opt_flows[short.0] < 1e-6);
        assert!(opt_flows[long.0] > 1.0 && dp_flows[long.0] < 1e-6);
    }
}
