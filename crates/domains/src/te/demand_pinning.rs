//! The Demand Pinning heuristic (§2, Fig. 1a/1b).
//!
//! DP "first filters all demands below a pre-defined threshold and routes
//! them through (pins them to) their shortest path. It then routes the
//! remaining demands optimally using the available capacity."
//!
//! Pinnable means `d <= T` (§3: "we call a demand d : d <= T a pinnable
//! demand"; Fig. 1a pins the demand that equals the threshold).

use crate::te::problem::{TeAllocation, TeLexSolver, TeProblem};
use serde::{Deserialize, Serialize};
use xplain_lp::{LpError, SessionPool};

/// What to do when a pinned demand exceeds the residual capacity of its
/// shortest path.
///
/// MetaOpt constrains the adversarial input so pins always fit (the
/// heuristic model would otherwise be infeasible); when *sampling* the
/// input space XPlain needs a total function, so the default clamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinOverflow {
    /// Route only what fits (total function; default for sampling).
    Clamp,
    /// Return an error (mirrors MetaOpt's hard-constraint semantics).
    Strict,
}

/// Demand Pinning configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandPinning {
    /// The pinning threshold `T_d`.
    pub threshold: f64,
    pub overflow: PinOverflow,
}

impl DemandPinning {
    pub fn new(threshold: f64) -> Self {
        DemandPinning {
            threshold,
            overflow: PinOverflow::Clamp,
        }
    }

    pub fn strict(threshold: f64) -> Self {
        DemandPinning {
            threshold,
            overflow: PinOverflow::Strict,
        }
    }

    /// Which demands DP pins for the given volumes.
    pub fn pinned(&self, volumes: &[f64]) -> Vec<bool> {
        volumes.iter().map(|&d| d <= self.threshold).collect()
    }

    /// Run the heuristic.
    ///
    /// Errors are either LP failures or, in strict mode, a pinned demand
    /// that does not fit its shortest path.
    pub fn solve(&self, problem: &TeProblem, volumes: &[f64]) -> Result<TeAllocation, DpError> {
        let mut pool = SessionPool::new();
        self.solve_pooled(problem, volumes, &mut pool)
    }

    /// [`DemandPinning::solve`] through a warm-start [`SessionPool`] —
    /// the analyzer evaluates thousands of demand vectors against one
    /// problem, and phase 2's residual max-flow LP never changes shape.
    pub fn solve_pooled(
        &self,
        problem: &TeProblem,
        volumes: &[f64],
        pool: &mut SessionPool,
    ) -> Result<TeAllocation, DpError> {
        let pin = self.pin_phase(problem, volumes)?;
        let alloc = problem
            .solve_max_flow_lex_pooled(volumes, Some(&pin.residual), &pin.pinned, pool)
            .map_err(DpError::Lp)?;
        Ok(pin.merge(problem, alloc))
    }

    /// [`DemandPinning::solve`] through a prepared [`TeLexSolver`]: the
    /// phase-2 LP re-solves by rhs deltas — no per-evaluation model build.
    pub fn solve_prepared(
        &self,
        problem: &TeProblem,
        volumes: &[f64],
        solver: &mut TeLexSolver,
    ) -> Result<TeAllocation, DpError> {
        let pin = self.pin_phase(problem, volumes)?;
        let alloc = solver
            .solve_max_flow_lex(volumes, Some(&pin.residual), &pin.pinned)
            .map_err(DpError::Lp)?;
        Ok(pin.merge(problem, alloc))
    }

    /// Phase 1: pin. Process in demand order (deterministic).
    fn pin_phase(&self, problem: &TeProblem, volumes: &[f64]) -> Result<PinPhase, DpError> {
        let n = problem.num_demands();
        let pinned = self.pinned(volumes);
        let mut residual: Vec<f64> = problem.topology.links.iter().map(|l| l.capacity).collect();
        let mut flows: Vec<Vec<f64>> = problem.paths.iter().map(|ps| vec![0.0; ps.len()]).collect();
        let mut pinned_total = 0.0;

        for k in 0..n {
            if !pinned[k] {
                continue;
            }
            let want = volumes.get(k).copied().unwrap_or(0.0).max(0.0);
            if want == 0.0 {
                continue;
            }
            let shortest = &problem.paths[k][0];
            let avail = shortest
                .links
                .iter()
                .map(|&l| residual[l])
                .fold(f64::INFINITY, f64::min);
            let route = match self.overflow {
                PinOverflow::Clamp => want.min(avail),
                PinOverflow::Strict => {
                    if want > avail + 1e-9 {
                        return Err(DpError::PinOverflow {
                            demand: k,
                            want,
                            available: avail,
                        });
                    }
                    want
                }
            };
            for &l in &shortest.links {
                residual[l] -= route;
            }
            flows[k][0] = route;
            pinned_total += route;
        }
        Ok(PinPhase {
            pinned,
            residual,
            flows,
            pinned_total,
        })
    }

    /// The performance gap `OPT(volumes) - DP(volumes)` (nonnegative up to
    /// LP tolerance, since DP is a restriction of OPT).
    pub fn gap(&self, problem: &TeProblem, volumes: &[f64]) -> Result<f64, DpError> {
        let mut pool = SessionPool::new();
        self.gap_pooled(problem, volumes, &mut pool)
    }

    /// [`DemandPinning::gap`] through a warm-start [`SessionPool`].
    pub fn gap_pooled(
        &self,
        problem: &TeProblem,
        volumes: &[f64],
        pool: &mut SessionPool,
    ) -> Result<f64, DpError> {
        let opt = problem.optimal_pooled(volumes, pool).map_err(DpError::Lp)?;
        let dp = self.solve_pooled(problem, volumes, pool)?;
        Ok(opt.total - dp.total)
    }

    /// [`DemandPinning::gap`] through a prepared [`TeLexSolver`] — the
    /// analyzer's hot path (phase 2 / E7 fan-out): two stage-1 LP solves
    /// per evaluation, zero model builds. The gap consumes only *totals*,
    /// and the total max flow is stage 1's objective — the lexicographic
    /// refinement stage only selects which optimal vertex to report — so
    /// this path skips it via [`TeLexSolver::total_flow`]. The value may
    /// differ from [`DemandPinning::gap_pooled`] in trailing floating-point
    /// bits (the pooled path re-sums the refined vertex's flows); callers
    /// needing the allocation itself use [`DemandPinning::solve_prepared`].
    pub fn gap_prepared(
        &self,
        problem: &TeProblem,
        volumes: &[f64],
        solver: &mut TeLexSolver,
    ) -> Result<f64, DpError> {
        let opt_total = solver.total_flow(volumes, None, &[]).map_err(DpError::Lp)?;
        let pin = self.pin_phase(problem, volumes)?;
        let phase2_total = solver
            .total_flow(volumes, Some(&pin.residual), &pin.pinned)
            .map_err(DpError::Lp)?;
        Ok(opt_total - (pin.pinned_total + phase2_total))
    }
}

/// The deterministic pin pass: what phase 1 routed and what is left.
struct PinPhase {
    pinned: Vec<bool>,
    residual: Vec<f64>,
    flows: Vec<Vec<f64>>,
    pinned_total: f64,
}

impl PinPhase {
    /// Overlay the phase-2 allocation of the unpinned demands.
    fn merge(mut self, problem: &TeProblem, alloc: TeAllocation) -> TeAllocation {
        for (k, paths) in problem.paths.iter().enumerate() {
            for (p, _) in paths.iter().enumerate() {
                if !self.pinned[k] {
                    self.flows[k][p] = alloc.flows[k][p];
                }
            }
        }
        TeAllocation {
            total: self.pinned_total + alloc.total,
            flows: self.flows,
        }
    }
}

/// Errors from the DP heuristic.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    Lp(LpError),
    PinOverflow {
        demand: usize,
        want: f64,
        available: f64,
    },
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::Lp(e) => write!(f, "LP failure: {e}"),
            DpError::PinOverflow {
                demand,
                want,
                available,
            } => write!(
                f,
                "pinned demand {demand} wants {want} but only {available} fits its shortest path"
            ),
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// The headline Fig. 1a table: DP totals 150 vs OPT 250.
    #[test]
    fn fig1a_dp_is_150() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(50.0);
        let volumes = [50.0, 100.0, 100.0];
        let alloc = dp.solve(&p, &volumes).unwrap();
        assert_close(alloc.total, 150.0);
        // Demand 1⇝3 (= threshold) pinned to its shortest path 1-2-3.
        assert_close(alloc.flows[0][0], 50.0);
        assert_close(alloc.flows[0][1], 0.0);
        // 1⇝2 and 2⇝3 squeezed to 50 each by the pinned flow.
        assert_close(alloc.flows[1][0], 50.0);
        assert_close(alloc.flows[2][0], 50.0);
        assert!(p.check_allocation(&volumes, &alloc, 1e-6).is_none());
        // And the gap is 100 (40% of OPT) — the paper's motivating number.
        assert_close(dp.gap(&p, &volumes).unwrap(), 100.0);
    }

    #[test]
    fn no_pinnable_matches_optimal() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(10.0); // nothing at or below 10
        let volumes = [50.0, 100.0, 100.0];
        let alloc = dp.solve(&p, &volumes).unwrap();
        assert_close(alloc.total, 250.0);
        assert_close(dp.gap(&p, &volumes).unwrap(), 0.0);
    }

    #[test]
    fn everything_pinned() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(1000.0);
        let volumes = [50.0, 100.0, 100.0];
        let alloc = dp.solve(&p, &volumes).unwrap();
        // All demands pinned to shortest paths in order:
        // 1⇝3 takes 50 on 1-2-3, leaving 50 on both 1->2 and 2->3;
        // 1⇝2 then pins 100 but only 50 fits (clamped); 2⇝3 likewise.
        assert_close(alloc.total, 150.0);
    }

    #[test]
    fn strict_mode_errors_on_overflow() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::strict(1000.0);
        let volumes = [50.0, 100.0, 100.0];
        assert!(matches!(
            dp.solve(&p, &volumes),
            Err(DpError::PinOverflow { .. })
        ));
    }

    #[test]
    fn gap_nonnegative_on_grid() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(50.0);
        for &a in &[0.0, 25.0, 50.0, 75.0, 100.0] {
            for &b in &[0.0, 50.0, 100.0] {
                for &c in &[0.0, 50.0, 100.0] {
                    let g = dp.gap(&p, &[a, b, c]).unwrap();
                    assert!(g >= -1e-6, "gap {g} at ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn zero_demand_not_counted() {
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(50.0);
        let alloc = dp.solve(&p, &[0.0, 0.0, 0.0]).unwrap();
        assert_close(alloc.total, 0.0);
    }

    #[test]
    fn pinned_classification() {
        let dp = DemandPinning::new(50.0);
        assert_eq!(
            dp.pinned(&[49.0, 50.0, 51.0, 0.0]),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn dp_never_beats_optimal_random_points() {
        use rand::{Rng, SeedableRng};
        let p = TeProblem::fig1a();
        let dp = DemandPinning::new(50.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let v: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..100.0)).collect();
            let g = dp.gap(&p, &v).unwrap();
            assert!(g >= -1e-6, "negative gap {g} at {v:?}");
        }
    }
}
