//! Traffic engineering: the Demand Pinning running example (§2, Fig. 1).

pub mod demand_pinning;
pub mod dsl;
pub mod paths;
pub mod problem;
pub mod topology;

pub use demand_pinning::{DemandPinning, DpError, PinOverflow};
pub use dsl::TeDsl;
pub use paths::{k_shortest_paths, Path};
pub use problem::{DemandPair, TeAllocation, TeLexSolver, TeProblem};
pub use topology::{Link, Topology};
