//! Makespan scheduling in the XPlain DSL.
//!
//! Same shape as the Fig. 4b bin-packing encoding:
//!
//! * **JOBS** — one pick-source per job; its processing time is the
//!   emitted volume (an OuterVar for analysis), and pick behavior
//!   enforces "each job runs on exactly one machine";
//! * **MACHINES** — one split node per machine draining into the *Work*
//!   sink (machine loads have no hard capacity; the makespan is the
//!   largest drain flow).
//!
//! Identical machines are interchangeable, so raw machine indices would
//! wash the explainer's heat-map out to zero: a benchmark that assigns
//! jobs `{0,1}` to machine 0 and one that assigns them to machine 1
//! describe the same schedule. [`SchedDsl::assignment`] therefore maps
//! machines to *canonical slots* — ordered by the smallest job index each
//! machine carries — before laying flows on the job→machine edges. The
//! explainer then sees "LPT separates the two longest jobs; the optimum
//! pairs them", not machine-label noise.

use crate::sched::instance::{SchedInstance, Schedule};
use xplain_flownet::{EdgeId, FlowNet, NodeId, SourceInput, SourceKind};

/// DSL encoding of a makespan-scheduling instance shape.
#[derive(Debug, Clone)]
pub struct SchedDsl {
    pub net: FlowNet,
    /// Source node per job.
    pub job_nodes: Vec<NodeId>,
    /// `job_machine_edges[i][s]`: job i → machine-slot s edge.
    pub job_machine_edges: Vec<Vec<EdgeId>>,
    /// Machine-slot → work-sink drain edges.
    pub machine_drain_edges: Vec<EdgeId>,
    pub num_machines: usize,
}

impl SchedDsl {
    /// Build the network for `n_jobs` jobs and `n_machines` machine slots;
    /// processing times range over `[0, p_max]`.
    pub fn build(n_jobs: usize, n_machines: usize, p_max: f64) -> Self {
        let mut net = FlowNet::new(format!("sched[{n_jobs}x{n_machines}]"));
        let work = net.sink("Work", "SINKS", 1.0);

        let mut machine_nodes = Vec::with_capacity(n_machines);
        let mut machine_drain_edges = Vec::with_capacity(n_machines);
        for s in 0..n_machines {
            let node = net.split(format!("M{s}"), "MACHINES");
            let drain = net.edge(node, work, format!("M{s}|drain")).id();
            machine_nodes.push(node);
            machine_drain_edges.push(drain);
        }

        let mut job_nodes = Vec::with_capacity(n_jobs);
        let mut job_machine_edges = Vec::with_capacity(n_jobs);
        for i in 0..n_jobs {
            let src = net.source(
                format!("J{i}"),
                "JOBS",
                SourceKind::Pick,
                SourceInput::Var { lo: 0.0, hi: p_max },
            );
            job_nodes.push(src);
            let mut row = Vec::with_capacity(n_machines);
            for (s, &machine) in machine_nodes.iter().enumerate() {
                let e = net.edge(src, machine, format!("J{i}->M{s}")).id();
                row.push(e);
            }
            job_machine_edges.push(row);
        }

        SchedDsl {
            net,
            job_nodes,
            job_machine_edges,
            machine_drain_edges,
            num_machines: n_machines,
        }
    }

    /// Map a schedule onto DSL edge flows (job i's processing time flows
    /// on its job→slot edge). Schedules over more machines than the DSL
    /// has slots return `None`.
    pub fn assignment(&self, inst: &SchedInstance, schedule: &Schedule) -> Option<Vec<f64>> {
        if inst.num_jobs() != self.job_nodes.len() {
            return None;
        }
        if schedule.assignment.iter().any(|&m| m >= inst.machines)
            || schedule.assignment.len() != inst.num_jobs()
        {
            return None;
        }
        let slot_of = canonical_machine_slots(&schedule.assignment, inst.machines);
        let mut flows = vec![0.0; self.net.num_edges()];
        let mut slot_load = vec![0.0; self.num_machines];
        for (i, &m) in schedule.assignment.iter().enumerate() {
            let s = slot_of[m];
            // Empty machines sort last, so a used slot out of range means
            // the schedule genuinely needs more machines than the DSL has.
            if s >= self.num_machines {
                return None;
            }
            flows[self.job_machine_edges[i][s].0] = inst.jobs[i];
            slot_load[s] += inst.jobs[i];
        }
        for (s, &e) in self.machine_drain_edges.iter().enumerate() {
            flows[e.0] = slot_load[s];
        }
        Some(flows)
    }
}

/// Canonical machine → slot map: machines ordered by the smallest job
/// index they carry (empty machines last, by original index). Identical
/// machines are interchangeable, so this is the identity the heat-map
/// needs: two schedules that differ only by a machine permutation get
/// identical flows.
pub fn canonical_machine_slots(assignment: &[usize], machines: usize) -> Vec<usize> {
    let mut first_job = vec![usize::MAX; machines];
    for (i, &m) in assignment.iter().enumerate() {
        if m < machines && first_job[m] == usize::MAX {
            first_job[m] = i;
        }
    }
    let mut order: Vec<usize> = (0..machines).collect();
    order.sort_by_key(|&m| (first_job[m], m));
    let mut slot_of = vec![0usize; machines];
    for (slot, &m) in order.iter().enumerate() {
        slot_of[m] = slot;
    }
    slot_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::exact::optimal;
    use crate::sched::lpt::lpt;

    #[test]
    fn structure_validates() {
        let dsl = SchedDsl::build(5, 2, 3.0);
        dsl.net.validate().unwrap();
        assert_eq!(dsl.job_nodes.len(), 5);
        assert_eq!(dsl.machine_drain_edges.len(), 2);
        assert_eq!(dsl.net.num_edges(), 5 * 2 + 2);
    }

    #[test]
    fn lpt_and_optimal_assignments_check_out() {
        let inst = SchedInstance::two_machine_example();
        let dsl = SchedDsl::build(5, 2, 3.0);
        let h = dsl.assignment(&inst, &lpt(&inst)).unwrap();
        let b = dsl.assignment(&inst, &optimal(&inst)).unwrap();
        assert_eq!(dsl.net.check_assignment(&h, 1e-9), None);
        assert_eq!(dsl.net.check_assignment(&b, 1e-9), None);
        // Total routed work is the same; the split across machines is not.
        let total: f64 = inst.jobs.iter().sum();
        assert!((dsl.net.objective_of(&h) - total).abs() < 1e-9);
        assert!((dsl.net.objective_of(&b) - total).abs() < 1e-9);
        assert_ne!(h, b, "heuristic and benchmark should disagree here");
    }

    #[test]
    fn canonicalization_kills_machine_permutations() {
        let inst = SchedInstance::two_machine_example();
        let dsl = SchedDsl::build(5, 2, 3.0);
        let a = Schedule::from_assignment(&inst, vec![0, 0, 1, 1, 1]);
        // The same schedule with machines relabeled.
        let b = Schedule::from_assignment(&inst, vec![1, 1, 0, 0, 0]);
        assert_eq!(
            dsl.assignment(&inst, &a).unwrap(),
            dsl.assignment(&inst, &b).unwrap()
        );
    }

    #[test]
    fn job_zeros_machine_is_slot_zero() {
        let slots = canonical_machine_slots(&[2, 0, 1, 0], 3);
        // Machine 2 carries job 0 → slot 0; machine 0 carries job 1 →
        // slot 1; machine 1 carries job 2 → slot 2.
        assert_eq!(slots, vec![1, 2, 0]);
    }

    #[test]
    fn empty_machines_sort_last() {
        let slots = canonical_machine_slots(&[1, 1], 3);
        assert_eq!(slots[1], 0);
        assert_eq!(slots[0], 1);
        assert_eq!(slots[2], 2);
    }

    #[test]
    fn wrong_job_count_rejected() {
        let inst = SchedInstance::new(2, vec![1.0, 2.0]);
        let dsl = SchedDsl::build(5, 2, 3.0);
        assert!(dsl.assignment(&inst, &lpt(&inst)).is_none());
    }

    #[test]
    fn too_many_machines_rejected() {
        let inst = SchedInstance::new(3, vec![1.0, 2.0, 3.0]);
        let dsl = SchedDsl::build(3, 2, 3.0); // only 2 slots in the DSL
        let s = Schedule::from_assignment(&inst, vec![0, 1, 2]);
        assert!(dsl.assignment(&inst, &s).is_none());
    }
}
