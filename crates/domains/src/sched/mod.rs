//! Makespan scheduling (`P || C_max`) with the **LPT** heuristic against
//! an exact optimum — the third evaluation domain, added to prove the
//! runtime's `Domain` registry is genuinely open (the paper's §6 pitch:
//! operators point XPlain at *their* heuristic, not just the two running
//! examples).
//!
//! * [`instance`] — instances, schedules, and the Graham-tight family;
//! * [`mod@lpt`] — Longest Processing Time first (deterministic
//!   tie-breaks);
//! * [`exact`] — branch-and-bound optimum plus the cross-checking MILP
//!   formulation over `xplain-lp`;
//! * [`dsl`] — the flow-network DSL encoding (jobs as pick-sources,
//!   machines as split nodes) with canonical machine slots so the
//!   explainer's heat-map is invariant to machine permutations.

pub mod dsl;
pub mod exact;
pub mod instance;
pub mod lpt;

pub use dsl::{canonical_machine_slots, SchedDsl};
pub use exact::{optimal, optimal_milp, optimal_milp_stats};
pub use instance::{SchedInstance, Schedule};
pub use lpt::{list_schedule, lpt, lpt_capped};
