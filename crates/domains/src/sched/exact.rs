//! Exact (optimal) makespan scheduling.
//!
//! The benchmark side of the analyzer needs true optima. Mirroring the
//! VBP domain, two routes are provided:
//!
//! * [`optimal`] — depth-first branch and bound specialized to `P || C_max`
//!   (jobs in descending order, machine-load symmetry breaking, incumbent
//!   seeded with LPT). This is what the gap oracle calls on the hot path —
//!   it is exact and orders of magnitude faster than the generic MILP.
//! * [`optimal_milp`] — the assignment MILP over `xplain-lp` (binaries
//!   `x[i][j]`, makespan variable `C`). The tests assert both agree, so
//!   the cheap route inherits the MILP's exactness guarantee.

use crate::sched::instance::{SchedInstance, Schedule};
use crate::sched::lpt::lpt;
use xplain_lp::{milp, Cmp, LinExpr, LpError, Model, Sense, VarType};

const TOL: f64 = 1e-9;

/// Exact optimum by branch and bound. Suitable for the analysis-scale
/// instances (n ≲ 20).
pub fn optimal(inst: &SchedInstance) -> Schedule {
    let n = inst.num_jobs();
    if n == 0 {
        return Schedule::from_assignment(inst, Vec::new());
    }

    // Incumbent from LPT; the volume/longest-job bound proves optimality
    // early on benign instances.
    let mut best = lpt(inst);
    let lower = inst.lower_bound();
    if best.makespan <= lower + TOL {
        return best;
    }

    // Jobs in descending order: big jobs fail fast.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        inst.jobs[b]
            .partial_cmp(&inst.jobs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // Suffix sums of remaining work for the volume bound at each depth.
    let mut suffix = vec![0.0; n + 1];
    for d in (0..n).rev() {
        suffix[d] = suffix[d + 1] + inst.jobs[order[d]];
    }

    struct Ctx<'a> {
        inst: &'a SchedInstance,
        order: &'a [usize],
        suffix: &'a [f64],
        lower: f64,
        best_makespan: f64,
        best_assignment: Vec<usize>,
        assignment: Vec<usize>,
    }

    fn recurse(ctx: &mut Ctx<'_>, depth: usize, loads: &mut [f64], cur_max: f64) {
        if cur_max >= ctx.best_makespan - TOL {
            return; // cannot improve
        }
        if depth == ctx.order.len() {
            ctx.best_makespan = cur_max;
            ctx.best_assignment = ctx.assignment.clone();
            return;
        }
        // Volume bound over the remaining work.
        let total_left: f64 = ctx.suffix[depth] + loads.iter().sum::<f64>();
        if total_left / loads.len() as f64 >= ctx.best_makespan - TOL {
            return;
        }
        let job_ix = ctx.order[depth];
        let p = ctx.inst.jobs[job_ix];
        let mut tried = Vec::with_capacity(loads.len());
        for m in 0..loads.len() {
            // Machines with equal loads are interchangeable: try one.
            if tried.iter().any(|&l: &f64| (l - loads[m]).abs() < TOL) {
                continue;
            }
            tried.push(loads[m]);
            loads[m] += p;
            ctx.assignment[job_ix] = m;
            recurse(ctx, depth + 1, loads, cur_max.max(loads[m]));
            loads[m] -= p;
            if ctx.best_makespan <= ctx.lower + TOL {
                return; // proven optimal
            }
        }
    }

    let mut ctx = Ctx {
        inst,
        order: &order,
        suffix: &suffix,
        lower,
        best_makespan: best.makespan,
        best_assignment: best.assignment.clone(),
        assignment: vec![0usize; n],
    };
    let mut loads = vec![0.0; inst.machines];
    recurse(&mut ctx, 0, &mut loads, 0.0);

    if ctx.best_makespan < best.makespan - TOL {
        best = Schedule::from_assignment(inst, ctx.best_assignment);
    }
    best
}

/// MILP formulation (cross-check for [`optimal`]): binaries `x[i][j]`
/// (job i on machine j), continuous makespan `C >= load_j`; job 0 is
/// pinned to machine 0 to break machine symmetry.
pub fn optimal_milp(inst: &SchedInstance) -> Result<Schedule, LpError> {
    optimal_milp_stats(inst).map(|(s, _)| s)
}

/// [`optimal_milp`] plus branch-and-bound work counters — the regression
/// tests pin node counts on these encodings so a warm-start bug that
/// silently explores extra nodes fails CI instead of just running slower.
pub fn optimal_milp_stats(inst: &SchedInstance) -> Result<(Schedule, milp::MilpStats), LpError> {
    let n = inst.num_jobs();
    if n == 0 {
        return Ok((
            Schedule::from_assignment(inst, Vec::new()),
            milp::MilpStats::default(),
        ));
    }
    let m_count = inst.machines;
    let total: f64 = inst.jobs.iter().sum();

    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<_>> = (0..n)
        .map(|i| {
            (0..m_count)
                .map(|j| m.add_binary(format!("x[{i},{j}]")))
                .collect()
        })
        .collect();
    let c = m.add_var("C", VarType::Continuous, inst.lower_bound(), total);

    for i in 0..n {
        m.add_constr(
            format!("place[{i}]"),
            LinExpr::sum(x[i].iter().copied()),
            Cmp::Eq,
            1.0,
        );
    }
    for j in 0..m_count {
        let mut load = LinExpr::new();
        for i in 0..n {
            load.add_term(x[i][j], inst.jobs[i]);
        }
        load.add_term(c, -1.0);
        m.add_constr(format!("makespan[{j}]"), load, Cmp::Le, 0.0);
    }
    // Symmetry breaking: job 0 runs on machine 0.
    m.add_constr("sym", LinExpr::term(x[0][0], 1.0), Cmp::Eq, 1.0);
    m.set_objective(LinExpr::term(c, 1.0));
    let (sol, stats) = milp::solve_with(&m, milp::Backend::Revised)?;

    let mut assignment = vec![0usize; n];
    for i in 0..n {
        for j in 0..m_count {
            if sol.value(x[i][j]) > 0.5 {
                assignment[i] = j;
                break;
            }
        }
    }
    Ok((Schedule::from_assignment(inst, assignment), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_machine_example_optimum_is_six() {
        let inst = SchedInstance::two_machine_example();
        let s = optimal(&inst);
        assert!(s.check(&inst, 1e-9).is_none());
        assert!((s.makespan - 6.0).abs() < 1e-9, "{}", s.makespan);
    }

    #[test]
    fn tight_family_optimum_is_3m() {
        for machines in 2..=5 {
            let inst = SchedInstance::lpt_tight(machines);
            let s = optimal(&inst);
            assert!(
                (s.makespan - (3 * machines) as f64).abs() < 1e-9,
                "m = {machines}: {}",
                s.makespan
            );
        }
    }

    #[test]
    fn milp_agrees_on_the_examples() {
        for inst in [
            SchedInstance::two_machine_example(),
            SchedInstance::lpt_tight(3),
        ] {
            let bnb = optimal(&inst);
            let milp = optimal_milp(&inst).unwrap();
            assert!(milp.check(&inst, 1e-6).is_none());
            assert!(
                (bnb.makespan - milp.makespan).abs() < 1e-6,
                "B&B {} vs MILP {}",
                bnb.makespan,
                milp.makespan
            );
        }
    }

    #[test]
    fn milp_and_bnb_agree_on_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..8 {
            let n = rng.gen_range(2..7);
            let machines = rng.gen_range(2..4);
            let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
            let inst = SchedInstance::new(machines, jobs.clone());
            let a = optimal(&inst);
            let b = optimal_milp(&inst).unwrap();
            assert!(
                (a.makespan - b.makespan).abs() < 1e-6,
                "jobs {jobs:?} on {machines} machines: B&B {} vs MILP {}",
                a.makespan,
                b.makespan
            );
        }
    }

    #[test]
    fn optimal_never_above_lpt_nor_below_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(1..10);
            let machines = rng.gen_range(1..4);
            let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..3.0)).collect();
            let inst = SchedInstance::new(machines, jobs);
            let opt = optimal(&inst);
            assert!(opt.check(&inst, 1e-9).is_none());
            assert!(opt.makespan <= lpt(&inst).makespan + 1e-9);
            assert!(opt.makespan >= inst.lower_bound() - 1e-9);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = SchedInstance::new(2, vec![]);
        assert_eq!(optimal(&inst).makespan, 0.0);
    }
}
