//! The LPT (Longest Processing Time first) heuristic.
//!
//! Jobs are sorted by processing time descending and each is assigned to
//! the currently least-loaded machine. Graham's bound says LPT is within
//! `4/3 − 1/(3m)` of optimal; the [`SchedInstance::lpt_tight`] family
//! attains it, which is what makes this a worthwhile heuristic to point
//! XPlain at.

use crate::sched::instance::{SchedInstance, Schedule};

/// Run LPT. Ties in processing time keep input order; ties in machine load
/// go to the lowest machine index — both choices make the heuristic fully
/// deterministic, which the runtime's bit-for-bit reproducibility checks
/// rely on.
pub fn lpt(inst: &SchedInstance) -> Schedule {
    let mut order: Vec<usize> = (0..inst.num_jobs()).collect();
    order.sort_by(|&a, &b| {
        inst.jobs[b]
            .partial_cmp(&inst.jobs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    list_schedule(inst, &order)
}

/// LPT with a MULTIFIT-style capacity cap: jobs are taken longest-first
/// and placed on the first machine (lowest index) whose load stays within
/// `cap_factor × lower_bound` — falling back to the least-loaded machine
/// when no machine has room. `cap_factor = 0.0` caps nothing under the
/// bound, so every job takes the fallback and the result is exactly
/// [`lpt`] — the identity default the tuner starts from. `cap_factor`
/// near 1 bin-packs jobs against the makespan lower bound, which pairs
/// the long jobs of the Graham-tight family the way the optimum does.
pub fn lpt_capped(inst: &SchedInstance, cap_factor: f64) -> Schedule {
    let cap = cap_factor * inst.lower_bound();
    let mut order: Vec<usize> = (0..inst.num_jobs()).collect();
    order.sort_by(|&a, &b| {
        inst.jobs[b]
            .partial_cmp(&inst.jobs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut loads = vec![0.0f64; inst.machines];
    let mut assignment = vec![0usize; inst.num_jobs()];
    for &i in &order {
        let p = inst.jobs[i];
        // A non-positive factor disables the cap entirely (rather than
        // letting zero-length jobs sneak under it), so the fallback —
        // least-loaded, lowest index — handles every job: exactly `lpt`.
        let capped = if cap_factor > 0.0 {
            loads.iter().position(|&l| l + p <= cap + 1e-9)
        } else {
            None
        };
        let target = capped.unwrap_or_else(|| {
            loads
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        });
        assignment[i] = target;
        loads[target] += p;
    }
    Schedule::from_assignment(inst, assignment)
}

/// List scheduling in the given job order: each job goes to the machine
/// with the smallest current load (lowest index on ties).
pub fn list_schedule(inst: &SchedInstance, order: &[usize]) -> Schedule {
    let mut loads = vec![0.0f64; inst.machines];
    let mut assignment = vec![0usize; inst.num_jobs()];
    for &i in order {
        let target = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        assignment[i] = target;
        loads[target] += inst.jobs[i];
    }
    Schedule::from_assignment(inst, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_on_two_machine_example() {
        let inst = SchedInstance::two_machine_example();
        let s = lpt(&inst);
        assert!(s.check(&inst, 1e-9).is_none());
        // 3→M0, 3→M1, 2→M0 (5), 2→M1 (5), 2→M0 (7).
        assert!((s.makespan - 7.0).abs() < 1e-9, "{}", s.makespan);
    }

    #[test]
    fn lpt_attains_grahams_tight_bound() {
        for m in 2..=5 {
            let inst = SchedInstance::lpt_tight(m);
            let s = lpt(&inst);
            assert!(
                (s.makespan - (4 * m - 1) as f64).abs() < 1e-9,
                "m = {m}: {}",
                s.makespan
            );
        }
    }

    #[test]
    fn lpt_is_optimal_on_balanced_pairs() {
        let inst = SchedInstance::new(2, vec![0.6, 0.4, 0.6, 0.4]);
        let s = lpt(&inst);
        assert!((s.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_job() {
        let empty = SchedInstance::new(3, vec![]);
        assert_eq!(lpt(&empty).makespan, 0.0);
        let one = SchedInstance::new(3, vec![2.5]);
        assert!((lpt(&one).makespan - 2.5).abs() < 1e-9);
    }

    /// `cap_factor = 0` must be *exactly* LPT: the tuner's default
    /// candidate may not change behavior.
    #[test]
    fn capped_zero_is_lpt() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..40 {
            let m = rng.gen_range(1..4);
            let n = rng.gen_range(0..10);
            let jobs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
            let inst = SchedInstance::new(m, jobs);
            let a = lpt(&inst);
            let b = lpt_capped(&inst, 0.0);
            assert_eq!(a.assignment, b.assignment);
            assert!((a.makespan - b.makespan).abs() < 1e-12);
        }
    }

    /// At `cap_factor = 1` the cap equals the makespan lower bound and
    /// the Graham-tight family is scheduled optimally: the long jobs
    /// pair up instead of splitting, closing LPT's `m − 1` gap.
    #[test]
    fn capped_repairs_graham_tight_family() {
        for m in 2..=5 {
            let inst = SchedInstance::lpt_tight(m);
            let s = lpt_capped(&inst, 1.0);
            assert!(s.check(&inst, 1e-9).is_none());
            assert!(
                (s.makespan - (3 * m) as f64).abs() < 1e-9,
                "m = {m}: capped makespan {} != optimal {}",
                s.makespan,
                3 * m
            );
        }
    }

    #[test]
    fn never_below_the_lower_bound() {
        let inst = SchedInstance::new(3, vec![4.0, 3.0, 3.0, 2.0, 2.0, 1.0]);
        let s = lpt(&inst);
        assert!(s.makespan >= inst.lower_bound() - 1e-9);
    }
}
