//! Makespan-scheduling instances and schedules.
//!
//! `P || C_max`: `n` jobs with processing times `p_i` are assigned to `m`
//! identical machines; the makespan is the largest machine load. This is
//! the third evaluation domain — beyond the paper's two running examples —
//! registered with the runtime to prove the `Domain` interface is open.

use serde::{Deserialize, Serialize};

/// A scheduling instance: identical machines plus job processing times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedInstance {
    pub machines: usize,
    /// `jobs[i]` = processing time of job `i`.
    pub jobs: Vec<f64>,
}

impl SchedInstance {
    pub fn new(machines: usize, jobs: Vec<f64>) -> Self {
        SchedInstance { machines, jobs }
    }

    /// The classic LPT worst case for `m` machines: two jobs each of sizes
    /// `2m-1 .. m+1` plus three jobs of size `m` (`2m+1` jobs total).
    /// OPT balances every machine at `3m`; LPT reaches `4m-1`, so the gap
    /// is `m - 1` — growing with the machine count, which is exactly the
    /// Type-3 trend the generalizer should discover.
    pub fn lpt_tight(machines: usize) -> Self {
        assert!(machines >= 2, "the tight family needs at least 2 machines");
        let m = machines;
        let mut jobs = Vec::with_capacity(2 * m + 1);
        for size in (m + 1..=2 * m - 1).rev() {
            jobs.push(size as f64);
            jobs.push(size as f64);
        }
        jobs.extend([m as f64; 3]);
        SchedInstance::new(m, jobs)
    }

    /// The 2-machine miniature used throughout the docs and tests:
    /// `p = (3, 3, 2, 2, 2)`. LPT ends at makespan 7, the optimum
    /// (`{3,3} | {2,2,2}`) at 6.
    pub fn two_machine_example() -> Self {
        SchedInstance::lpt_tight(2)
    }

    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Sanity checks: at least one machine, finite nonnegative times.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("zero machines".into());
        }
        for (i, &p) in self.jobs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(format!("job {i} has processing time {p}"));
            }
        }
        Ok(())
    }

    /// Lower bound on the optimal makespan:
    /// `max(total_work / m, max_i p_i)`.
    pub fn lower_bound(&self) -> f64 {
        let total: f64 = self.jobs.iter().sum();
        let longest = self.jobs.iter().cloned().fold(0.0, f64::max);
        (total / self.machines as f64).max(longest)
    }
}

/// A schedule: machine index per job, plus the derived loads and makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `assignment[i]` = machine of job `i`.
    pub assignment: Vec<usize>,
    /// Per-machine total load.
    pub loads: Vec<f64>,
    pub makespan: f64,
}

impl Schedule {
    /// Build from an assignment, computing loads and makespan.
    pub fn from_assignment(inst: &SchedInstance, assignment: Vec<usize>) -> Self {
        let mut loads = vec![0.0; inst.machines];
        for (i, &m) in assignment.iter().enumerate() {
            loads[m] += inst.jobs[i];
        }
        let makespan = loads.iter().cloned().fold(0.0, f64::max);
        Schedule {
            assignment,
            loads,
            makespan,
        }
    }

    /// Check consistency against an instance (job count, machine indices,
    /// loads that match the assignment).
    pub fn check(&self, inst: &SchedInstance, tol: f64) -> Option<String> {
        if self.assignment.len() != inst.num_jobs() {
            return Some(format!(
                "assignment covers {} jobs, instance has {}",
                self.assignment.len(),
                inst.num_jobs()
            ));
        }
        if let Some(&m) = self.assignment.iter().find(|&&m| m >= inst.machines) {
            return Some(format!("machine index {m} out of range"));
        }
        let recomputed = Schedule::from_assignment(inst, self.assignment.clone());
        if (recomputed.makespan - self.makespan).abs() > tol {
            return Some(format!(
                "makespan {} does not match assignment (recomputed {})",
                self.makespan, recomputed.makespan
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_family_shape() {
        for m in 2..=5 {
            let inst = SchedInstance::lpt_tight(m);
            inst.validate().unwrap();
            assert_eq!(inst.num_jobs(), 2 * m + 1);
            let total: f64 = inst.jobs.iter().sum();
            // Total work is 3m per machine.
            assert!((total - (3 * m * m) as f64).abs() < 1e-9, "m = {m}");
            assert!((inst.lower_bound() - (3 * m) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn two_machine_example_is_the_docs_instance() {
        let inst = SchedInstance::two_machine_example();
        assert_eq!(inst.machines, 2);
        assert_eq!(inst.jobs, vec![3.0, 3.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn validate_rejects_bad_instances() {
        assert!(SchedInstance::new(0, vec![1.0]).validate().is_err());
        assert!(SchedInstance::new(2, vec![-1.0]).validate().is_err());
        assert!(SchedInstance::new(2, vec![f64::NAN]).validate().is_err());
        assert!(SchedInstance::new(2, vec![]).validate().is_ok());
    }

    #[test]
    fn lower_bound_takes_longest_job() {
        // One huge job dominates the volume bound.
        let inst = SchedInstance::new(3, vec![10.0, 1.0, 1.0]);
        assert!((inst.lower_bound() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_check_catches_mismatches() {
        let inst = SchedInstance::two_machine_example();
        let ok = Schedule::from_assignment(&inst, vec![0, 0, 1, 1, 1]);
        assert!(ok.check(&inst, 1e-9).is_none());
        assert!((ok.makespan - 6.0).abs() < 1e-9);

        let short = Schedule::from_assignment(&inst, vec![0, 0, 1, 1, 1]);
        let mut bad = short.clone();
        bad.assignment = vec![0, 0];
        assert!(bad.check(&inst, 1e-9).is_some());
        let mut oob = short;
        oob.assignment[0] = 7;
        assert!(oob.check(&inst, 1e-9).is_some());
    }
}
