//! # xplain-domains
//!
//! The two problem domains the XPlain paper evaluates on:
//!
//! * [`te`] — wide-area traffic engineering with the **Demand Pinning**
//!   heuristic against the optimal multi-commodity max-flow (Fig. 1a/1b);
//! * [`vbp`] — **vector bin packing** with first-fit (plus best-fit and
//!   first-fit-decreasing) against an exact branch-and-bound optimum
//!   (Fig. 1c, Fig. 2).
//!
//! Each domain also ships its Fig. 4 DSL encoding ([`te::TeDsl`],
//! [`vbp::VbpDsl`]) so the explainer can diff heuristic and benchmark
//! decisions edge by edge.

pub mod te;
pub mod vbp;
