//! # xplain-domains
//!
//! The problem domains XPlain is evaluated on — the paper's two running
//! examples plus a third registered through the runtime to prove the
//! `Domain` interface is open:
//!
//! * [`te`] — wide-area traffic engineering with the **Demand Pinning**
//!   heuristic against the optimal multi-commodity max-flow (Fig. 1a/1b);
//! * [`vbp`] — **vector bin packing** with first-fit (plus best-fit and
//!   first-fit-decreasing) against an exact branch-and-bound optimum
//!   (Fig. 1c, Fig. 2);
//! * [`sched`] — **makespan scheduling** with LPT against an exact
//!   optimum (branch and bound, cross-checked by a MILP).
//!
//! Each domain also ships its DSL encoding ([`te::TeDsl`],
//! [`vbp::VbpDsl`], [`sched::SchedDsl`]) so the explainer can diff
//! heuristic and benchmark decisions edge by edge.

pub mod sched;
pub mod te;
pub mod vbp;
