//! Log-bucketed latency histograms.
//!
//! The serving layer (`xplain-serve`) tracks per-route request latency;
//! storing every sample would grow without bound on a long-lived server,
//! so observations land in logarithmically spaced buckets instead —
//! constant memory, and quantile estimates whose relative error is
//! bounded by the bucket growth factor. The same structure backs the
//! load generator's offline reports, where exact percentiles over the
//! raw samples remain preferable; [`percentile_exact`] covers that case.
//!
//! Everything here is deterministic and single-threaded; concurrent
//! recorders wrap a [`Histogram`] in a mutex (one `record` is a handful
//! of comparisons, so contention is negligible next to I/O).

/// A fixed-bucket histogram over positive values.
///
/// Buckets are defined by their inclusive upper bounds; a final implicit
/// overflow bucket catches everything beyond the last bound. Quantiles
/// interpolate linearly inside the containing bucket, which keeps the
/// relative error below the bucket growth factor (default ~33%, i.e.
/// the p99 of a 10ms route reads as 10ms-ish, never as 100ms).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds, one per bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counters (the last is the overflow bucket).
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Build from explicit bucket upper bounds (must be finite, positive,
    /// and strictly increasing).
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing — histogram shape
    /// is a programmer decision, not runtime data.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(
                w[0] < w[1],
                "histogram bounds must be strictly increasing ({} !< {})",
                w[0],
                w[1]
            );
        }
        assert!(
            bounds[0] > 0.0 && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and positive"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The serving default: latency in **milliseconds** from 1µs to 60s,
    /// log-spaced at 8 buckets per decade (growth factor ≈ 1.33, so
    /// interpolated quantiles carry at most ~33% relative error).
    pub fn latency_ms() -> Self {
        let mut bounds = Vec::new();
        let per_decade = 8;
        // 10^-3 ms (1µs) .. 10^4.625 ms (~42s), then a 60s cap bucket.
        for step in 0..=((3 + 4) * per_decade + per_decade / 2) {
            let exp = -3.0 + step as f64 / per_decade as f64;
            bounds.push(10f64.powf(exp));
        }
        bounds.push(60_000.0);
        Histogram::with_bounds(bounds)
    }

    /// Record one observation. Non-finite or negative values are clamped
    /// into the first bucket (a latency can't be negative; a NaN from a
    /// broken clock shouldn't poison the whole histogram).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the recorded values (exact — tracked outside the buckets).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the containing bucket, clamped to the observed min/max so
    /// sparse histograms never report values outside the data range.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let hi = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    // Overflow bucket: the max observation bounds it.
                    self.max
                };
                let within = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * within;
                return Some(est.clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Fold another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// If the bucket layouts differ — merging incompatible histograms is
    /// a programmer error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile over raw samples (nearest-rank with linear
/// interpolation, the "type 7" estimator spreadsheets use). For offline
/// reports where the full sample set is at hand — the load generator's
/// p50/p99 come from here, not from bucket interpolation. `None` when
/// empty.
pub fn percentile_exact(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_log_buckets_with_bounded_error() {
        let mut h = Histogram::latency_ms();
        for v in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(256.0));
        // The median of the 10 samples is between 8 and 16; the bucketed
        // estimate must land within the growth-factor tolerance.
        let p50 = h.quantile(0.5).unwrap();
        assert!((4.0..=16.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((128.0..=256.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_tracks_uniform_data_closely() {
        let mut h = Histogram::latency_ms();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0 ms
        }
        // Log buckets at 8/decade: relative error below ~33%.
        for (q, expect) in [(0.5, 5.0), (0.9, 9.0), (0.99, 9.9)] {
            let got = h.quantile(q).unwrap();
            assert!(
                (got / expect - 1.0).abs() < 0.34,
                "q{q}: got {got}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let mut h = Histogram::latency_ms();
        h.record(3.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert_eq!(v, 3.0, "q{q} of a single sample must be the sample");
        }
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn overflow_and_degenerate_values_are_absorbed() {
        let mut h = Histogram::latency_ms();
        h.record(1e9); // beyond the last bound → overflow bucket
        h.record(-5.0); // clamped to 0
        h.record(f64::NAN); // clamped to 0
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(1e9));
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(1e9));
    }

    #[test]
    fn merge_sums_counts_and_extremes() {
        let mut a = Histogram::latency_ms();
        let mut b = Histogram::latency_ms();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_panic() {
        Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    fn percentile_exact_matches_hand_values() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_exact(&data, 0.5), Some(3.0));
        assert_eq!(percentile_exact(&data, 0.0), Some(1.0));
        assert_eq!(percentile_exact(&data, 1.0), Some(5.0));
        // Interpolated: p25 of 1..5 sits at rank 2.
        assert_eq!(percentile_exact(&data, 0.25), Some(2.0));
        assert_eq!(percentile_exact(&[], 0.5), None);
        // Unsorted input is handled.
        assert_eq!(percentile_exact(&[5.0, 1.0, 3.0], 0.5), Some(3.0));
    }
}
