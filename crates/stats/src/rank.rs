//! Rank correlation for the generalizer.
//!
//! The generalizer (§5.4) checks grammar predicates such as
//! `increasing(P)` — "the gap is larger when the shortest path of the
//! pinnable demands is longer" — for statistical significance across
//! generated instances. A monotone-association test is exactly Kendall's
//! τ-b (tie-adjusted) with a normal approximation; we also provide
//! Spearman's ρ with a permutation test for small samples.

use crate::descriptive::average_ranks;
use crate::error::StatsError;
use crate::normal::normal_sf;
use crate::wilcoxon::Alternative;
use serde::{Deserialize, Serialize};

/// Result of a rank-correlation test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationResult {
    /// The correlation statistic (τ-b or ρ).
    pub statistic: f64,
    pub p_value: f64,
    pub n: usize,
}

/// Kendall's τ-b with tie adjustment and normal-approximation p-value.
pub fn kendall_tau(
    x: &[f64],
    y: &[f64],
    alt: Alternative,
) -> Result<CorrelationResult, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let n = x.len();
    if n < 2 {
        return Err(StatsError::NoData);
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidInput("non-finite values".into()));
    }

    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let s = dx * dy;
            if dx.abs() < 1e-12 || dy.abs() < 1e-12 {
                continue; // tie in x or y
            } else if s > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let s = (concordant - discordant) as f64;

    let tie_counts = |v: &[f64]| -> Vec<f64> {
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut groups = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && (sorted[j + 1] - sorted[i]).abs() < 1e-12 {
                j += 1;
            }
            if j > i {
                groups.push((j - i + 1) as f64);
            }
            i = j + 1;
        }
        groups
    };

    let nf = n as f64;
    let n0 = nf * (nf - 1.0) / 2.0;
    let tx = tie_counts(x);
    let ty = tie_counts(y);
    let n1: f64 = tx.iter().map(|t| t * (t - 1.0) / 2.0).sum();
    let n2: f64 = ty.iter().map(|t| t * (t - 1.0) / 2.0).sum();
    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    let tau = if denom > 0.0 { s / denom } else { 0.0 };

    // Tie-adjusted variance of S (Kendall 1970).
    let v0 = nf * (nf - 1.0) * (2.0 * nf + 5.0);
    let vt: f64 = tx.iter().map(|t| t * (t - 1.0) * (2.0 * t + 5.0)).sum();
    let vu: f64 = ty.iter().map(|t| t * (t - 1.0) * (2.0 * t + 5.0)).sum();
    let sum_t2: f64 = tx.iter().map(|t| t * (t - 1.0)).sum();
    let sum_u2: f64 = ty.iter().map(|t| t * (t - 1.0)).sum();
    let sum_t3: f64 = tx.iter().map(|t| t * (t - 1.0) * (t - 2.0)).sum();
    let sum_u3: f64 = ty.iter().map(|t| t * (t - 1.0) * (t - 2.0)).sum();
    let mut var = (v0 - vt - vu) / 18.0;
    if n > 2 {
        var += sum_t3 * sum_u3 / (9.0 * nf * (nf - 1.0) * (nf - 2.0));
    }
    var += sum_t2 * sum_u2 / (2.0 * nf * (nf - 1.0));

    let p_value = if var <= 0.0 {
        1.0
    } else {
        // Continuity correction of 1 on S.
        let z = |shift: f64| (s + shift) / var.sqrt();
        match alt {
            Alternative::Greater => normal_sf(z(-1.0)),
            Alternative::Less => 1.0 - normal_sf(z(1.0)),
            Alternative::TwoSided => {
                (2.0 * normal_sf((s.abs() - 1.0).max(0.0) / var.sqrt())).min(1.0)
            }
        }
    };

    Ok(CorrelationResult {
        statistic: tau,
        p_value,
        n,
    })
}

/// Spearman's ρ (rank Pearson correlation). Returns just the statistic.
pub fn spearman_rho(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::NoData);
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    let mx = rx.iter().sum::<f64>() / rx.len() as f64;
    let my = ry.iter().sum::<f64>() / ry.len() as f64;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..rx.len() {
        let a = rx[i] - mx;
        let b = ry[i] - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx <= 0.0 || dy <= 0.0 {
        return Ok(0.0);
    }
    Ok(num / (dx * dy).sqrt())
}

/// Permutation test for Spearman's ρ (one-sided `Greater`, i.e. positive
/// association). Deterministic given the caller's RNG; suitable for the
/// small instance counts the generalizer works with.
pub fn spearman_permutation_test(
    x: &[f64],
    y: &[f64],
    permutations: usize,
    rng: &mut impl rand::Rng,
) -> Result<CorrelationResult, StatsError> {
    use rand::seq::SliceRandom;
    let observed = spearman_rho(x, y)?;
    let mut shuffled = y.to_vec();
    let mut at_least = 1usize; // include the observed permutation
    for _ in 0..permutations {
        shuffled.shuffle(rng);
        let r = spearman_rho(x, &shuffled)?;
        if r >= observed - 1e-12 {
            at_least += 1;
        }
    }
    Ok(CorrelationResult {
        statistic: observed,
        p_value: at_least as f64 / (permutations + 1) as f64,
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_monotone_tau_is_one() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let r = kendall_tau(&x, &y, Alternative::Greater).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6, "{}", r.p_value);
    }

    #[test]
    fn perfect_antitone_tau_is_minus_one() {
        let x: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        let r = kendall_tau(&x, &y, Alternative::Less).unwrap();
        assert!((r.statistic + 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-4);
    }

    #[test]
    fn independent_data_not_significant() {
        // Alternating pattern: no monotone trend.
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let r = kendall_tau(&x, &y, Alternative::Greater).unwrap();
        assert!(r.p_value > 0.05, "{}", r.p_value);
    }

    #[test]
    fn ties_shrink_tau_but_keep_sign() {
        let x = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0, 3.0, 4.0];
        let r = kendall_tau(&x, &y, Alternative::Greater).unwrap();
        assert!(r.statistic > 0.5 && r.statistic <= 1.0, "{}", r.statistic);
    }

    #[test]
    fn spearman_matches_pearson_on_ranks() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Hand-computed: ranks identical to values; rho = 1 - 6*Σd²/(n(n²-1))
        // d = [1,-1,1,-1,0] -> Σd² = 4 -> rho = 1 - 24/120 = 0.8
        let rho = spearman_rho(&x, &y).unwrap();
        assert!((rho - 0.8).abs() < 1e-12, "{rho}");
    }

    #[test]
    fn spearman_permutation_detects_trend() {
        let x: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v + (v * 7.0).sin()).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let r = spearman_permutation_test(&x, &y, 500, &mut rng).unwrap();
        assert!(r.p_value < 0.05, "{}", r.p_value);
        assert!(r.statistic > 0.8);
    }

    #[test]
    fn spearman_permutation_null_is_uniform_ish() {
        // Alternating high/low values: clearly no positive trend.
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let y = [10.0, 0.0, 9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0, 5.5];
        let mut rng = StdRng::seed_from_u64(11);
        let r = spearman_permutation_test(&x, &y, 500, &mut rng).unwrap();
        assert!(r.p_value > 0.2, "{}", r.p_value);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(kendall_tau(&[1.0], &[1.0, 2.0], Alternative::Greater).is_err());
        assert!(kendall_tau(&[1.0], &[1.0], Alternative::Greater).is_err());
        assert!(kendall_tau(&[f64::NAN, 1.0], &[1.0, 2.0], Alternative::Greater).is_err());
        assert!(spearman_rho(&[1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn constant_series_rho_zero() {
        let x = [1.0, 1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(spearman_rho(&x, &y).unwrap(), 0.0);
    }
}
