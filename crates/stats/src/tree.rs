//! CART regression trees.
//!
//! The subspace generator refines its rough cubes with "an idea from prior
//! work in diagnosis" (§5.2, citing Chen et al. 2004): train a regression
//! tree that predicts the performance gap on samples inside the rough
//! subspace, then keep the predicates along the path from the root to the
//! leaf containing the initial adversarial sample (Fig. 5b). Those
//! predicates — `feature <= threshold` / `feature > threshold` — become the
//! `T_i x <= V_i` half-spaces of the published subspace form (Fig. 5c).

use crate::error::StatsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One half-space predicate on a feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Feature (column) index.
    pub feature: usize,
    pub threshold: f64,
    /// `true` for `feature <= threshold`, `false` for `feature > threshold`.
    pub leq: bool,
}

impl Predicate {
    /// Does `x` satisfy this predicate?
    pub fn matches(&self, x: &[f64]) -> bool {
        let v = x.get(self.feature).copied().unwrap_or(0.0);
        if self.leq {
            v <= self.threshold
        } else {
            v > self.threshold
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f{} {} {:.6}",
            self.feature,
            if self.leq { "<=" } else { ">" },
            self.threshold
        )
    }
}

/// Tuning knobs for tree fitting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: usize,
    /// Minimum samples in each child of a split.
    pub min_leaf: usize,
    /// Minimum SSE reduction (absolute) required to accept a split.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_leaf: 8,
            min_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
        n: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Child index for `feature <= threshold`.
        left: usize,
        /// Child index for `feature > threshold`.
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit a tree on `xs` (rows of equal length) against targets `ys`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &TreeParams) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NoData);
        }
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        let n_features = xs[0].len();
        if xs.iter().any(|r| r.len() != n_features) {
            return Err(StatsError::InvalidInput("ragged feature rows".into()));
        }
        if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidInput("non-finite values".into()));
        }

        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features,
        };
        let indices: Vec<usize> = (0..xs.len()).collect();
        tree.grow(xs, ys, indices, 0, params);
        Ok(tree)
    }

    /// Recursively grow; returns the index of the created node.
    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let n = idx.len();
        let mean: f64 = idx.iter().map(|&i| ys[i]).sum::<f64>() / n as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean, n });
            nodes.len() - 1
        };

        if depth >= params.max_depth || n < 2 * params.min_leaf {
            return make_leaf(&mut self.nodes);
        }

        let Some((feature, threshold, gain)) = best_split(xs, ys, &idx, params.min_leaf) else {
            return make_leaf(&mut self.nodes);
        };
        if gain < params.min_gain {
            return make_leaf(&mut self.nodes);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);

        // Reserve our slot before recursing so parents precede children.
        self.nodes.push(Node::Leaf { value: mean, n });
        let me = self.nodes.len() - 1;
        let left = self.grow(xs, ys, left_idx, depth + 1, params);
        let right = self.grow(xs, ys, right_idx, depth + 1, params);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predicted value for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0.0);
                    cur = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Root-to-leaf predicates for the leaf containing `x` (Fig. 5b/5c).
    pub fn path_for(&self, x: &[f64]) -> Vec<Predicate> {
        let mut cur = 0usize;
        let mut path = Vec::new();
        loop {
            match &self.nodes[cur] {
                Node::Leaf { .. } => return path,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0.0);
                    let leq = v <= *threshold;
                    path.push(Predicate {
                        feature: *feature,
                        threshold: *threshold,
                        leq,
                    });
                    cur = if leq { *left } else { *right };
                }
            }
        }
    }

    /// Mean value and sample count of the leaf containing `x`.
    pub fn leaf_stats(&self, x: &[f64]) -> (f64, usize) {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value, n } => return (*value, *n),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0.0);
                    cur = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Render the tree in the style of Fig. 5b, using `names[f]` for
    /// feature `f` (falling back to `f<index>`).
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        self.render_node(0, 0, names, &mut out);
        out
    }

    fn render_node(&self, node: usize, indent: usize, names: &[String], out: &mut String) {
        let pad = "  ".repeat(indent);
        match &self.nodes[node] {
            Node::Leaf { value, n } => {
                out.push_str(&format!("{pad}leaf: gap = {value:.4} (n = {n})\n"));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let fname = names
                    .get(*feature)
                    .cloned()
                    .unwrap_or_else(|| format!("f{feature}"));
                out.push_str(&format!("{pad}{fname} <= {threshold:.4}?\n"));
                self.render_node(*left, indent + 1, names, out);
                out.push_str(&format!("{pad}else ({fname} > {threshold:.4}):\n"));
                self.render_node(*right, indent + 1, names, out);
            }
        }
    }
}

/// Best (feature, threshold, SSE-gain) over all features, or `None` when no
/// split separates at least `min_leaf` samples on each side.
fn best_split(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n = idx.len();
    let n_features = xs[idx[0]].len();
    let total_sum: f64 = idx.iter().map(|&i| ys[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| ys[i] * ys[i]).sum();
    let total_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64)> = None;
    let mut order: Vec<usize> = idx.to_vec();

    for f in 0..n_features {
        order.sort_by(|&a, &b| {
            xs[a][f]
                .partial_cmp(&xs[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for k in 0..n - 1 {
            let i = order[k];
            left_sum += ys[i];
            left_sq += ys[i] * ys[i];
            let nl = k + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let xv = xs[order[k]][f];
            let xnext = xs[order[k + 1]][f];
            if xnext - xv < 1e-12 {
                continue; // can't split between equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse_l = left_sq - left_sum * left_sum / nl as f64;
            let sse_r = right_sq - right_sum * right_sum / nr as f64;
            let gain = total_sse - sse_l - sse_r;
            let threshold = 0.5 * (xv + xnext);
            let better = match best {
                None => true,
                Some((_, _, g)) => gain > g + 1e-12,
            };
            if better {
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 when x0 > 0.5 && x1 <= 0.3, else 0 — a crisp box.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let a = i as f64 / (n - 1) as f64;
                let b = j as f64 / (n - 1) as f64;
                xs.push(vec![a, b]);
                ys.push(if a > 0.5 && b <= 0.3 { 10.0 } else { 0.0 });
            }
        }
        (xs, ys)
    }

    #[test]
    fn recovers_axis_aligned_box() {
        let (xs, ys) = grid_2d(21);
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default()).unwrap();
        // A point deep in the box predicts ~10; outside predicts ~0.
        assert!(tree.predict(&[0.9, 0.1]) > 8.0);
        assert!(tree.predict(&[0.1, 0.9]) < 2.0);
    }

    #[test]
    fn path_describes_the_box() {
        let (xs, ys) = grid_2d(21);
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default()).unwrap();
        let path = tree.path_for(&[0.9, 0.1]);
        assert!(!path.is_empty());
        // Every predicate on the path must hold for the query point.
        for p in &path {
            assert!(p.matches(&[0.9, 0.1]), "{p}");
        }
        // The path must constrain both features to carve out the corner box.
        let feats: std::collections::BTreeSet<usize> = path.iter().map(|p| p.feature).collect();
        assert!(feats.contains(&0) && feats.contains(&1), "{path:?}");
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.5; 50];
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default()).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict(&[17.0]) - 3.5).abs() < 1e-12);
        assert!(tree.path_for(&[17.0]).is_empty());
    }

    #[test]
    fn min_leaf_respected() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i == 9 { 100.0 } else { 0.0 }).collect();
        let params = TreeParams {
            min_leaf: 3,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&xs, &ys, &params).unwrap();
        // The lone outlier cannot be isolated with min_leaf = 3: the split
        // at 8.5 is forbidden, but a split at 6.5 (7 vs 3) is allowed.
        let (_, n) = tree.leaf_stats(&[9.0]);
        assert!(n >= 3, "leaf has {n} samples");
    }

    #[test]
    fn depth_limit_respected() {
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| (i % 16) as f64).collect();
        let params = TreeParams {
            max_depth: 2,
            min_leaf: 1,
            min_gain: 0.0,
        };
        let tree = RegressionTree::fit(&xs, &ys, &params).unwrap();
        assert!(tree.leaf_count() <= 4);
        assert!(tree.path_for(&[7.0]).len() <= 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            RegressionTree::fit(&[], &[], &TreeParams::default()),
            Err(StatsError::NoData)
        ));
        assert!(matches!(
            RegressionTree::fit(&[vec![1.0]], &[1.0, 2.0], &TreeParams::default()),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            RegressionTree::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[1.0, 2.0],
                &TreeParams::default()
            ),
            Err(StatsError::InvalidInput(_))
        ));
        assert!(matches!(
            RegressionTree::fit(&[vec![f64::NAN]], &[1.0], &TreeParams::default()),
            Err(StatsError::InvalidInput(_))
        ));
    }

    #[test]
    fn predictions_reduce_sse_vs_mean() {
        let (xs, ys) = grid_2d(15);
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default()).unwrap();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let sse_mean: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        let sse_tree: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let p = tree.predict(x);
                (y - p) * (y - p)
            })
            .sum();
        assert!(sse_tree < sse_mean * 0.2, "{sse_tree} vs {sse_mean}");
    }

    #[test]
    fn render_mentions_feature_names() {
        let (xs, ys) = grid_2d(15);
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default()).unwrap();
        let s = tree.render(&["d_12".to_string(), "d_13".to_string()]);
        assert!(s.contains("d_12") || s.contains("d_13"), "{s}");
        assert!(s.contains("leaf"), "{s}");
    }
}
