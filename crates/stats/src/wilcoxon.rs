//! Wilcoxon signed-rank test for paired (dependent) samples.
//!
//! XPlain's significance checker uses this test because the two sample
//! pools are dependent: "the subspace fully describes what points are inside
//! and what points are not" (§5.2). We implement:
//!
//! * an **exact** null distribution for `n <= 25` pairs via dynamic
//!   programming over doubled ranks (doubling makes tie-averaged ranks
//!   integral, so the enumeration stays exact even with ties), and
//! * the **normal approximation** with tie correction and continuity
//!   correction for larger `n` — accurate far into the tail thanks to the
//!   asymptotic `erfc` in [`crate::normal`], which is what lets us report
//!   p-values at the paper's 10⁻⁶⁰ scale.

use crate::descriptive::average_ranks;
use crate::error::StatsError;
use crate::normal::{normal_cdf, normal_sf};
use serde::{Deserialize, Serialize};

/// Alternative hypothesis for the test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alternative {
    /// `x != y`
    TwoSided,
    /// `x > y` (the first pool stochastically dominates)
    Greater,
    /// `x < y`
    Less,
}

/// How the p-value was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    Exact,
    NormalApprox,
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// Pairs remaining after zero differences are dropped.
    pub n_used: usize,
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Normal-approximation z-score (also reported for exact results, as a
    /// convenient effect-size proxy).
    pub z: f64,
    pub p_value: f64,
    pub method: Method,
}

/// Largest `n` for which the exact distribution is enumerated.
pub const EXACT_LIMIT: usize = 25;

/// Paired test on two equal-length samples.
pub fn wilcoxon_signed_rank(
    x: &[f64],
    y: &[f64],
    alt: Alternative,
) -> Result<WilcoxonResult, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let diffs: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).collect();
    wilcoxon_signed_rank_diffs(&diffs, alt)
}

/// Test on a slice of paired differences directly.
pub fn wilcoxon_signed_rank_diffs(
    diffs: &[f64],
    alt: Alternative,
) -> Result<WilcoxonResult, StatsError> {
    if diffs.iter().any(|d| !d.is_finite()) {
        return Err(StatsError::InvalidInput("non-finite difference".into()));
    }
    let d: Vec<f64> = diffs.iter().copied().filter(|v| v.abs() > 1e-12).collect();
    let n = d.len();
    if n == 0 {
        return Err(StatsError::NoData);
    }

    let abs: Vec<f64> = d.iter().map(|v| v.abs()).collect();
    let ranks = average_ranks(&abs);
    let w_plus: f64 = ranks
        .iter()
        .zip(&d)
        .filter(|(_, &di)| di > 0.0)
        .map(|(r, _)| *r)
        .sum();
    let total: f64 = ranks.iter().sum(); // = n(n+1)/2
    let w_minus = total - w_plus;

    // Tie groups for the variance correction.
    let mut sorted = abs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (sorted[j + 1] - sorted[i]).abs() < 1e-12 {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let sd = var.max(1e-300).sqrt();
    let z = (w_plus - mean) / sd;

    let (p_value, method) = if n <= EXACT_LIMIT {
        (exact_p(&ranks, w_plus, alt), Method::Exact)
    } else {
        let p = match alt {
            Alternative::Greater => normal_sf((w_plus - 0.5 - mean) / sd),
            Alternative::Less => normal_cdf((w_plus + 0.5 - mean) / sd),
            Alternative::TwoSided => {
                let zz = ((w_plus - mean).abs() - 0.5).max(0.0) / sd;
                (2.0 * normal_sf(zz)).min(1.0)
            }
        };
        (p, Method::NormalApprox)
    };

    Ok(WilcoxonResult {
        n_used: n,
        w_plus,
        w_minus,
        z,
        p_value,
        method,
    })
}

/// Exact tail probability via subset-sum DP over doubled ranks.
///
/// Under H0 each difference is independently positive with probability 1/2,
/// so `W+` is the sum of a uniformly random subset of the ranks. Doubling
/// turns tie-averaged ranks (multiples of 0.5) into integers.
fn exact_p(ranks: &[f64], w_plus: f64, alt: Alternative) -> f64 {
    let doubled: Vec<usize> = ranks.iter().map(|r| (r * 2.0).round() as usize).collect();
    let total: usize = doubled.iter().sum();
    // counts[s] = number of subsets with doubled-sum s.
    let mut counts = vec![0.0f64; total + 1];
    counts[0] = 1.0;
    let mut reach = 0usize;
    for &r in &doubled {
        reach += r;
        for s in (r..=reach).rev() {
            counts[s] += counts[s - r];
        }
    }
    let denom = 2f64.powi(ranks.len() as i32);
    let w2 = (w_plus * 2.0).round() as i64;

    let tail_ge = |w: i64| -> f64 {
        let start = w.max(0) as usize;
        if start > total {
            return 0.0;
        }
        counts[start..].iter().sum::<f64>() / denom
    };
    let tail_le = |w: i64| -> f64 {
        if w < 0 {
            return 0.0;
        }
        let end = (w as usize).min(total);
        counts[..=end].iter().sum::<f64>() / denom
    };

    match alt {
        Alternative::Greater => tail_ge(w2),
        Alternative::Less => tail_le(w2),
        Alternative::TwoSided => (2.0 * tail_ge(w2).min(tail_le(w2))).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_positive_n5_exact() {
        // All five differences positive: one-sided p = 1/32.
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(r.method, Method::Exact);
        assert!((r.p_value - 1.0 / 32.0).abs() < 1e-12, "{}", r.p_value);
        assert_eq!(r.w_plus, 15.0);
        assert_eq!(r.w_minus, 0.0);
    }

    #[test]
    fn all_positive_n5_two_sided() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::TwoSided).unwrap();
        assert!((r.p_value - 2.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_signs_exact_enumeration() {
        // d = [1, -2, 3, -4, 5]: W+ = 1 + 3 + 5 = 9; P(W+ >= 9) = 13/32.
        let d = [1.0, -2.0, 3.0, -4.0, 5.0];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(r.w_plus, 9.0);
        assert!((r.p_value - 13.0 / 32.0).abs() < 1e-12, "{}", r.p_value);
    }

    #[test]
    fn ties_handled_exactly() {
        // d = [1, 1, 2, -2]: doubled ranks {3,3,7,7}, W+ = 6.5,
        // P(W+ >= 6.5) = 6/16.
        let d = [1.0, 1.0, 2.0, -2.0];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert!((r.w_plus - 6.5).abs() < 1e-12);
        assert!((r.p_value - 6.0 / 16.0).abs() < 1e-12, "{}", r.p_value);
    }

    #[test]
    fn zeros_are_dropped() {
        let d = [0.0, 0.0, 1.0, 2.0, 3.0];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(r.n_used, 3);
        assert!((r.p_value - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_is_no_data() {
        assert!(matches!(
            wilcoxon_signed_rank_diffs(&[0.0, 0.0], Alternative::Greater),
            Err(StatsError::NoData)
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            wilcoxon_signed_rank(&[1.0], &[1.0, 2.0], Alternative::Greater),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        assert!(matches!(
            wilcoxon_signed_rank_diffs(&[f64::NAN, 1.0], Alternative::Greater),
            Err(StatsError::InvalidInput(_))
        ));
    }

    #[test]
    fn symmetric_data_not_significant() {
        let d = [1.0, -1.5, 2.0, -2.5, 3.0, -3.5, 0.5, -0.25];
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::TwoSided).unwrap();
        assert!(r.p_value > 0.3, "{}", r.p_value);
    }

    #[test]
    fn approx_kicks_in_above_limit() {
        let d: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(r.method, Method::NormalApprox);
        assert!(r.p_value < 1e-6, "{}", r.p_value);
    }

    #[test]
    fn exact_and_approx_agree_near_boundary() {
        // n = 25 (exact) vs the normal approximation on the same data:
        // order-of-magnitude agreement for a moderately significant input.
        let d: Vec<f64> = (1..=25)
            .map(|i| if i % 4 == 0 { -(i as f64) } else { i as f64 })
            .collect();
        let exact = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(exact.method, Method::Exact);

        // Recompute with the approximation path by padding to n = 26 with a
        // negligible extra pair, then compare magnitudes.
        let mut d2 = d.clone();
        d2.push(1e-6);
        let approx = wilcoxon_signed_rank_diffs(&d2, Alternative::Greater).unwrap();
        assert_eq!(approx.method, Method::NormalApprox);
        let ratio = exact.p_value / approx.p_value;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "exact {} approx {}",
            exact.p_value,
            approx.p_value
        );
    }

    #[test]
    fn paper_scale_p_values_representable() {
        // ~500 strongly one-sided pairs: p should be far below 1e-40 but
        // still a positive, finite double (the paper reports 2e-60).
        let d: Vec<f64> = (1..=500).map(|i| 1.0 + (i % 7) as f64).collect();
        let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert!(r.p_value > 0.0);
        assert!(r.p_value < 1e-40, "{}", r.p_value);
    }

    #[test]
    fn greater_and_less_are_complementary_ish() {
        let d = [5.0, 4.0, -1.0, 3.0, 2.0, -0.5, 6.0];
        let g = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        let l = wilcoxon_signed_rank_diffs(&d, Alternative::Less).unwrap();
        // Exact discrete distributions overlap at the observed statistic, so
        // the sum slightly exceeds 1.
        assert!(g.p_value + l.p_value >= 1.0 - 1e-9);
        assert!(g.p_value < l.p_value);
    }

    #[test]
    fn paired_interface_matches_diff_interface() {
        let x = [3.0, 5.0, 1.0, 7.0];
        let y = [1.0, 4.0, 2.0, 3.0];
        let a = wilcoxon_signed_rank(&x, &y, Alternative::Greater).unwrap();
        let d: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
        let b = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
        assert_eq!(a.p_value, b.p_value);
        assert_eq!(a.w_plus, b.w_plus);
    }
}
