//! Standard normal distribution helpers.
//!
//! The significance checker needs tail probabilities far below anything a
//! table lookup provides (the paper reports p ≈ 2×10⁻⁶⁰ for Demand
//! Pinning's subspace), so the upper tail uses the asymptotic expansion of
//! `erfc`, which stays accurate to machine range in the far tail.

/// Complementary error function.
///
/// * `x <= 5`: the Numerical Recipes Chebyshev-fitted rational
///   approximation (relative error < 1.2e-7 for all `x >= 0`).
/// * `x > 5`: asymptotic expansion `exp(-x^2)/(x sqrt(pi)) * (1 - 1/(2x^2) + ...)`,
///   which keeps *relative* accuracy arbitrarily far into the tail (the
///   rational fit's `exp` argument loses precision there).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= 5.0 {
        // Numerical Recipes in C, 2nd ed., §6.2 (erfcc).
        let t = 1.0 / (1.0 + 0.5 * x);
        t * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp()
    } else {
        // Asymptotic series, truncated adaptively.
        let x2 = x * x;
        let mut term = 1.0;
        let mut sum = 1.0;
        // 1 - 1/(2x^2) + 3/(4x^4) - 15/(8x^6) + ...
        for k in 1..=8u32 {
            term *= -((2 * k - 1) as f64) / (2.0 * x2);
            let prev = sum;
            sum += term;
            if (sum - prev).abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        (-x2).exp() / (x * std::f64::consts::PI.sqrt()) * sum
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Upper-tail probability `P(Z >= z)` for a standard normal.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_center() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cdf_known_values() {
        // Classic table values.
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((normal_cdf(2.575829) - 0.995).abs() < 1e-4);
    }

    #[test]
    fn sf_symmetry() {
        // The rational erfc fit is accurate to ~1e-7, and 1 - cdf suffers
        // cancellation near 1, so compare at 1e-6.
        for z in [0.0, 0.5, 1.3, 2.9] {
            assert!((normal_sf(z) - (1.0 - normal_cdf(z))).abs() < 1e-6);
            assert!((normal_sf(-z) - normal_cdf(z)).abs() < 1e-6);
        }
    }

    #[test]
    fn far_tail_magnitudes() {
        // P(Z >= 10) ~ 7.62e-24; P(Z >= 16.5) ~ 1.6e-61 — the paper's DP
        // p-value (2e-60) corresponds to z ~ 16.3.
        let p10 = normal_sf(10.0);
        assert!(p10 > 1e-25 && p10 < 1e-22, "{p10}");
        let p16 = normal_sf(16.5);
        assert!(p16 > 1e-63 && p16 < 1e-59, "{p16}");
    }

    #[test]
    fn tail_monotone_and_positive() {
        let mut prev = 1.0;
        let mut z = 0.0;
        while z < 30.0 {
            let p = normal_sf(z);
            assert!(p > 0.0, "underflow at z={z}");
            assert!(p <= prev + 1e-18, "not monotone at z={z}");
            prev = p;
            z += 0.25;
        }
    }

    #[test]
    fn erfc_continuity_at_switch() {
        // The two branches must agree near x = 5.
        let a = erfc(4.999999);
        let b = erfc(5.000001);
        // The NR fit degrades to ~1e-5 relative accuracy this deep in the
        // tail; the asymptotic side is ~1e-8. Either is ample for p-values.
        assert!((a - b).abs() / a < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn erfc_reference_values() {
        // erfc(0.5) = 0.4795001222, erfc(1) = 0.1572992070, erfc(2) = 0.0046777350
        for (x, want) in [
            (0.5, 0.4795001222),
            (1.0, 0.1572992070),
            (2.0, 0.0046777350),
        ] {
            let got = erfc(x);
            assert!(
                (got - want).abs() / want < 1e-6,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }
}
