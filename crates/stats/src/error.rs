//! Error type for statistical routines.

use std::fmt;

/// Errors from statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// No usable observations (e.g. all paired differences were zero).
    NoData,
    /// Paired inputs with different lengths.
    LengthMismatch { left: usize, right: usize },
    /// NaN/infinite inputs or invalid parameters.
    InvalidInput(String),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NoData => write!(f, "no usable observations"),
            StatsError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "paired inputs have different lengths ({left} vs {right})"
                )
            }
            StatsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StatsError::LengthMismatch { left: 1, right: 2 }
            .to_string()
            .contains("1 vs 2"));
        assert!(StatsError::NoData.to_string().contains("no usable"));
    }
}
