//! Small descriptive-statistics helpers used across the pipeline.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (linear-interpolated); 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile with linear interpolation between order statistics.
/// `q` is clamped to `[0, 1]`. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Fraction of entries for which `pred` holds.
pub fn fraction_where<F: Fn(f64) -> bool>(xs: &[f64], pred: F) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

/// Average ranks (1-based) with ties sharing their mean rank — the ranking
/// used by Wilcoxon and rank-correlation statistics.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (xs[idx[j + 1]] - xs[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        // items i..=j tie; average of ranks (i+1)..=(j+1)
        let avg = (i + j + 2) as f64 / 2.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 2.0), 10.0); // clamped
    }

    #[test]
    fn ranks_without_ties() {
        let r = average_ranks(&[10.0, 30.0, 20.0]);
        assert_eq!(r, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn fraction_counts() {
        assert!((fraction_where(&[1.0, 2.0, 3.0, 4.0], |x| x > 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_where(&[], |_| true), 0.0);
    }
}
