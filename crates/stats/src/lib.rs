//! # xplain-stats
//!
//! Statistics substrate for the XPlain reproduction:
//!
//! * [`wilcoxon`] — the Wilcoxon signed-rank test (§5.2's significance
//!   checker), exact for small samples, tail-accurate normal approximation
//!   for large ones;
//! * [`dkw`] — Dvoretzky–Kiefer–Wolfowitz sample sizing used by the
//!   adversarial subspace generator;
//! * [`tree`] — CART regression trees used to refine rough subspaces into
//!   the predicate form of Fig. 5b/5c;
//! * [`rank`] — Kendall/Spearman rank correlation backing the generalizer's
//!   `increasing`/`decreasing` grammar predicates;
//! * [`histogram`] — log-bucketed latency histograms (the serving layer's
//!   per-route metrics) and exact percentiles for offline reports;
//! * [`normal`], [`descriptive`] — shared numeric helpers.
//!
//! Everything is deterministic and allocation-light; routines return typed
//! [`error::StatsError`]s instead of panicking on degenerate input.

pub mod descriptive;
pub mod dkw;
pub mod error;
pub mod histogram;
pub mod normal;
pub mod rank;
pub mod tree;
pub mod wilcoxon;

pub use error::StatsError;
pub use histogram::{percentile_exact, Histogram};
pub use rank::{kendall_tau, spearman_permutation_test, spearman_rho, CorrelationResult};
pub use tree::{Predicate, RegressionTree, TreeParams};
pub use wilcoxon::{wilcoxon_signed_rank, wilcoxon_signed_rank_diffs, Alternative, WilcoxonResult};
