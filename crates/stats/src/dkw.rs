//! Dvoretzky–Kiefer–Wolfowitz sample sizing.
//!
//! The adversarial subspace generator (§5.2) picks the number of samples per
//! slice "based on the DKW inequality": with `n` i.i.d. samples the
//! empirical CDF is within `eps` of the truth everywhere with probability at
//! least `1 - delta` when `n >= ln(2/delta) / (2 eps^2)` (the tight constant
//! from Massart 1990).

/// Smallest sample count guaranteeing `sup |F_n - F| <= eps` with
/// probability `>= 1 - delta`.
///
/// # Panics
/// Never panics; degenerate inputs are clamped (`eps`, `delta` forced into
/// `(0, 1)`).
pub fn dkw_samples(eps: f64, delta: f64) -> usize {
    let eps = eps.clamp(1e-6, 1.0 - 1e-9);
    let delta = delta.clamp(1e-12, 1.0 - 1e-9);
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// The deviation `eps` guaranteed (with confidence `1 - delta`) by `n`
/// samples — the inverse of [`dkw_samples`].
pub fn dkw_epsilon(n: usize, delta: f64) -> f64 {
    let delta = delta.clamp(1e-12, 1.0 - 1e-9);
    let n = n.max(1) as f64;
    ((2.0 / delta).ln() / (2.0 * n)).sqrt()
}

/// Two-sided confidence band `[F_n(x) - eps, F_n(x) + eps]` half-width for
/// an empirical proportion estimated from `n` samples at confidence
/// `1 - delta`. Identical to [`dkw_epsilon`]; named separately because the
/// subspace generator uses it on Bernoulli "bad sample" densities.
pub fn density_band(n: usize, delta: f64) -> f64 {
    dkw_epsilon(n, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_value() {
        // eps = 0.1, delta = 0.05 -> ln(40)/0.02 = 184.4... -> 185
        assert_eq!(dkw_samples(0.1, 0.05), 185);
    }

    #[test]
    fn inverse_relationship() {
        for &(eps, delta) in &[(0.05, 0.01), (0.1, 0.05), (0.2, 0.1)] {
            let n = dkw_samples(eps, delta);
            let back = dkw_epsilon(n, delta);
            assert!(back <= eps + 1e-9, "eps={eps} n={n} back={back}");
            // One fewer sample must not satisfy the bound.
            if n > 1 {
                assert!(dkw_epsilon(n - 1, delta) > eps);
            }
        }
    }

    #[test]
    fn more_confidence_needs_more_samples() {
        assert!(dkw_samples(0.1, 0.01) > dkw_samples(0.1, 0.1));
        assert!(dkw_samples(0.05, 0.05) > dkw_samples(0.1, 0.05));
    }

    #[test]
    fn degenerate_inputs_clamped() {
        // Must not panic or return nonsense.
        assert!(dkw_samples(0.0, 0.0) > 0);
        assert!(dkw_epsilon(0, 0.05) > 0.0);
    }
}
