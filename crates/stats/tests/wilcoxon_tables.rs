//! Wilcoxon signed-rank test against published critical-value tables.
//!
//! The exact-route probabilities here are the classical table entries
//! (e.g. Wilcoxon 1945; reproduced in most nonparametric statistics
//! texts): for distinct ranks 1..=n, the one-sided p-value of an observed
//! rank sum W is `#{subsets of {1..n} with sum in the tail} / 2^n`.

use xplain_stats::{wilcoxon_signed_rank, wilcoxon_signed_rank_diffs, Alternative, WilcoxonResult};

fn exact(r: &WilcoxonResult) {
    assert_eq!(
        r.method,
        xplain_stats::wilcoxon::Method::Exact,
        "expected exact enumeration for n = {}",
        r.n_used
    );
}

#[test]
fn n10_w8_matches_table() {
    // Table entry: n = 10, W = 8 -> one-sided p = 25/1024 = 0.0244140625
    // (the alpha = 0.025 one-sided critical value is W <= 8).
    // Positive differences carry ranks {1, 3, 4}: W+ = 8.
    let d = [1.0, -2.0, 3.0, 4.0, -5.0, -6.0, -7.0, -8.0, -9.0, -10.0];
    let r = wilcoxon_signed_rank_diffs(&d, Alternative::Less).unwrap();
    exact(&r);
    assert_eq!(r.n_used, 10);
    assert_eq!(r.w_plus, 8.0);
    assert_eq!(r.w_minus, 47.0);
    assert!((r.p_value - 25.0 / 1024.0).abs() < 1e-12, "{}", r.p_value);

    // Two-sided doubles the smaller tail: 50/1024 ~ 0.0488 (significant at
    // alpha = 0.05, the table's two-sided critical value W <= 8).
    let r2 = wilcoxon_signed_rank_diffs(&d, Alternative::TwoSided).unwrap();
    assert!((r2.p_value - 50.0 / 1024.0).abs() < 1e-12, "{}", r2.p_value);
}

#[test]
fn n7_w2_matches_table() {
    // Table entry: n = 7, W = 2 -> one-sided p = 3/128 = 0.0234375
    // (subsets of {1..7} with sum <= 2: {}, {1}, {2} -> 3).
    let d = [-1.0, 2.0, -3.0, -4.0, -5.0, -6.0, -7.0];
    let r = wilcoxon_signed_rank_diffs(&d, Alternative::Less).unwrap();
    exact(&r);
    assert_eq!(r.w_plus, 2.0);
    assert!((r.p_value - 3.0 / 128.0).abs() < 1e-12, "{}", r.p_value);
}

#[test]
fn n6_all_positive_one_sided() {
    // All six differences positive: W- = 0, one-sided p = 1/64 = 0.015625
    // (the n = 6 table's smallest attainable one-sided level).
    let d = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
    let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
    exact(&r);
    assert_eq!(r.w_plus, 21.0);
    assert_eq!(r.w_minus, 0.0);
    assert!((r.p_value - 1.0 / 64.0).abs() < 1e-12, "{}", r.p_value);
}

#[test]
fn paired_samples_route_matches_diff_route() {
    let x = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0];
    let y = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0];
    let a = wilcoxon_signed_rank(&x, &y, Alternative::TwoSided).unwrap();
    let d: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let b = wilcoxon_signed_rank_diffs(&d, Alternative::TwoSided).unwrap();
    assert_eq!(a.w_plus, b.w_plus);
    assert_eq!(a.p_value, b.p_value);
    // One pair is a zero difference and is dropped, per the standard
    // procedure.
    assert_eq!(a.n_used, 7);
}

#[test]
fn tied_magnitudes_use_average_ranks() {
    // d = [2, 2, 2, 2]: every |d| ties at rank 2.5; all positive, so the
    // one-sided p is the all-subset extreme 1/16 regardless of ties.
    let d = [2.0, 2.0, 2.0, 2.0];
    let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
    exact(&r);
    assert_eq!(r.w_plus, 10.0);
    assert!((r.p_value - 1.0 / 16.0).abs() < 1e-12, "{}", r.p_value);
}

#[test]
fn greater_and_less_are_mirror_images() {
    let d = [1.0, -2.0, 3.0, 4.0, -5.0, 6.0, -7.0, 8.0, 9.0, -10.0];
    let neg: Vec<f64> = d.iter().map(|v| -v).collect();
    let g = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
    let l = wilcoxon_signed_rank_diffs(&neg, Alternative::Less).unwrap();
    assert!((g.p_value - l.p_value).abs() < 1e-12);
    assert_eq!(g.w_plus, l.w_minus);
}

#[test]
fn large_n_switches_to_normal_approximation() {
    // n = 30 (> EXACT_LIMIT = 25): method must be the tie-corrected normal
    // approximation, and a strongly one-sided sample must be significant.
    let d: Vec<f64> = (1..=30).map(|i| i as f64).collect();
    let r = wilcoxon_signed_rank_diffs(&d, Alternative::Greater).unwrap();
    assert_eq!(r.method, xplain_stats::wilcoxon::Method::NormalApprox);
    // The exact probability would be 2^-30 ~ 9.3e-10; the continuity-
    // corrected normal approximation lands within an order of magnitude.
    assert!(r.p_value < 1e-6, "{}", r.p_value);
    assert!(r.z > 4.0);

    // And the approximation agrees with the exact route near the boundary:
    // the same balanced sample at n = 25 vs n = 26 gives nearby p-values.
    let balanced: Vec<f64> = (1..=26)
        .map(|i| if i % 2 == 0 { i as f64 } else { -(i as f64) })
        .collect();
    let approx = wilcoxon_signed_rank_diffs(&balanced, Alternative::TwoSided).unwrap();
    let exact25 = wilcoxon_signed_rank_diffs(&balanced[..25], Alternative::TwoSided).unwrap();
    assert_eq!(approx.method, xplain_stats::wilcoxon::Method::NormalApprox);
    assert_eq!(exact25.method, xplain_stats::wilcoxon::Method::Exact);
    assert!(
        (approx.p_value - exact25.p_value).abs() < 0.15,
        "normal {} vs exact {}",
        approx.p_value,
        exact25.p_value
    );
}
