//! Error type for DSL construction and compilation.

use std::fmt;

/// Errors from building, validating, or compiling a flow network.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowNetError {
    /// A node or edge id referenced something outside the graph.
    UnknownId(String),
    /// The graph violates a structural rule of a node behavior
    /// (e.g. a multiply node with two outgoing edges).
    Structure(String),
    /// Numeric attribute out of range (negative capacity, NaN rate...).
    BadAttribute(String),
    /// Redundancy elimination discovered contradictory fixed flows.
    Contradiction(String),
    /// The underlying LP/MILP solver failed.
    Solver(xplain_lp::LpError),
}

impl fmt::Display for FlowNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowNetError::UnknownId(msg) => write!(f, "unknown id: {msg}"),
            FlowNetError::Structure(msg) => write!(f, "structural error: {msg}"),
            FlowNetError::BadAttribute(msg) => write!(f, "bad attribute: {msg}"),
            FlowNetError::Contradiction(msg) => write!(f, "contradictory model: {msg}"),
            FlowNetError::Solver(e) => write!(f, "solver: {e}"),
        }
    }
}

impl std::error::Error for FlowNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowNetError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xplain_lp::LpError> for FlowNetError {
    fn from(e: xplain_lp::LpError) -> Self {
        FlowNetError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FlowNetError::UnknownId("n9".into())
            .to_string()
            .contains("n9"));
        assert!(FlowNetError::Solver(xplain_lp::LpError::Infeasible)
            .to_string()
            .contains("infeasible"));
    }
}
