//! A textual format for flow networks (`.flow` files).
//!
//! The paper implements its DSL as a LINQ-style embedded language; the
//! Rust-native equivalent is the fluent [`crate::FlowNet`] builder. For
//! operators who want to describe heuristic structure *outside* the host
//! language — config reviews, versioned network descriptions, the
//! "natural-language interface" future work of §6 — this module adds a
//! small line-oriented text format with full round-tripping:
//!
//! ```text
//! # Fig. 4a in .flow form (excerpt)
//! net "demand-pinning"
//! node d13   source split var 0 100   group DEMANDS
//! node p123  copy                     group PATHS
//! node e12   split                    group EDGES
//! node met   sink 1                   group SINKS
//! node unmet sink 0                   group SINKS
//! edge d13 -> p123  label "d13->p123"
//! edge d13 -> unmet
//! edge p123 -> met
//! edge p123 -> e12  cap 100
//! ```
//!
//! Grammar (line-based, `#` starts a comment):
//!
//! ```text
//! net <quoted-string>
//! node <name> <behavior> [group <word>]
//!   behavior := split | pick | copy | alleq
//!             | multiply <f64>
//!             | sink <f64>
//!             | source (split|pick) (fixed <f64> | var <f64> <f64>)
//! edge <from> -> <to> [cap <f64>] [fixed <f64>] [label <quoted-string>]
//! ```

use crate::error::FlowNetError;
use crate::graph::{FlowNet, NodeBehavior, NodeId, SourceInput, SourceKind};
use std::collections::BTreeMap;

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize one line: whitespace-separated words, with `"quoted strings"`
/// kept intact (no escapes — labels are simple).
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break; // comment
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                    None => return Err("unterminated string literal".into()),
                }
            }
            tokens.push(s);
        } else {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '#' {
                    break;
                }
                s.push(ch);
                chars.next();
            }
            tokens.push(s);
        }
    }
    Ok(tokens)
}

fn parse_f64(tok: Option<&String>, what: &str) -> Result<f64, String> {
    let t = tok.ok_or_else(|| format!("expected {what}"))?;
    let v: f64 = t
        .parse()
        .map_err(|_| format!("expected {what}, got '{t}'"))?;
    Ok(v)
}

/// Parse a `.flow` document into a network.
pub fn parse(input: &str) -> Result<FlowNet, ParseError> {
    let mut net = FlowNet::new("unnamed");
    let mut names: BTreeMap<String, NodeId> = BTreeMap::new();

    for (ix, raw) in input.lines().enumerate() {
        let line_no = ix + 1;
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let tokens = tokenize(raw).map_err(err)?;
        if tokens.is_empty() {
            continue;
        }
        match tokens[0].as_str() {
            "net" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err("expected network name".into()))?;
                net.name = name.clone();
            }
            "node" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err("expected node name".into()))?
                    .clone();
                if names.contains_key(&name) {
                    return Err(err(format!("duplicate node name '{name}'")));
                }
                let mut rest = tokens[2..].to_vec();
                // Extract trailing `group <word>`.
                let mut group = "DEFAULT".to_string();
                if rest.len() >= 2 && rest[rest.len() - 2] == "group" {
                    group = rest.pop().unwrap();
                    rest.pop();
                }
                let behavior = parse_behavior(&rest).map_err(err)?;
                let id = net.node(name.clone(), group, behavior);
                names.insert(name, id);
            }
            "edge" => {
                let from_name = tokens
                    .get(1)
                    .ok_or_else(|| err("expected source node".into()))?;
                if tokens.get(2).map(String::as_str) != Some("->") {
                    return Err(err("expected '->' after the source node".into()));
                }
                let to_name = tokens
                    .get(3)
                    .ok_or_else(|| err("expected destination node".into()))?;
                let from = *names
                    .get(from_name)
                    .ok_or_else(|| err(format!("unknown node '{from_name}'")))?;
                let to = *names
                    .get(to_name)
                    .ok_or_else(|| err(format!("unknown node '{to_name}'")))?;

                let mut cap: Option<f64> = None;
                let mut fixed: Option<f64> = None;
                let mut label: Option<String> = None;
                let mut i = 4;
                while i < tokens.len() {
                    match tokens[i].as_str() {
                        "cap" => {
                            cap = Some(parse_f64(tokens.get(i + 1), "capacity").map_err(err)?);
                            i += 2;
                        }
                        "fixed" => {
                            fixed = Some(parse_f64(tokens.get(i + 1), "fixed rate").map_err(err)?);
                            i += 2;
                        }
                        "label" => {
                            label = Some(
                                tokens
                                    .get(i + 1)
                                    .ok_or_else(|| err("expected label text".into()))?
                                    .clone(),
                            );
                            i += 2;
                        }
                        other => {
                            return Err(err(format!("unknown edge attribute '{other}'")));
                        }
                    }
                }
                let label = label.unwrap_or_else(|| format!("{from_name}->{to_name}"));
                let mut builder = net.edge(from, to, label);
                if let Some(c) = cap {
                    builder = builder.capacity(c);
                }
                if let Some(fx) = fixed {
                    builder.fixed(fx);
                } else {
                    let _ = builder;
                }
            }
            other => {
                return Err(err(format!(
                    "unknown directive '{other}' (expected net/node/edge)"
                )));
            }
        }
    }

    net.validate().map_err(|e: FlowNetError| ParseError {
        line: 0,
        message: format!("validation failed: {e}"),
    })?;
    Ok(net)
}

fn parse_behavior(tokens: &[String]) -> Result<NodeBehavior, String> {
    let kind = tokens
        .first()
        .ok_or_else(|| "expected a node behavior".to_string())?;
    match kind.as_str() {
        "split" => Ok(NodeBehavior::Split),
        "pick" => Ok(NodeBehavior::Pick),
        "copy" => Ok(NodeBehavior::Copy),
        "alleq" => Ok(NodeBehavior::AllEqual),
        "multiply" => {
            let c = parse_f64(tokens.get(1), "multiply factor")?;
            Ok(NodeBehavior::Multiply(c))
        }
        "sink" => {
            let w = parse_f64(tokens.get(1), "sink weight")?;
            Ok(NodeBehavior::Sink { weight: w })
        }
        "source" => {
            let sk = match tokens.get(1).map(String::as_str) {
                Some("split") => SourceKind::Split,
                Some("pick") => SourceKind::Pick,
                other => {
                    return Err(format!(
                        "expected 'split' or 'pick' after 'source', got {other:?}"
                    ))
                }
            };
            let input = match tokens.get(2).map(String::as_str) {
                Some("fixed") => SourceInput::Fixed(parse_f64(tokens.get(3), "fixed input")?),
                Some("var") => SourceInput::Var {
                    lo: parse_f64(tokens.get(3), "lower bound")?,
                    hi: parse_f64(tokens.get(4), "upper bound")?,
                },
                other => {
                    return Err(format!(
                        "expected 'fixed <v>' or 'var <lo> <hi>', got {other:?}"
                    ))
                }
            };
            Ok(NodeBehavior::Source(sk, input))
        }
        other => Err(format!("unknown behavior '{other}'")),
    }
}

/// Serialize a network back to `.flow` text (inverse of [`parse`] up to
/// formatting; node names are taken from labels, sanitized to words).
pub fn to_text(net: &FlowNet) -> String {
    let mut out = String::new();
    out.push_str(&format!("net \"{}\"\n", net.name));
    let word = |label: &str, i: usize| -> String {
        let w: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        format!("n{i}_{w}")
    };
    for (i, n) in net.nodes().iter().enumerate() {
        let behavior = match n.behavior {
            NodeBehavior::Split => "split".to_string(),
            NodeBehavior::Pick => "pick".to_string(),
            NodeBehavior::Copy => "copy".to_string(),
            NodeBehavior::AllEqual => "alleq".to_string(),
            NodeBehavior::Multiply(c) => format!("multiply {c}"),
            NodeBehavior::Sink { weight } => format!("sink {weight}"),
            NodeBehavior::Source(kind, input) => {
                let k = match kind {
                    SourceKind::Split => "split",
                    SourceKind::Pick => "pick",
                };
                match input {
                    SourceInput::Fixed(v) => format!("source {k} fixed {v}"),
                    SourceInput::Var { lo, hi } => format!("source {k} var {lo} {hi}"),
                }
            }
        };
        out.push_str(&format!(
            "node {} {behavior} group {}\n",
            word(&n.label, i),
            n.group
        ));
    }
    for e in net.edges() {
        let mut line = format!(
            "edge {} -> {}",
            word(&net.node_data(e.from).label, e.from.0),
            word(&net.node_data(e.to).label, e.to.0)
        );
        if let Some(c) = e.capacity {
            line.push_str(&format!(" cap {c}"));
        }
        if let Some(fx) = e.fixed {
            line.push_str(&format!(" fixed {fx}"));
        }
        line.push_str(&format!(" label \"{}\"", e.label));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;

    const SAMPLE: &str = r#"
# A toy max-flow network.
net "toy"
node d source split var 0 5 group DEMANDS
node mid split group MID
node met sink 1 group SINKS
edge d -> mid label "in"
edge mid -> met cap 3 label "out"
"#;

    #[test]
    fn parse_and_solve() {
        let net = parse(SAMPLE).expect("parses");
        assert_eq!(net.name, "toy");
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 2);
        let sol = net
            .compile(&CompileOptions::default())
            .unwrap()
            .solve()
            .unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let net = parse("# nothing\n\n   # more nothing\n").expect("parses");
        assert_eq!(net.num_nodes(), 0);
    }

    #[test]
    fn all_behaviors_parse() {
        // A connected network exercising all seven behaviors (pick and
        // multiply have structural arity requirements).
        let src = r#"
node a source pick fixed 1 group G
node b pick group G
node c copy group G
node d alleq group G
node e multiply 2.5 group G
node f split group G
node g sink 0.5 group G
edge a -> b
edge b -> c
edge c -> d
edge d -> e
edge e -> f
edge f -> g
"#;
        let net = parse(src).expect("parses");
        assert_eq!(net.num_nodes(), 7);
        assert_eq!(net.num_edges(), 6);
        assert!(matches!(
            net.node_data(crate::graph::NodeId(4)).behavior,
            NodeBehavior::Multiply(c) if (c - 2.5).abs() < 1e-12
        ));
    }

    #[test]
    fn edge_attributes() {
        let src = r#"
node s source split fixed 2 group G
node t sink 1 group G
edge s -> t cap 4 fixed 2 label "pinned"
"#;
        let net = parse(src).expect("parses");
        let e = net.edge_by_label("pinned").unwrap();
        assert_eq!(net.edge_data(e).capacity, Some(4.0));
        assert_eq!(net.edge_data(e).fixed, Some(2.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "node a split group G\nbogus directive\n";
        let err = parse(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn unknown_node_in_edge() {
        let bad = "node a split group G\nedge a -> ghost\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn duplicate_node_rejected() {
        let bad = "node a split group G\nnode a split group G\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn missing_arrow_rejected() {
        let bad = "node a split group G\nnode b split group G\nedge a b\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("->"), "{err}");
    }

    #[test]
    fn validation_errors_surface() {
        // A multiply node with no edges fails structural validation.
        let bad = "node m multiply 2 group G\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("validation"), "{err}");
    }

    #[test]
    fn roundtrip_through_text() {
        let net = parse(SAMPLE).expect("parses");
        let text = to_text(&net);
        let back = parse(&text).expect("round-trips");
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_edges(), net.num_edges());
        // Same optimum after the round trip.
        let a = net
            .compile(&CompileOptions::default())
            .unwrap()
            .solve()
            .unwrap();
        let b = back
            .compile(&CompileOptions::default())
            .unwrap()
            .solve()
            .unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn unterminated_string_rejected() {
        let bad = "net \"oops\n";
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn quoted_labels_keep_spaces() {
        let src = r#"
node s source split fixed 1 group G
node t sink 1 group G
edge s -> t label "a label with spaces"
"#;
        let net = parse(src).expect("parses");
        assert!(net.edge_by_label("a label with spaces").is_some());
    }
}
