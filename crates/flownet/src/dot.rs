//! Graphviz (DOT) export of flow networks, including the explainer's
//! red/blue heat-maps (Fig. 4).
//!
//! Edge scores in `[-1, 1]` follow the paper's convention: negative (red)
//! means only the *heuristic* sends flow on that edge, positive (blue)
//! means only the *benchmark* does, zero (gray) means they agree.

use crate::graph::{FlowNet, NodeBehavior, SourceKind};
use std::fmt::Write as _;

/// Render the bare network structure.
pub fn to_dot(net: &FlowNet) -> String {
    to_dot_with_scores(net, None)
}

/// Render the network with an optional per-edge score overlay.
///
/// `scores`, when given, must have one entry per edge; values are clamped
/// to `[-1, 1]`.
pub fn to_dot_with_scores(net: &FlowNet, scores: Option<&[f64]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(&net.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    // Group nodes into same-rank clusters by their `group` metadata, in
    // first-seen order (DEMANDS / PATHS / EDGES rows of Fig. 4a).
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, n) in net.nodes().iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| *g == n.group) {
            Some((_, v)) => v.push(i),
            None => groups.push((n.group.clone(), vec![i])),
        }
    }
    for (group, members) in &groups {
        let _ = writeln!(out, "  subgraph \"cluster_{}\" {{", sanitize(group));
        let _ = writeln!(out, "    label=\"{}\"; rank=same;", sanitize(group));
        for &i in members {
            let n = &net.nodes()[i];
            let (shape, fill) = match n.behavior {
                NodeBehavior::Source(SourceKind::Split, _) => ("invtriangle", "#c6dbef"),
                NodeBehavior::Source(SourceKind::Pick, _) => ("invtrapezium", "#9ecae1"),
                NodeBehavior::Sink { .. } => ("doublecircle", "#d9d9d9"),
                NodeBehavior::Split => ("circle", "#ffffff"),
                NodeBehavior::Pick => ("diamond", "#fdd0a2"),
                NodeBehavior::Multiply(_) => ("box", "#e5f5e0"),
                NodeBehavior::AllEqual => ("hexagon", "#efedf5"),
                NodeBehavior::Copy => ("trapezium", "#fee0d2"),
            };
            let _ = writeln!(
                out,
                "    n{i} [label=\"{}\", shape={shape}, style=filled, fillcolor=\"{fill}\"];",
                sanitize(&n.label)
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for (i, e) in net.edges().iter().enumerate() {
        let mut attrs = vec![format!("label=\"{}\"", sanitize(&e.label))];
        if let Some(scores) = scores {
            let s = scores.get(i).copied().unwrap_or(0.0).clamp(-1.0, 1.0);
            attrs.push(format!("color=\"{}\"", score_color(s)));
            // Emphasize strongly disagreeing edges like the paper's figure.
            attrs.push(format!("penwidth={:.2}", 1.0 + 3.0 * s.abs()));
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}];",
            e.from.0,
            e.to.0,
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Map a score in `[-1, 1]` onto the red↔gray↔blue ramp the paper uses:
/// -1 (heuristic-only) is intense red, +1 (benchmark-only) intense blue.
pub fn score_color(score: f64) -> String {
    let s = score.clamp(-1.0, 1.0);
    let (r, g, b) = if s < 0.0 {
        let t = -s;
        (
            (160.0 + 95.0 * t) as u8,
            (160.0 - 140.0 * t) as u8,
            (160.0 - 140.0 * t) as u8,
        )
    } else {
        let t = s;
        (
            (160.0 - 140.0 * t) as u8,
            (160.0 - 140.0 * t) as u8,
            (160.0 + 95.0 * t) as u8,
        )
    };
    format!("#{r:02x}{g:02x}{b:02x}")
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'").replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{FlowNet, SourceInput, SourceKind};

    fn sample() -> FlowNet {
        let mut net = FlowNet::new("dot-test");
        let s = net.source("d1", "DEMANDS", SourceKind::Split, SourceInput::Fixed(1.0));
        let p = net.copy("p1", "PATHS");
        let t = net.sink("met", "SINKS", 1.0);
        net.edge(s, p, "d1->p1");
        net.edge(p, t, "p1->met");
        net
    }

    #[test]
    fn structure_renders() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_DEMANDS"));
        assert!(dot.contains("cluster_PATHS"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("d1->p1"));
    }

    #[test]
    fn scores_color_edges() {
        let net = sample();
        let dot = to_dot_with_scores(&net, Some(&[-1.0, 1.0]));
        assert!(dot.contains(&score_color(-1.0)));
        assert!(dot.contains(&score_color(1.0)));
    }

    #[test]
    fn color_ramp_endpoints() {
        assert_eq!(score_color(-1.0), "#ff1414"); // intense red
        assert_eq!(score_color(1.0), "#1414ff"); // intense blue
        assert_eq!(score_color(0.0), "#a0a0a0"); // neutral gray
    }

    #[test]
    fn quotes_sanitized() {
        let mut net = FlowNet::new("q\"uote");
        let s = net.source("s\"x", "G", SourceKind::Split, SourceInput::Fixed(1.0));
        let t = net.sink("t", "G", 1.0);
        net.edge(s, t, "e");
        let dot = to_dot(&net);
        assert!(!dot.contains("\"q\"uote\""));
    }

    #[test]
    fn score_clamped() {
        // Out-of-range scores must not panic or produce bad hex.
        let c = score_color(5.0);
        assert_eq!(c.len(), 7);
        assert_eq!(c, score_color(1.0));
    }
}
