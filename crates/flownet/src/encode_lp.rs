//! Appendix A as code: rewrite **any** linear or mixed-integer linear
//! optimization into the six DSL node behaviors (Theorem A.1).
//!
//! The construction follows the paper's proof step by step:
//!
//! * every constraint is normalized to `A⁺x + b⁻ + f = A⁻x + b⁺` with a
//!   nonnegative slack `f` and becomes one **split** node (step S1, Fig. 8);
//! * every coefficient becomes a **multiply** node producing the auxiliary
//!   `u⁺/u⁻` terms (step S2, Fig. 9);
//! * every variable becomes an **all-equal** node tying its copies
//!   `x⁺_ij = x⁻_ij = x_j` together (step S3, Fig. 10);
//! * binary variables become **pick** sources fed one unit of flow
//!   (step S4); general integers are binary-decomposed first;
//! * the objective is reified as `p = c'x + K` (with `K` a constant shift
//!   keeping `p >= 0`) flowing into the **sink**.
//!
//! The paper is explicit that this mapping "does not mean … the most
//! efficient representation" — the point (and what the tests verify) is
//! *equivalence of optima*, which is what makes the DSL complete.

use crate::compile::CompileOptions;
use crate::error::FlowNetError;
use crate::graph::{EdgeId, FlowNet, SourceInput, SourceKind};
use xplain_lp::{Cmp, Model, Sense, VarType};

/// The result of encoding: a flow network plus the bookkeeping needed to
/// recover the original optimum and variable assignment.
#[derive(Debug, Clone)]
pub struct EncodedLp {
    pub net: FlowNet,
    /// Master edge per original variable (carries the variable's value).
    pub var_edges: Vec<EdgeId>,
    /// `sink objective = (normalized max-objective) + objective_offset`.
    pub objective_offset: f64,
    /// True if the original model minimized (objective was negated during
    /// normalization).
    pub negated: bool,
}

impl EncodedLp {
    /// Compile and solve the flow network; return the original-model
    /// objective and variable values.
    pub fn solve(&self, options: &CompileOptions) -> Result<(f64, Vec<f64>), FlowNetError> {
        let compiled = self.net.compile(options)?;
        let sol = compiled.solve()?;
        let normalized = sol.objective - self.objective_offset;
        let objective = if self.negated {
            -normalized
        } else {
            normalized
        };
        let values = self.var_edges.iter().map(|&e| sol.flows[e.0]).collect();
        Ok((objective, values))
    }
}

/// Normalized row: `Σ coeff_j x_j <= rhs`.
struct LeRow {
    coeffs: Vec<(usize, f64)>,
    rhs: f64,
}

/// Encode `model` as a flow network per Theorem A.1.
///
/// Requirements (limitations of the constructive proof, not of the DSL):
/// every variable needs `lo >= 0`, and every variable with a negative
/// normalized objective coefficient — as well as every general integer —
/// needs a finite upper bound. Violations return
/// [`FlowNetError::BadAttribute`].
pub fn encode(model: &Model) -> Result<EncodedLp, FlowNetError> {
    model.validate().map_err(FlowNetError::Solver)?;

    let n = model.num_vars();
    let negated = model.sense() == Sense::Minimize;

    // Normalized (maximization) objective.
    let mut obj = vec![0.0; n];
    for (v, c) in model.objective().iter() {
        obj[v.index()] += if negated { -c } else { c };
    }
    let obj_constant = if negated {
        -model.objective().constant_part()
    } else {
        model.objective().constant_part()
    };

    // Bounds; fail fast on unsupported shapes.
    let mut lo = vec![0.0; n];
    let mut hi = vec![f64::INFINITY; n];
    for j in 0..n {
        let v = xplain_lp::VarId::from_index(j);
        let (l, h) = model.var_bounds(v);
        if l < 0.0 {
            return Err(FlowNetError::BadAttribute(format!(
                "variable {} has negative lower bound {l}; Theorem A.1 assumes x >= 0",
                model.var_name(v)
            )));
        }
        if obj[j] < 0.0 && !h.is_finite() {
            return Err(FlowNetError::BadAttribute(format!(
                "variable {} has a negative objective coefficient and no finite upper bound",
                model.var_name(v)
            )));
        }
        lo[j] = l;
        hi[j] = h;
    }

    // --- Normalize all constraints to `<=` rows -------------------------
    let mut rows: Vec<LeRow> = Vec::new();
    let push_row = |rows: &mut Vec<LeRow>, coeffs: Vec<(usize, f64)>, rhs: f64| {
        if !coeffs.is_empty() {
            rows.push(LeRow { coeffs, rhs });
        }
    };
    for c in model.constraints() {
        let coeffs: Vec<(usize, f64)> = c
            .expr
            .iter()
            .filter(|(_, k)| k.abs() > 1e-12)
            .map(|(v, k)| (v.index(), k))
            .collect();
        let rhs = c.rhs - c.expr.constant_part();
        match c.cmp {
            Cmp::Le => push_row(&mut rows, coeffs, rhs),
            Cmp::Ge => push_row(
                &mut rows,
                coeffs.iter().map(|&(j, k)| (j, -k)).collect(),
                -rhs,
            ),
            Cmp::Eq => {
                push_row(&mut rows, coeffs.clone(), rhs);
                push_row(
                    &mut rows,
                    coeffs.iter().map(|&(j, k)| (j, -k)).collect(),
                    -rhs,
                );
            }
        }
    }
    // Positive lower bounds become rows (-x <= -lo); the master edge only
    // carries [0, hi].
    for j in 0..n {
        if lo[j] > 0.0 {
            push_row(&mut rows, vec![(j, -1.0)], -lo[j]);
        }
    }

    // --- Build the network ----------------------------------------------
    let mut net = FlowNet::new(format!("encoded[{}]", model.num_vars()));
    let dump = net.sink("dump", "AUX", 0.0);

    // One all-equal node per variable, fed by a master edge.
    let mut var_nodes = Vec::with_capacity(n);
    let mut var_edges = Vec::with_capacity(n);
    for j in 0..n {
        let v = xplain_lp::VarId::from_index(j);
        let name = model.var_name(v).to_string();
        let ae = net.all_equal(format!("x[{name}]"), "VARS");
        var_nodes.push(ae);
        match model.var_type(v) {
            VarType::Continuous => {
                let src = net.source(
                    format!("src_x[{name}]"),
                    "VARS",
                    SourceKind::Split,
                    SourceInput::Var { lo: 0.0, hi: hi[j] },
                );
                let e = net.edge(src, ae, format!("master[{name}]")).id();
                var_edges.push(e);
            }
            VarType::Binary => {
                // Pick source with one unit: the "on" edge carries the
                // binary's value, the "off" edge dumps the unit.
                let src = net.source(
                    format!("bit_src[{name}]"),
                    "BITS",
                    SourceKind::Pick,
                    SourceInput::Fixed(1.0),
                );
                let on = net.edge(src, ae, format!("master[{name}]")).id();
                net.edge(src, dump, format!("off[{name}]"));
                var_edges.push(on);
            }
            VarType::Integer => {
                // Binary decomposition x = Σ 2^k y_k summed by a split node.
                let h = hi[j];
                if !h.is_finite() {
                    return Err(FlowNetError::BadAttribute(format!(
                        "integer variable {name} needs a finite upper bound for binary decomposition"
                    )));
                }
                let u = h.floor().max(0.0) as u64;
                let bits = if u == 0 {
                    1
                } else {
                    64 - u.leading_zeros() as usize
                };
                let collect = net.split(format!("bits_sum[{name}]"), "BITS");
                for k in 0..bits {
                    let w = (1u64 << k) as f64;
                    let src = net.source(
                        format!("bit_src[{name}#{k}]"),
                        "BITS",
                        SourceKind::Pick,
                        SourceInput::Fixed(1.0),
                    );
                    let mul = net.multiply(format!("bit_w[{name}#{k}]"), "BITS", w);
                    net.edge(src, mul, format!("bit_on[{name}#{k}]"));
                    net.edge(mul, collect, format!("bit_val[{name}#{k}]"));
                    net.edge(src, dump, format!("bit_off[{name}#{k}]"));
                }
                let e = net.edge(collect, ae, format!("master[{name}]")).id();
                var_edges.push(e);
                // The bit pattern can reach 2^bits - 1 > hi: clamp by row.
                push_row(&mut rows, vec![(j, 1.0)], h);
            }
        }
    }

    // One split node per row (S1) with multiply nodes per coefficient (S2)
    // hanging off the variables' all-equal nodes (S3).
    for (i, row) in rows.iter().enumerate() {
        let split = net.split(format!("row[{i}]"), "ROWS");
        let b = row.rhs;
        // Slack f_i >= 0 enters the node.
        let slack = net.source(
            format!("slack_src[{i}]"),
            "AUX",
            SourceKind::Split,
            SourceInput::Var {
                lo: 0.0,
                hi: f64::INFINITY,
            },
        );
        net.edge(slack, split, format!("slack[{i}]"));
        // Constant sides: b⁺ leaves, b⁻ enters.
        if b > 1e-12 {
            let bsink = net.sink(format!("bplus_sink[{i}]"), "AUX", 0.0);
            net.edge(split, bsink, format!("bplus[{i}]")).fixed(b);
        } else if b < -1e-12 {
            let bsrc = net.source(
                format!("bminus_src[{i}]"),
                "AUX",
                SourceKind::Split,
                SourceInput::Fixed(-b),
            );
            net.edge(bsrc, split, format!("bminus[{i}]"));
        }
        for &(j, a) in &row.coeffs {
            if a > 0.0 {
                // u⁺_ij = a * x_j enters the split node.
                let mul = net.multiply(format!("aplus[{i},{j}]"), "COEF", a);
                net.edge(var_nodes[j], mul, format!("xplus[{i},{j}]"));
                net.edge(mul, split, format!("uplus[{i},{j}]"));
            } else {
                // u⁻_ij = (-a) * x_j leaves the split node; the inverse
                // multiply returns exactly x_j to the all-equal node.
                let mul = net.multiply(format!("aminus[{i},{j}]"), "COEF", 1.0 / (-a));
                net.edge(split, mul, format!("uminus[{i},{j}]"));
                net.edge(mul, var_nodes[j], format!("xminus[{i},{j}]"));
            }
        }
    }

    // --- Objective reification: p = Σ c⁺x − Σ c⁻x + K --------------------
    let obj_split = net.split("obj", "OBJ");
    let mut shift = 0.0;
    for j in 0..n {
        let c = obj[j];
        if c > 1e-12 {
            let mul = net.multiply(format!("cplus[{j}]"), "OBJ", c);
            net.edge(var_nodes[j], mul, format!("obj_xplus[{j}]"));
            net.edge(mul, obj_split, format!("obj_uplus[{j}]"));
        } else if c < -1e-12 {
            let mul = net.multiply(format!("cminus[{j}]"), "OBJ", 1.0 / (-c));
            net.edge(obj_split, mul, format!("obj_uminus[{j}]"));
            net.edge(mul, var_nodes[j], format!("obj_xminus[{j}]"));
            shift += (-c) * hi[j];
        }
    }
    if shift > 0.0 {
        let ksrc = net.source(
            "obj_shift",
            "OBJ",
            SourceKind::Split,
            SourceInput::Fixed(shift),
        );
        net.edge(ksrc, obj_split, "obj_k");
    }
    let sink = net.sink("objective", "OBJ", 1.0);
    net.edge(obj_split, sink, "p");

    // sink = c'x + shift; we want `sink - offset = c'x + obj_constant`,
    // so offset = shift - obj_constant.
    Ok(EncodedLp {
        net,
        var_edges,
        objective_offset: shift - obj_constant,
        negated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_lp::{Cmp, LinExpr, Model, Sense, VarType};

    fn roundtrip(model: &Model) -> (f64, Vec<f64>) {
        let enc = encode(model).expect("encodable");
        enc.net.validate().expect("valid network");
        enc.solve(&CompileOptions::default()).expect("solvable")
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn simple_max_lp() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6; x,y in [0, 10] -> 12
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c1", x + y, Cmp::Le, 4.0);
        m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
        m.set_objective(x * 3.0 + y * 2.0);
        let direct = m.solve().unwrap();
        let (obj, values) = roundtrip(&m);
        assert_close(obj, direct.objective);
        assert_close(values[0], 4.0);
    }

    #[test]
    fn negative_coefficients_in_constraints() {
        // max x s.t. x - y <= 1, y <= 2; x,y in [0, 10] -> x = 3
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c1", x - y, Cmp::Le, 1.0);
        m.add_constr("c2", LinExpr::term(y, 1.0), Cmp::Le, 2.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let (obj, values) = roundtrip(&m);
        assert_close(obj, 3.0);
        assert_close(values[0], 3.0);
    }

    #[test]
    fn negative_objective_coefficient() {
        // max x - 2y s.t. x <= y + 1, y in [0,5], x in [0,5] -> x=1,y=0: 1
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 5.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 5.0);
        m.add_constr("c", x - y, Cmp::Le, 1.0);
        m.set_objective(x - y * 2.0);
        let direct = m.solve().unwrap();
        let (obj, _) = roundtrip(&m);
        assert_close(obj, direct.objective);
        assert_close(obj, 1.0);
    }

    #[test]
    fn minimization_sense() {
        // min 2x + y s.t. x + y >= 3; x,y in [0, 10] -> y=3: 3
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Ge, 3.0);
        m.set_objective(x * 2.0 + y);
        let direct = m.solve().unwrap();
        let (obj, _) = roundtrip(&m);
        assert_close(obj, direct.objective);
        assert_close(obj, 3.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1; bounds [0,10] -> 5
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("e1", x + y, Cmp::Eq, 5.0);
        m.add_constr("e2", x - y, Cmp::Eq, 1.0);
        m.set_objective(x + y);
        let (obj, values) = roundtrip(&m);
        assert_close(obj, 5.0);
        assert_close(values[0], 3.0);
        assert_close(values[1], 2.0);
    }

    #[test]
    fn binary_variables_via_pick() {
        // Knapsack: values [10, 13, 7], weights [3, 4, 2], cap 6 -> 20.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..3).map(|i| m.add_binary(format!("b{i}"))).collect();
        m.add_constr("cap", x[0] * 3.0 + x[1] * 4.0 + x[2] * 2.0, Cmp::Le, 6.0);
        m.set_objective(x[0] * 10.0 + x[1] * 13.0 + x[2] * 7.0);
        let direct = m.solve().unwrap();
        let (obj, values) = roundtrip(&m);
        assert_close(obj, direct.objective);
        for v in &values {
            assert!(v.abs() < 1e-5 || (v - 1.0).abs() < 1e-5, "non-binary {v}");
        }
    }

    #[test]
    fn general_integer_via_binary_decomposition() {
        // max x s.t. 2x <= 11, x integer in [0, 6] -> 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 6.0);
        m.add_constr("c", LinExpr::term(x, 2.0), Cmp::Le, 11.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let (obj, values) = roundtrip(&m);
        assert_close(obj, 5.0);
        assert_close(values[0], 5.0);
    }

    #[test]
    fn lower_bounds_become_rows() {
        // min x with x in [2.5, 10] -> 2.5
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 2.5, 10.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let (obj, values) = roundtrip(&m);
        assert_close(obj, 2.5);
        assert_close(values[0], 2.5);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 3.0);
        m.set_objective(x + 10.0);
        let direct = m.solve().unwrap();
        let (obj, _) = roundtrip(&m);
        assert_close(obj, direct.objective);
        assert_close(obj, 13.0);
    }

    #[test]
    fn rejects_negative_lower_bound() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", VarType::Continuous, -1.0, 1.0);
        assert!(matches!(encode(&m), Err(FlowNetError::BadAttribute(_))));
    }

    #[test]
    fn rejects_unbounded_negative_objective() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        m.set_objective(LinExpr::term(x, -1.0));
        assert!(matches!(encode(&m), Err(FlowNetError::BadAttribute(_))));
    }

    #[test]
    fn infeasible_model_stays_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.add_constr("c", LinExpr::term(x, 1.0), Cmp::Ge, 2.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let enc = encode(&m).unwrap();
        assert!(enc.solve(&CompileOptions::default()).is_err());
    }

    #[test]
    fn elimination_and_raw_agree_on_encoding() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 4.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 4.0);
        m.add_constr("c1", x * 2.0 + y, Cmp::Le, 6.0);
        m.add_constr("c2", x - y, Cmp::Ge, -1.0);
        m.set_objective(x + y * 3.0);
        let enc = encode(&m).unwrap();
        let (a, _) = enc.solve(&CompileOptions::default()).unwrap();
        let (b, _) = enc
            .solve(&CompileOptions {
                eliminate: false,
                ..Default::default()
            })
            .unwrap();
        assert_close(a, b);
        assert_close(a, m.solve().unwrap().objective);
    }
}
