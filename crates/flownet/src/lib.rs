//! # xplain-flownet
//!
//! The XPlain network-flow DSL (§5.1, Fig. 6, Appendix A):
//!
//! * [`graph`] — the language itself: directed graphs whose nodes carry
//!   behaviors (split / pick / multiply / all-equal / copy / source / sink)
//!   and whose edges are nonnegative flows with capacities, fixed rates and
//!   human-readable metadata;
//! * [`compile`] — the compiler to LP/MILP with the redundancy-elimination
//!   pass that makes the compiled DSL faster than hand-written encodings
//!   (the paper's 4.3× observation);
//! * [`encode_lp`] — the Appendix-A constructive proof as code: any
//!   LP/MILP rewritten into the six node behaviors (Theorem A.1);
//! * [`dot`] — Graphviz export, including the explainer's red/blue edge
//!   heat-maps (Fig. 4);
//! * [`text`] — a standalone `.flow` textual format with a parser and
//!   writer (the embedded builder's file-format counterpart).

pub mod compile;
pub mod dot;
pub mod encode_lp;
pub mod error;
pub mod graph;
pub mod text;

pub use compile::{CompileOptions, CompileStats, CompiledModel, EdgeRef, FlowSolution};
pub use error::FlowNetError;
pub use graph::{Edge, EdgeId, FlowNet, Node, NodeBehavior, NodeId, SourceInput, SourceKind};
