//! The flow-network DSL: a directed graph whose nodes carry *behaviors*
//! (constraint templates over incident edge flows) and whose edges are
//! nonnegative flow variables.
//!
//! This is the paper's §5.1 / Appendix A abstraction. Six behaviors are
//! enough to express any linear (or mixed-integer linear) optimization
//! (Theorem A.1; see [`crate::encode_lp`]):
//!
//! | behavior | constraint |
//! |----------|-----------|
//! | split    | Σ in = Σ out (flow conservation) |
//! | pick     | conservation + at most one outgoing edge carries flow |
//! | multiply(C) | single in/out, `f_out = C * f_in` |
//! | all-equal | every incident edge carries the same flow |
//! | copy     | every outgoing edge carries Σ in |
//! | sink     | no outgoing edges; contributes Σ in to the objective |
//!
//! Sources are split- or pick-behaved nodes with no incoming edges whose
//! emitted volume is either a constant or a bounded decision variable — the
//! latter is exactly MetaOpt's "OuterVar" hook (the adversarial input).
//! Metadata (`label`, `group`) attaches human-readable context that the
//! explainer and generalizer surface in their reports.

use crate::error::FlowNetError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a node in a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Handle to an edge in a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// How a source node's emitted volume is determined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceInput {
    /// Fixed input rate (a problem constant).
    Fixed(f64),
    /// A bounded decision variable — MetaOpt's *OuterVar*. The compiler
    /// exposes one LP variable per such source so an outer optimization
    /// (the heuristic analyzer) can steer it.
    Var {
        #[serde(with = "xplain_lp::serde_inf")]
        lo: f64,
        #[serde(with = "xplain_lp::serde_inf")]
        hi: f64,
    },
}

/// Distribution discipline of a source node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceKind {
    /// May split its volume across outgoing edges (Fig. 4a demands).
    Split,
    /// Must place all volume on exactly one outgoing edge (Fig. 4b balls).
    Pick,
}

/// Node behaviors (Fig. 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeBehavior {
    /// Flow conservation across incident edges.
    Split,
    /// Conservation, but only one outgoing edge may carry flow.
    Pick,
    /// `f_out = C * f_in`; exactly one incoming and one outgoing edge.
    Multiply(f64),
    /// All incident edges carry equal flow.
    AllEqual,
    /// Every outgoing edge duplicates the total incoming flow.
    Copy,
    /// Produces traffic (no incoming edges).
    Source(SourceKind, SourceInput),
    /// Consumes traffic (no outgoing edges); `weight * Σ in` joins the
    /// objective. Weight 0 gives an absorbing sink like Fig. 4a's
    /// "Unmet Demand".
    Sink { weight: f64 },
}

/// A node: behavior plus presentation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub behavior: NodeBehavior,
    /// Human-readable name surfaced in explanations (e.g. `"1⇝3"`).
    pub label: String,
    /// Logical row/layer for layout and trend analysis
    /// (e.g. `"DEMANDS"`, `"PATHS"`, `"EDGES"`, `"BALLS"`, `"BINS"`).
    pub group: String,
}

/// An edge: a nonnegative flow variable with optional capacity or a fixed
/// rate, plus a label for explanations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Upper bound on the flow (`None` = uncapacitated).
    pub capacity: Option<f64>,
    /// Pin the flow to a constant.
    pub fixed: Option<f64>,
    pub label: String,
}

/// The DSL program: a directed graph of behaviors.
///
/// Built fluently:
///
/// ```
/// use xplain_flownet::{FlowNet, SourceKind, SourceInput};
/// let mut net = FlowNet::new("example");
/// // A demand of up to 5 units (an adversarial-input variable) that can
/// // reach the "met" sink over a capacity-3 edge.
/// let src = net.source("demand", "DEMANDS", SourceKind::Split,
///                      SourceInput::Var { lo: 0.0, hi: 5.0 });
/// let sink = net.sink("met", "SINKS", 1.0);
/// net.edge(src, sink, "direct").capacity(3.0);
/// let compiled = net.compile(&Default::default()).unwrap();
/// let sol = compiled.solve().unwrap();
/// assert!((sol.objective - 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNet {
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Label → node lookup (labels need not be unique; first wins).
    #[serde(skip)]
    node_index: BTreeMap<String, NodeId>,
    #[serde(skip)]
    edge_index: BTreeMap<String, EdgeId>,
}

/// Builder handle returned by [`FlowNet::edge`] for fluent attribute
/// setting.
pub struct EdgeBuilder<'a> {
    net: &'a mut FlowNet,
    id: EdgeId,
}

impl<'a> EdgeBuilder<'a> {
    /// Set the edge capacity.
    pub fn capacity(self, cap: f64) -> Self {
        self.net.edges[self.id.0].capacity = Some(cap);
        self
    }

    /// Pin the edge flow to a constant.
    pub fn fixed(self, rate: f64) -> Self {
        self.net.edges[self.id.0].fixed = Some(rate);
        self
    }

    /// The created edge's id.
    pub fn id(&self) -> EdgeId {
        self.id
    }
}

impl FlowNet {
    /// Create an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        FlowNet {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            node_index: BTreeMap::new(),
            edge_index: BTreeMap::new(),
        }
    }

    /// Add a node with an arbitrary behavior.
    pub fn node(
        &mut self,
        label: impl Into<String>,
        group: impl Into<String>,
        behavior: NodeBehavior,
    ) -> NodeId {
        let label = label.into();
        self.nodes.push(Node {
            behavior,
            label: label.clone(),
            group: group.into(),
        });
        let id = NodeId(self.nodes.len() - 1);
        self.node_index.entry(label).or_insert(id);
        id
    }

    /// Add a split node.
    pub fn split(&mut self, label: impl Into<String>, group: impl Into<String>) -> NodeId {
        self.node(label, group, NodeBehavior::Split)
    }

    /// Add a pick node.
    pub fn pick(&mut self, label: impl Into<String>, group: impl Into<String>) -> NodeId {
        self.node(label, group, NodeBehavior::Pick)
    }

    /// Add a multiply node with factor `c`.
    pub fn multiply(
        &mut self,
        label: impl Into<String>,
        group: impl Into<String>,
        c: f64,
    ) -> NodeId {
        self.node(label, group, NodeBehavior::Multiply(c))
    }

    /// Add an all-equal node.
    pub fn all_equal(&mut self, label: impl Into<String>, group: impl Into<String>) -> NodeId {
        self.node(label, group, NodeBehavior::AllEqual)
    }

    /// Add a copy node.
    pub fn copy(&mut self, label: impl Into<String>, group: impl Into<String>) -> NodeId {
        self.node(label, group, NodeBehavior::Copy)
    }

    /// Add a source node.
    pub fn source(
        &mut self,
        label: impl Into<String>,
        group: impl Into<String>,
        kind: SourceKind,
        input: SourceInput,
    ) -> NodeId {
        self.node(label, group, NodeBehavior::Source(kind, input))
    }

    /// Add a sink node with objective weight `weight`.
    pub fn sink(
        &mut self,
        label: impl Into<String>,
        group: impl Into<String>,
        weight: f64,
    ) -> NodeId {
        self.node(label, group, NodeBehavior::Sink { weight })
    }

    /// Add an edge and get a builder for its attributes.
    pub fn edge(&mut self, from: NodeId, to: NodeId, label: impl Into<String>) -> EdgeBuilder<'_> {
        let label = label.into();
        self.edges.push(Edge {
            from,
            to,
            capacity: None,
            fixed: None,
            label: label.clone(),
        });
        let id = EdgeId(self.edges.len() - 1);
        self.edge_index.entry(label).or_insert(id);
        EdgeBuilder { net: self, id }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node data by id.
    pub fn node_data(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge data by id.
    pub fn edge_data(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Look up a node by its label (first match).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.node_index.get(label).copied()
    }

    /// Look up an edge by its label (first match).
    pub fn edge_by_label(&self, label: &str) -> Option<EdgeId> {
        self.edge_index.get(label).copied()
    }

    /// Incoming edge ids of `n`.
    pub fn incoming(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == n)
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Outgoing edge ids of `n`.
    pub fn outgoing(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == n)
            .map(|(i, _)| EdgeId(i))
            .collect()
    }

    /// Structural validation: behavior arity rules, attribute sanity.
    pub fn validate(&self) -> Result<(), FlowNetError> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.0 >= self.nodes.len() || e.to.0 >= self.nodes.len() {
                return Err(FlowNetError::UnknownId(format!("edge e{i} endpoints")));
            }
            if e.from == e.to {
                return Err(FlowNetError::Structure(format!(
                    "edge {} is a self-loop",
                    e.label
                )));
            }
            if let Some(c) = e.capacity {
                if !c.is_finite() || c < 0.0 {
                    return Err(FlowNetError::BadAttribute(format!(
                        "edge {} capacity {c}",
                        e.label
                    )));
                }
            }
            if let Some(fx) = e.fixed {
                if !fx.is_finite() || fx < 0.0 {
                    return Err(FlowNetError::BadAttribute(format!(
                        "edge {} fixed rate {fx}",
                        e.label
                    )));
                }
                if let Some(c) = e.capacity {
                    if fx > c + 1e-12 {
                        return Err(FlowNetError::BadAttribute(format!(
                            "edge {} fixed rate {fx} exceeds capacity {c}",
                            e.label
                        )));
                    }
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId(i);
            let n_in = self.incoming(id).len();
            let n_out = self.outgoing(id).len();
            match n.behavior {
                NodeBehavior::Multiply(c) => {
                    if !c.is_finite() || c < 0.0 {
                        return Err(FlowNetError::BadAttribute(format!(
                            "multiply node {} factor {c}",
                            n.label
                        )));
                    }
                    if n_in != 1 || n_out != 1 {
                        return Err(FlowNetError::Structure(format!(
                            "multiply node {} must have exactly one incoming and one outgoing edge (has {n_in}/{n_out})",
                            n.label
                        )));
                    }
                }
                NodeBehavior::Source(_, input) => {
                    if n_in != 0 {
                        return Err(FlowNetError::Structure(format!(
                            "source node {} has incoming edges",
                            n.label
                        )));
                    }
                    match input {
                        SourceInput::Fixed(v) => {
                            if !v.is_finite() || v < 0.0 {
                                return Err(FlowNetError::BadAttribute(format!(
                                    "source {} input {v}",
                                    n.label
                                )));
                            }
                        }
                        SourceInput::Var { lo, hi } => {
                            if lo.is_nan() || hi.is_nan() || lo > hi || lo < 0.0 {
                                return Err(FlowNetError::BadAttribute(format!(
                                    "source {} var bounds [{lo}, {hi}]",
                                    n.label
                                )));
                            }
                        }
                    }
                }
                NodeBehavior::Sink { weight } => {
                    if n_out != 0 {
                        return Err(FlowNetError::Structure(format!(
                            "sink node {} has outgoing edges",
                            n.label
                        )));
                    }
                    if !weight.is_finite() {
                        return Err(FlowNetError::BadAttribute(format!(
                            "sink {} weight {weight}",
                            n.label
                        )));
                    }
                }
                NodeBehavior::Pick => {
                    if n_out == 0 {
                        return Err(FlowNetError::Structure(format!(
                            "pick node {} has no outgoing edges",
                            n.label
                        )));
                    }
                }
                NodeBehavior::Split | NodeBehavior::AllEqual | NodeBehavior::Copy => {}
            }
        }
        Ok(())
    }

    /// Total objective-weighted flow into sinks for a given edge-flow
    /// assignment (the DSL's notion of "performance", Fig. 6f).
    pub fn objective_of(&self, flows: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, e) in self.edges.iter().enumerate() {
            if let NodeBehavior::Sink { weight } = self.nodes[e.to.0].behavior {
                acc += weight * flows.get(i).copied().unwrap_or(0.0);
            }
        }
        acc
    }

    /// Check an externally produced edge-flow assignment against every node
    /// behavior; returns the first violation description.
    ///
    /// Used to validate that heuristic simulations mapped onto the DSL
    /// (for the explainer) actually respect the declared structure.
    pub fn check_assignment(&self, flows: &[f64], tol: f64) -> Option<String> {
        if flows.len() != self.edges.len() {
            return Some(format!(
                "assignment has {} flows for {} edges",
                flows.len(),
                self.edges.len()
            ));
        }
        for (i, e) in self.edges.iter().enumerate() {
            let f = flows[i];
            if f < -tol {
                return Some(format!("edge {} negative flow {f}", e.label));
            }
            if let Some(c) = e.capacity {
                if f > c + tol {
                    return Some(format!("edge {} flow {f} over capacity {c}", e.label));
                }
            }
            if let Some(fx) = e.fixed {
                if (f - fx).abs() > tol {
                    return Some(format!("edge {} flow {f} != fixed {fx}", e.label));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId(i);
            let sum_in: f64 = self.incoming(id).iter().map(|e| flows[e.0]).sum();
            let sum_out: f64 = self.outgoing(id).iter().map(|e| flows[e.0]).sum();
            match n.behavior {
                NodeBehavior::Split => {
                    if (sum_in - sum_out).abs() > tol {
                        return Some(format!(
                            "split node {} not conserving: in {sum_in} out {sum_out}",
                            n.label
                        ));
                    }
                }
                NodeBehavior::Pick => {
                    if (sum_in - sum_out).abs() > tol {
                        return Some(format!("pick node {} not conserving", n.label));
                    }
                    let carrying = self
                        .outgoing(id)
                        .iter()
                        .filter(|e| flows[e.0] > tol)
                        .count();
                    if carrying > 1 {
                        return Some(format!(
                            "pick node {} uses {carrying} outgoing edges",
                            n.label
                        ));
                    }
                }
                NodeBehavior::Multiply(c) => {
                    let fin = self.incoming(id).first().map(|e| flows[e.0]).unwrap_or(0.0);
                    let fout = self.outgoing(id).first().map(|e| flows[e.0]).unwrap_or(0.0);
                    if (fout - c * fin).abs() > tol {
                        return Some(format!(
                            "multiply node {}: out {fout} != {c} * in {fin}",
                            n.label
                        ));
                    }
                }
                NodeBehavior::AllEqual => {
                    let all: Vec<f64> = self
                        .incoming(id)
                        .iter()
                        .chain(self.outgoing(id).iter())
                        .map(|e| flows[e.0])
                        .collect();
                    if let Some(first) = all.first() {
                        if all.iter().any(|f| (f - first).abs() > tol) {
                            return Some(format!("all-equal node {} unequal flows", n.label));
                        }
                    }
                }
                NodeBehavior::Copy => {
                    for e in self.outgoing(id) {
                        if (flows[e.0] - sum_in).abs() > tol {
                            return Some(format!(
                                "copy node {}: outgoing {} != total in {sum_in}",
                                n.label, flows[e.0]
                            ));
                        }
                    }
                }
                NodeBehavior::Source(kind, input) => {
                    if let SourceInput::Fixed(v) = input {
                        if (sum_out - v).abs() > tol {
                            return Some(format!(
                                "source {} emits {sum_out} != fixed {v}",
                                n.label
                            ));
                        }
                    }
                    if kind == SourceKind::Pick {
                        let carrying = self
                            .outgoing(id)
                            .iter()
                            .filter(|e| flows[e.0] > tol)
                            .count();
                        if carrying > 1 {
                            return Some(format!(
                                "pick source {} uses {carrying} outgoing edges",
                                n.label
                            ));
                        }
                    }
                }
                NodeBehavior::Sink { .. } => {}
            }
        }
        None
    }

    /// Rebuild the label indices (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.node_index.clear();
        self.edge_index.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            self.node_index.entry(n.label.clone()).or_insert(NodeId(i));
        }
        for (i, e) in self.edges.iter().enumerate() {
            self.edge_index.entry(e.label.clone()).or_insert(EdgeId(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (FlowNet, NodeId, NodeId) {
        let mut net = FlowNet::new("tiny");
        let s = net.source("s", "SRC", SourceKind::Split, SourceInput::Fixed(2.0));
        let t = net.sink("t", "SINK", 1.0);
        (net, s, t)
    }

    #[test]
    fn build_and_lookup() {
        let (mut net, s, t) = tiny();
        let e = net.edge(s, t, "s->t").capacity(5.0).id();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.node_by_label("s"), Some(s));
        assert_eq!(net.edge_by_label("s->t"), Some(e));
        assert_eq!(net.edge_data(e).capacity, Some(5.0));
        net.validate().unwrap();
    }

    #[test]
    fn incoming_outgoing() {
        let (mut net, s, t) = tiny();
        let mid = net.split("m", "MID");
        net.edge(s, mid, "a");
        net.edge(mid, t, "b");
        assert_eq!(net.outgoing(s).len(), 1);
        assert_eq!(net.incoming(mid).len(), 1);
        assert_eq!(net.outgoing(mid).len(), 1);
        assert_eq!(net.incoming(t).len(), 1);
    }

    #[test]
    fn multiply_arity_enforced() {
        let (mut net, s, t) = tiny();
        let m = net.multiply("m", "MID", 2.0);
        net.edge(s, m, "in");
        net.edge(m, t, "out1");
        net.validate().unwrap();
        net.edge(m, t, "out2");
        assert!(matches!(net.validate(), Err(FlowNetError::Structure(_))));
    }

    #[test]
    fn source_with_incoming_rejected() {
        let (mut net, s, t) = tiny();
        net.edge(s, t, "ok");
        net.edge(t, s, "bad"); // sink with outgoing AND source with incoming
        assert!(net.validate().is_err());
    }

    #[test]
    fn negative_capacity_rejected() {
        let (mut net, s, t) = tiny();
        net.edge(s, t, "e").capacity(-1.0);
        assert!(matches!(net.validate(), Err(FlowNetError::BadAttribute(_))));
    }

    #[test]
    fn fixed_over_capacity_rejected() {
        let (mut net, s, t) = tiny();
        net.edge(s, t, "e").capacity(1.0).fixed(2.0);
        assert!(matches!(net.validate(), Err(FlowNetError::BadAttribute(_))));
    }

    #[test]
    fn bad_source_bounds_rejected() {
        let mut net = FlowNet::new("x");
        net.source(
            "s",
            "SRC",
            SourceKind::Split,
            SourceInput::Var { lo: 3.0, hi: 1.0 },
        );
        assert!(matches!(net.validate(), Err(FlowNetError::BadAttribute(_))));
    }

    #[test]
    fn assignment_checker_accepts_valid() {
        let (mut net, s, t) = tiny();
        let mid = net.split("m", "MID");
        net.edge(s, mid, "a");
        net.edge(mid, t, "b");
        assert_eq!(net.check_assignment(&[2.0, 2.0], 1e-9), None);
    }

    #[test]
    fn assignment_checker_catches_conservation_violation() {
        let (mut net, s, t) = tiny();
        let mid = net.split("m", "MID");
        net.edge(s, mid, "a");
        net.edge(mid, t, "b");
        let err = net.check_assignment(&[2.0, 1.0], 1e-9).unwrap();
        assert!(err.contains("split"), "{err}");
    }

    #[test]
    fn assignment_checker_catches_pick_violation() {
        let mut net = FlowNet::new("p");
        let s = net.source("ball", "BALLS", SourceKind::Pick, SourceInput::Fixed(1.0));
        let t1 = net.sink("bin1", "BINS", 1.0);
        let t2 = net.sink("bin2", "BINS", 1.0);
        net.edge(s, t1, "a");
        net.edge(s, t2, "b");
        // Splitting across both bins violates pick.
        let err = net.check_assignment(&[0.5, 0.5], 1e-9).unwrap();
        assert!(err.contains("pick"), "{err}");
        // All on one edge is fine.
        assert_eq!(net.check_assignment(&[1.0, 0.0], 1e-9), None);
    }

    #[test]
    fn objective_weights_sinks() {
        let mut net = FlowNet::new("o");
        let s = net.source("s", "SRC", SourceKind::Split, SourceInput::Fixed(4.0));
        let met = net.sink("met", "SINKS", 1.0);
        let unmet = net.sink("unmet", "SINKS", 0.0);
        net.edge(s, met, "m");
        net.edge(s, unmet, "u");
        assert!((net.objective_of(&[3.0, 1.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn copy_check() {
        let mut net = FlowNet::new("c");
        let s = net.source("s", "SRC", SourceKind::Split, SourceInput::Fixed(2.0));
        let c = net.copy("c", "MID");
        let t1 = net.sink("t1", "SINKS", 1.0);
        let t2 = net.sink("t2", "SINKS", 0.0);
        net.edge(s, c, "in");
        net.edge(c, t1, "o1");
        net.edge(c, t2, "o2");
        assert_eq!(net.check_assignment(&[2.0, 2.0, 2.0], 1e-9), None);
        assert!(net.check_assignment(&[2.0, 2.0, 1.0], 1e-9).is_some());
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let (mut net, s, t) = tiny();
        net.edge(s, t, "e1");
        let json = serde_json::to_string(&net).unwrap();
        let mut back: FlowNet = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.node_by_label("s"), Some(s));
        assert_eq!(back.edge_by_label("e1"), Some(EdgeId(0)));
    }
}
