//! Compiler from the flow-network DSL to an LP/MILP [`Model`].
//!
//! Two modes, mirroring §5.1 of the paper:
//!
//! * **raw** — one variable per edge, one constraint block per node
//!   behavior (what a hand-written MetaOpt model looks like);
//! * **eliminated** (default) — a redundancy-elimination pass first merges
//!   edge variables that the structure forces to be proportional
//!   (multiply chains, all-equal stars, pass-through splits, single-input
//!   copies) via a scaled union-find, then compiles only class
//!   representatives. This is the mechanism behind the paper's "our DSL
//!   allows us to find redundant constraints and variables … the compiled
//!   DSL analyzes our DP example 4.3× faster", and unlike a solver
//!   pre-solve it preserves the mapping back to DSL edges ("Gurobi's
//!   pre-solve … changes the variable names").

use crate::error::FlowNetError;
use crate::graph::{EdgeId, FlowNet, NodeBehavior, NodeId, SourceInput, SourceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xplain_lp::{Cmp, LinExpr, Model, Sense, Solution, VarId, VarType};

/// Compiler options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Run the redundancy-elimination pass.
    pub eliminate: bool,
    /// Big-M fallback for pick-node indicator constraints when no tighter
    /// bound (edge capacity / source upper bound) is available.
    pub big_m: f64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            eliminate: true,
            big_m: 1e4,
        }
    }
}

/// Size accounting for the raw vs. eliminated encodings (E6).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompileStats {
    pub raw_vars: usize,
    pub raw_constraints: usize,
    pub vars: usize,
    pub constraints: usize,
    /// Edge variables merged into another class by elimination.
    pub merged_edges: usize,
    /// Edge variables resolved to constants by elimination.
    pub fixed_edges: usize,
}

/// How an edge's flow is represented in the compiled model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EdgeRef {
    /// `flow = scale * var`
    Var(VarId, f64),
    /// `flow = value` (resolved at compile time)
    Fixed(f64),
}

/// The result of compilation: an optimization model plus the bookkeeping to
/// map solutions back onto DSL edges.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    pub model: Model,
    edge_refs: Vec<EdgeRef>,
    /// Source nodes declared as `SourceInput::Var` → their model variable
    /// (MetaOpt's OuterVars).
    pub source_vars: BTreeMap<NodeId, VarId>,
    /// Pick-choice binaries per (node, outgoing edge).
    pub pick_binaries: BTreeMap<EdgeId, VarId>,
    pub stats: CompileStats,
    num_edges: usize,
}

/// A solved flow network: objective plus per-edge flows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSolution {
    pub objective: f64,
    /// One flow value per DSL edge, in edge-id order.
    pub flows: Vec<f64>,
}

impl CompiledModel {
    /// Solve the compiled model and map the solution back to edge flows.
    pub fn solve(&self) -> Result<FlowSolution, FlowNetError> {
        let sol = self.model.solve()?;
        Ok(self.flow_solution(&sol))
    }

    /// Translate an LP solution into per-edge flows.
    pub fn flow_solution(&self, sol: &Solution) -> FlowSolution {
        FlowSolution {
            objective: sol.objective,
            flows: self.edge_flows(sol),
        }
    }

    /// Per-edge flows for an arbitrary solution of `self.model`.
    pub fn edge_flows(&self, sol: &Solution) -> Vec<f64> {
        self.edge_refs
            .iter()
            .map(|r| match *r {
                EdgeRef::Var(v, scale) => scale * sol.value(v),
                EdgeRef::Fixed(c) => c,
            })
            .collect()
    }

    /// The representation of one edge.
    pub fn edge_ref(&self, e: EdgeId) -> EdgeRef {
        self.edge_refs[e.0]
    }

    /// Number of DSL edges this model was compiled from.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Clone the model with each `SourceInput::Var` source pinned to the
    /// given value — evaluating the network at a concrete input point.
    ///
    /// Unknown node ids are reported as errors; sources omitted from
    /// `values` stay free.
    pub fn with_source_values(
        &self,
        values: &BTreeMap<NodeId, f64>,
    ) -> Result<Model, FlowNetError> {
        let mut model = self.model.clone();
        for (node, value) in values {
            let var = self.source_vars.get(node).ok_or_else(|| {
                FlowNetError::UnknownId(format!("{node} is not a variable source"))
            })?;
            model.fix(format!("pin_{node}"), *var, *value);
        }
        Ok(model)
    }
}

/// Scaled union-find: each edge's flow is `scale * flow(root)`.
struct ScaledUf {
    parent: Vec<usize>,
    /// flow(i) = scale[i] * flow(find(i))
    scale: Vec<f64>,
}

impl ScaledUf {
    fn new(n: usize) -> Self {
        ScaledUf {
            parent: (0..n).collect(),
            scale: vec![1.0; n],
        }
    }

    /// Returns `(root, scale)` such that `flow(i) = scale * flow(root)`.
    ///
    /// No path compression: the trees stay shallow (each union adds one
    /// link) and skipping compression keeps the multiplicative scales
    /// trivially correct.
    fn find(&self, i: usize) -> (usize, f64) {
        let mut cur = i;
        let mut scale = 1.0;
        while self.parent[cur] != cur {
            scale *= self.scale[cur];
            cur = self.parent[cur];
        }
        (cur, scale)
    }

    /// Merge with relation `flow(a) = k * flow(b)`.
    fn union(&mut self, a: usize, b: usize, k: f64) {
        let (ra, sa) = self.find(a);
        let (rb, sb) = self.find(b);
        if ra == rb {
            return;
        }
        // flow(a) = sa * flow(ra); flow(b) = sb * flow(rb)
        // flow(a) = k * flow(b)  =>  flow(ra) = (k * sb / sa) * flow(rb)
        self.parent[ra] = rb;
        self.scale[ra] = k * sb / sa;
    }
}

impl FlowNet {
    /// Compile this network into an optimization model (maximizing the
    /// weighted sink inflow).
    pub fn compile(&self, options: &CompileOptions) -> Result<CompiledModel, FlowNetError> {
        self.validate()?;

        let n_edges = self.num_edges();
        let mut uf = ScaledUf::new(n_edges);
        // Edges pinned to a constant (by Multiply(0) or `fixed` attrs).
        let mut forced_zero = vec![false; n_edges];
        // Which nodes the elimination pass fully handled.
        let mut node_handled = vec![false; self.num_nodes()];

        if options.eliminate {
            for (i, node) in self.nodes().iter().enumerate() {
                let id = NodeId(i);
                let inc = self.incoming(id);
                let out = self.outgoing(id);
                match node.behavior {
                    NodeBehavior::Multiply(c) => {
                        // Arity validated: exactly one in, one out.
                        if c <= 1e-12 {
                            forced_zero[out[0].0] = true;
                        } else {
                            uf.union(out[0].0, inc[0].0, c);
                        }
                        node_handled[i] = true;
                    }
                    NodeBehavior::AllEqual => {
                        let all: Vec<EdgeId> = inc.iter().chain(out.iter()).copied().collect();
                        if let Some((&first, rest)) = all.split_first() {
                            for &e in rest {
                                uf.union(e.0, first.0, 1.0);
                            }
                        }
                        node_handled[i] = true;
                    }
                    NodeBehavior::Split if inc.len() == 1 && out.len() == 1 => {
                        uf.union(out[0].0, inc[0].0, 1.0);
                        node_handled[i] = true;
                    }
                    NodeBehavior::Copy if inc.len() == 1 => {
                        for &e in &out {
                            uf.union(e.0, inc[0].0, 1.0);
                        }
                        node_handled[i] = true;
                    }
                    _ => {}
                }
            }
        }

        // Resolve classes: per root, tightest bounds and any fixed value.
        struct ClassInfo {
            hi: f64,
            fixed: Option<f64>,
            label: String,
        }
        let mut classes: BTreeMap<usize, ClassInfo> = BTreeMap::new();
        let mut edge_class: Vec<(usize, f64)> = Vec::with_capacity(n_edges);
        for e in 0..n_edges {
            let (root, scale) = uf.find(e);
            edge_class.push((root, scale));
            let data = self.edge_data(EdgeId(e));
            let info = classes.entry(root).or_insert_with(|| ClassInfo {
                hi: f64::INFINITY,
                fixed: None,
                label: self.edge_data(EdgeId(root)).label.clone(),
            });
            // flow(e) = scale * flow(root); scale > 0 by construction.
            if let Some(cap) = data.capacity {
                info.hi = info.hi.min(cap / scale);
            }
            let fix = if forced_zero[e] {
                Some(0.0)
            } else {
                data.fixed
            };
            if let Some(v) = fix {
                let root_val = v / scale;
                match info.fixed {
                    None => info.fixed = Some(root_val),
                    Some(prev) if (prev - root_val).abs() > 1e-9 => {
                        return Err(FlowNetError::Contradiction(format!(
                            "edge {} fixed to {root_val} but its class is already fixed to {prev}",
                            data.label
                        )));
                    }
                    Some(_) => {}
                }
            }
        }
        for info in classes.values() {
            if let Some(v) = info.fixed {
                if v > info.hi + 1e-9 {
                    return Err(FlowNetError::Contradiction(format!(
                        "class {} fixed to {v} above its capacity {}",
                        info.label, info.hi
                    )));
                }
                if v < -1e-9 {
                    return Err(FlowNetError::Contradiction(format!(
                        "class {} fixed to negative value {v}",
                        info.label
                    )));
                }
            }
        }

        // Build the model.
        let mut model = Model::new(Sense::Maximize);
        let mut class_var: BTreeMap<usize, EdgeRef> = BTreeMap::new();
        for (&root, info) in &classes {
            let r = match info.fixed {
                Some(v) => EdgeRef::Fixed(v),
                None => {
                    let v = model.add_var(
                        format!("f[{}]", info.label),
                        VarType::Continuous,
                        0.0,
                        info.hi,
                    );
                    EdgeRef::Var(v, 1.0)
                }
            };
            class_var.insert(root, r);
        }
        let edge_refs: Vec<EdgeRef> = (0..n_edges)
            .map(|e| {
                let (root, scale) = edge_class[e];
                match class_var[&root] {
                    EdgeRef::Var(v, s) => EdgeRef::Var(v, s * scale),
                    EdgeRef::Fixed(c) => EdgeRef::Fixed(c * scale),
                }
            })
            .collect();

        let edge_expr = |e: EdgeId| -> LinExpr {
            match edge_refs[e.0] {
                EdgeRef::Var(v, s) => LinExpr::term(v, s),
                EdgeRef::Fixed(c) => LinExpr::constant(c),
            }
        };
        let sum_exprs = |ids: &[EdgeId]| -> LinExpr {
            let mut acc = LinExpr::new();
            for &e in ids {
                acc += edge_expr(e);
            }
            acc
        };

        let mut source_vars = BTreeMap::new();
        let mut pick_binaries = BTreeMap::new();
        let mut objective = LinExpr::new();
        let mut raw_constraints = 0usize;

        // Emit a constraint unless it is a tautology after substitution.
        let emit = |model: &mut Model, name: String, mut expr: LinExpr, cmp: Cmp, rhs: f64| {
            expr.compact(1e-12);
            let c = expr.constant_part();
            let expr_novars = expr.is_empty();
            if expr_novars {
                let holds = match cmp {
                    Cmp::Le => c <= rhs + 1e-9,
                    Cmp::Ge => c >= rhs - 1e-9,
                    Cmp::Eq => (c - rhs).abs() <= 1e-9,
                };
                if holds {
                    return; // tautology — eliminated
                }
            }
            model.add_constr(name, expr, cmp, rhs);
        };

        // Helper: big-M bound for an edge used in a pick indicator.
        let m_for = |e: EdgeId, node_hint: Option<f64>| -> f64 {
            let cap = self.edge_data(e).capacity;
            cap.or(node_hint)
                .unwrap_or(options.big_m)
                .min(options.big_m)
        };

        for (i, node) in self.nodes().iter().enumerate() {
            let id = NodeId(i);
            let inc = self.incoming(id);
            let out = self.outgoing(id);
            match node.behavior {
                NodeBehavior::Split => {
                    raw_constraints += 1;
                    if !node_handled[i] {
                        let expr = sum_exprs(&inc) - sum_exprs(&out);
                        emit(
                            &mut model,
                            format!("split[{}]", node.label),
                            expr,
                            Cmp::Eq,
                            0.0,
                        );
                    }
                }
                NodeBehavior::Pick => {
                    raw_constraints += 2 + out.len();
                    let expr = sum_exprs(&inc) - sum_exprs(&out);
                    emit(
                        &mut model,
                        format!("pick_cons[{}]", node.label),
                        expr,
                        Cmp::Eq,
                        0.0,
                    );
                    add_pick_choice(
                        &mut model,
                        &mut pick_binaries,
                        &node.label,
                        &out,
                        &edge_expr,
                        |e| m_for(e, None),
                    );
                }
                NodeBehavior::Multiply(c) => {
                    raw_constraints += 1;
                    if !node_handled[i] {
                        let expr = edge_expr(out[0]) - edge_expr(inc[0]) * c;
                        emit(
                            &mut model,
                            format!("mult[{}]", node.label),
                            expr,
                            Cmp::Eq,
                            0.0,
                        );
                    }
                }
                NodeBehavior::AllEqual => {
                    let all: Vec<EdgeId> = inc.iter().chain(out.iter()).copied().collect();
                    raw_constraints += all.len().saturating_sub(1);
                    if !node_handled[i] {
                        if let Some((&first, rest)) = all.split_first() {
                            for &e in rest {
                                let expr = edge_expr(e) - edge_expr(first);
                                emit(
                                    &mut model,
                                    format!("alleq[{}/{}]", node.label, self.edge_data(e).label),
                                    expr,
                                    Cmp::Eq,
                                    0.0,
                                );
                            }
                        }
                    }
                }
                NodeBehavior::Copy => {
                    raw_constraints += out.len();
                    if !node_handled[i] {
                        let total_in = sum_exprs(&inc);
                        for &e in &out {
                            let expr = edge_expr(e) - total_in.clone();
                            emit(
                                &mut model,
                                format!("copy[{}/{}]", node.label, self.edge_data(e).label),
                                expr,
                                Cmp::Eq,
                                0.0,
                            );
                        }
                    }
                }
                NodeBehavior::Source(kind, input) => {
                    raw_constraints += 1;
                    let total_out = sum_exprs(&out);
                    let hint = match input {
                        SourceInput::Fixed(v) => {
                            emit(
                                &mut model,
                                format!("src[{}]", node.label),
                                total_out,
                                Cmp::Eq,
                                v,
                            );
                            Some(v)
                        }
                        SourceInput::Var { lo, hi } => {
                            let sv = model.add_var(
                                format!("src[{}]", node.label),
                                VarType::Continuous,
                                lo,
                                hi,
                            );
                            source_vars.insert(id, sv);
                            let expr = total_out - sv;
                            emit(
                                &mut model,
                                format!("src_bal[{}]", node.label),
                                expr,
                                Cmp::Eq,
                                0.0,
                            );
                            if hi.is_finite() {
                                Some(hi)
                            } else {
                                None
                            }
                        }
                    };
                    if kind == SourceKind::Pick {
                        raw_constraints += 1 + out.len();
                        add_pick_choice(
                            &mut model,
                            &mut pick_binaries,
                            &node.label,
                            &out,
                            &edge_expr,
                            |e| m_for(e, hint),
                        );
                    }
                }
                NodeBehavior::Sink { weight } => {
                    for &e in &inc {
                        objective += edge_expr(e) * weight;
                    }
                }
            }
        }

        model.set_objective(objective);

        let raw_vars = n_edges + source_vars.len() + pick_binaries.len();
        let stats = CompileStats {
            raw_vars,
            raw_constraints,
            vars: model.num_vars(),
            constraints: model.num_constraints(),
            merged_edges: n_edges - classes.len(),
            fixed_edges: classes.values().filter(|c| c.fixed.is_some()).count(),
        };

        Ok(CompiledModel {
            model,
            edge_refs,
            source_vars,
            pick_binaries,
            stats,
            num_edges: n_edges,
        })
    }
}

/// Shared pick encoding: binaries `y_e`, `Σ y = 1`, `f_e <= M_e y_e`.
fn add_pick_choice(
    model: &mut Model,
    pick_binaries: &mut BTreeMap<EdgeId, VarId>,
    label: &str,
    out: &[EdgeId],
    edge_expr: &impl Fn(EdgeId) -> LinExpr,
    m_for: impl Fn(EdgeId) -> f64,
) {
    let mut choice_sum = LinExpr::new();
    for &e in out {
        let y = model.add_binary(format!("pick[{label}->e{}]", e.0));
        pick_binaries.insert(e, y);
        choice_sum.add_term(y, 1.0);
        let expr = edge_expr(e) - LinExpr::term(y, m_for(e));
        model.add_constr(format!("pick_ind[{label}/e{}]", e.0), expr, Cmp::Le, 0.0);
    }
    model.add_constr(format!("pick_one[{label}]"), choice_sum, Cmp::Eq, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{FlowNet, SourceInput, SourceKind};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Source --cap 3--> sink, variable demand up to 5: routes 3.
    #[test]
    fn single_edge_capacity() {
        let mut net = FlowNet::new("t");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 5.0 },
        );
        let t = net.sink("t", "T", 1.0);
        net.edge(s, t, "e").capacity(3.0);
        let c = net.compile(&CompileOptions::default()).unwrap();
        let sol = c.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.flows[0], 3.0);
    }

    /// Fixed source must be fully absorbed; unmet sink takes the overflow.
    #[test]
    fn fixed_source_with_unmet_sink() {
        let mut net = FlowNet::new("t");
        let s = net.source("s", "S", SourceKind::Split, SourceInput::Fixed(5.0));
        let met = net.sink("met", "T", 1.0);
        let unmet = net.sink("unmet", "T", 0.0);
        net.edge(s, met, "m").capacity(3.0);
        net.edge(s, unmet, "u");
        let c = net.compile(&CompileOptions::default()).unwrap();
        let sol = c.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.flows[0], 3.0);
        assert_close(sol.flows[1], 2.0);
    }

    /// Fixed source with insufficient capacity is infeasible.
    #[test]
    fn fixed_source_infeasible_without_escape() {
        let mut net = FlowNet::new("t");
        let s = net.source("s", "S", SourceKind::Split, SourceInput::Fixed(5.0));
        let t = net.sink("t", "T", 1.0);
        net.edge(s, t, "e").capacity(3.0);
        let c = net.compile(&CompileOptions::default()).unwrap();
        assert!(matches!(c.solve(), Err(FlowNetError::Solver(_))));
    }

    /// A chain of pass-through splits collapses to one variable.
    #[test]
    fn elimination_merges_chains() {
        let mut net = FlowNet::new("chain");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let mut prev = s;
        for i in 0..5 {
            let mid = net.split(format!("m{i}"), "MID");
            net.edge(prev, mid, format!("e{i}"));
            prev = mid;
        }
        let t = net.sink("t", "T", 1.0);
        net.edge(prev, t, "last").capacity(4.0);

        let raw = net
            .compile(&CompileOptions {
                eliminate: false,
                ..Default::default()
            })
            .unwrap();
        let opt = net.compile(&CompileOptions::default()).unwrap();
        assert!(opt.model.num_vars() < raw.model.num_vars());
        assert!(opt.model.num_constraints() < raw.model.num_constraints());
        // Same optimum either way.
        assert_close(raw.solve().unwrap().objective, 4.0);
        assert_close(opt.solve().unwrap().objective, 4.0);
        // Capacity on the last edge constrains the whole merged chain.
        let sol = opt.solve().unwrap();
        for f in &sol.flows {
            assert_close(*f, 4.0);
        }
    }

    /// Multiply chains carry scale through elimination.
    #[test]
    fn multiply_scales_flows() {
        let mut net = FlowNet::new("mult");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let m = net.multiply("x2", "MID", 2.0);
        let t = net.sink("t", "T", 1.0);
        net.edge(s, m, "in");
        net.edge(m, t, "out").capacity(6.0);
        for eliminate in [false, true] {
            let c = net
                .compile(&CompileOptions {
                    eliminate,
                    ..Default::default()
                })
                .unwrap();
            let sol = c.solve().unwrap();
            // out = 2*in <= 6 -> in = 3, out = 6, objective 6.
            assert_close(sol.objective, 6.0);
            assert_close(sol.flows[0], 3.0);
            assert_close(sol.flows[1], 6.0);
        }
    }

    /// Multiply by zero pins downstream flow to zero.
    #[test]
    fn multiply_zero_forces_zero() {
        let mut net = FlowNet::new("m0");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let m = net.multiply("x0", "MID", 0.0);
        let t = net.sink("t", "T", 1.0);
        net.edge(s, m, "in");
        net.edge(m, t, "out");
        let c = net.compile(&CompileOptions::default()).unwrap();
        let sol = c.solve().unwrap();
        assert_close(sol.flows[1], 0.0);
    }

    /// All-equal node forces equal flow on every incident edge.
    #[test]
    fn all_equal_constrains() {
        let mut net = FlowNet::new("ae");
        let s1 = net.source(
            "s1",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let s2 = net.source(
            "s2",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let ae = net.all_equal("ae", "MID");
        let t = net.sink("t", "T", 1.0);
        net.edge(s1, ae, "a").capacity(2.0);
        net.edge(s2, ae, "b");
        net.edge(ae, t, "c");
        for eliminate in [false, true] {
            let c = net
                .compile(&CompileOptions {
                    eliminate,
                    ..Default::default()
                })
                .unwrap();
            let sol = c.solve().unwrap();
            // All three edges equal, capped at 2 -> objective 2.
            assert_close(sol.objective, 2.0);
            assert_close(sol.flows[0], 2.0);
            assert_close(sol.flows[1], 2.0);
            assert_close(sol.flows[2], 2.0);
        }
    }

    /// Copy node duplicates flow to each outgoing edge.
    #[test]
    fn copy_duplicates() {
        let mut net = FlowNet::new("cp");
        let s = net.source("s", "S", SourceKind::Split, SourceInput::Fixed(3.0));
        let cp = net.copy("cp", "MID");
        let t1 = net.sink("t1", "T", 1.0);
        let t2 = net.sink("t2", "T", 1.0);
        net.edge(s, cp, "in");
        net.edge(cp, t1, "o1");
        net.edge(cp, t2, "o2");
        for eliminate in [false, true] {
            let c = net
                .compile(&CompileOptions {
                    eliminate,
                    ..Default::default()
                })
                .unwrap();
            let sol = c.solve().unwrap();
            // Each copy carries 3; objective counts both sinks.
            assert_close(sol.objective, 6.0);
            assert_close(sol.flows[1], 3.0);
            assert_close(sol.flows[2], 3.0);
        }
    }

    /// Pick source puts the whole input on one outgoing edge (MILP).
    #[test]
    fn pick_source_chooses_one() {
        let mut net = FlowNet::new("pick");
        let s = net.source("ball", "BALLS", SourceKind::Pick, SourceInput::Fixed(0.6));
        let bin1 = net.split("bin1", "BINS");
        let bin2 = net.split("bin2", "BINS");
        let t = net.sink("occ", "T", 1.0);
        net.edge(s, bin1, "b1").capacity(1.0);
        net.edge(s, bin2, "b2").capacity(1.0);
        net.edge(bin1, t, "o1").capacity(1.0);
        net.edge(bin2, t, "o2").capacity(1.0);
        let c = net.compile(&CompileOptions::default()).unwrap();
        let sol = c.solve().unwrap();
        assert_close(sol.objective, 0.6);
        let used = sol.flows[..2].iter().filter(|f| **f > 1e-6).count();
        assert_eq!(used, 1, "pick must use exactly one edge: {:?}", sol.flows);
    }

    /// Contradictory fixed flows are caught at compile time.
    #[test]
    fn contradiction_detected() {
        let mut net = FlowNet::new("contra");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let ae = net.all_equal("ae", "MID");
        let t = net.sink("t", "T", 1.0);
        net.edge(s, ae, "a").fixed(1.0);
        net.edge(ae, t, "b").fixed(2.0);
        assert!(matches!(
            net.compile(&CompileOptions::default()),
            Err(FlowNetError::Contradiction(_))
        ));
    }

    /// Fixed edges become compile-time constants under elimination.
    #[test]
    fn fixed_edge_is_constant() {
        let mut net = FlowNet::new("fx");
        let s = net.source("s", "S", SourceKind::Split, SourceInput::Fixed(2.0));
        let t = net.sink("t", "T", 1.0);
        let e = net.edge(s, t, "e").fixed(2.0).id();
        let c = net.compile(&CompileOptions::default()).unwrap();
        assert!(matches!(c.edge_ref(e), EdgeRef::Fixed(v) if (v - 2.0).abs() < 1e-12));
        let sol = c.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    /// Source variables are exposed and pinnable.
    #[test]
    fn with_source_values_pins_input() {
        let mut net = FlowNet::new("pin");
        let s = net.source(
            "d",
            "D",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let t = net.sink("t", "T", 1.0);
        net.edge(s, t, "e");
        let c = net.compile(&CompileOptions::default()).unwrap();
        assert_eq!(c.source_vars.len(), 1);
        let mut pins = BTreeMap::new();
        pins.insert(s, 4.5);
        let pinned = c.with_source_values(&pins).unwrap();
        let sol = pinned.solve().unwrap();
        assert_close(sol.objective, 4.5);
    }

    /// Stats reflect the elimination.
    #[test]
    fn stats_counts() {
        let mut net = FlowNet::new("stats");
        let s = net.source(
            "s",
            "S",
            SourceKind::Split,
            SourceInput::Var { lo: 0.0, hi: 10.0 },
        );
        let a = net.split("a", "MID");
        let b = net.split("b", "MID");
        let t = net.sink("t", "T", 1.0);
        net.edge(s, a, "e1");
        net.edge(a, b, "e2");
        net.edge(b, t, "e3").capacity(1.0);
        let c = net.compile(&CompileOptions::default()).unwrap();
        assert!(c.stats.vars < c.stats.raw_vars, "{:?}", c.stats);
        assert!(c.stats.merged_edges >= 2, "{:?}", c.stats);
    }
}
