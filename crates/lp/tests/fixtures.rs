//! Classic LP fixtures with hand-verified optima, pinned exactly for both
//! solver engines.
//!
//! * **Klee–Minty cubes** (n = 3..8) — the worst case for Dantzig pricing:
//!   `max Σ 2^{n-j} x_j  s.t.  2 Σ_{j<i} 2^{i-j} x_j + x_i <= 5^i`, whose
//!   optimum is exactly `5^n` at `x = (0, …, 0, 5^n)`. Exercises long
//!   pivot chains and exponent-spread coefficients.
//! * **Beale's cycling example** — the textbook instance on which naive
//!   Dantzig pricing cycles forever; optimal value −1/20 at
//!   `x = (1/25, 0, 1, 0)`. Both engines must terminate (anti-cycling)
//!   and agree.
//! * **Netlib-style miniatures** — a diet LP, a 2×3 transportation LP,
//!   and a product-mix LP, each small enough to verify by hand, pinned to
//!   their exact optima.
//!
//! Each fixture runs through the revised solver (`simplex::solve`), the
//! reference oracle (`simplex::reference::solve`), and a warm re-solve in
//! a `SolverSession` — three engines, one pinned answer.

use xplain_lp::{simplex, Cmp, LinExpr, Model, Sense, SolverSession};

fn assert_pinned(m: &Model, expected: f64, tag: &str) {
    let tol = 1e-6 * (1.0 + expected.abs());
    let revised = simplex::solve(m).unwrap_or_else(|e| panic!("{tag}: revised failed: {e}"));
    assert!(
        (revised.objective - expected).abs() < tol,
        "{tag}: revised gave {}, pinned {expected}",
        revised.objective
    );
    assert!(
        m.check_feasible(&revised.values, 1e-6).is_none(),
        "{tag}: revised solution infeasible: {:?}",
        m.check_feasible(&revised.values, 1e-6)
    );
    let reference =
        simplex::reference::solve(m).unwrap_or_else(|e| panic!("{tag}: reference failed: {e}"));
    assert!(
        (reference.objective - expected).abs() < tol,
        "{tag}: reference gave {}, pinned {expected}",
        reference.objective
    );
    // Warm re-solve from the first solve's basis: same pinned answer.
    let mut session = SolverSession::new();
    session.solve(m).unwrap();
    let warm = session.solve(m).unwrap();
    assert!(
        (warm.objective - expected).abs() < tol,
        "{tag}: warm re-solve gave {}, pinned {expected}",
        warm.objective
    );
    assert_eq!(session.stats.warm_hits, 1, "{tag}: re-solve was not warm");
}

/// The Klee–Minty cube in the `5^i` formulation.
fn klee_minty(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|j| m.add_nonneg(format!("x{j}"))).collect();
    for i in 1..=n {
        let mut e = LinExpr::new();
        for j in 1..i {
            e.add_term(vars[j - 1], 2.0 * 2f64.powi((i - j) as i32));
        }
        e.add_term(vars[i - 1], 1.0);
        m.add_constr(format!("km{i}"), e, Cmp::Le, 5f64.powi(i as i32));
    }
    let mut obj = LinExpr::new();
    for j in 1..=n {
        obj.add_term(vars[j - 1], 2f64.powi((n - j) as i32));
    }
    m.set_objective(obj);
    m
}

#[test]
fn klee_minty_cubes_3_to_8() {
    for n in 3..=8 {
        let m = klee_minty(n);
        assert_pinned(&m, 5f64.powi(n as i32), &format!("klee-minty n={n}"));
        // The optimal vertex is x = (0, ..., 0, 5^n).
        let sol = simplex::solve(&m).unwrap();
        for (j, &v) in sol.values.iter().enumerate().take(n - 1) {
            assert!(v.abs() < 1e-6, "klee-minty n={n}: x{j} = {v}, expected 0");
        }
        assert!(
            (sol.values[n - 1] - 5f64.powi(n as i32)).abs() < 1e-5,
            "klee-minty n={n}: x{} = {}",
            n - 1,
            sol.values[n - 1]
        );
    }
}

#[test]
fn beales_cycling_example() {
    // min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
    //   s.t. 1/4 x1 -  60 x2 - 1/25 x3 + 9 x4 <= 0
    //        1/2 x1 -  90 x2 - 1/50 x3 + 3 x4 <= 0
    //        x3 <= 1,  x >= 0
    // Optimum -1/20 at x = (1/25, 0, 1, 0).
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_nonneg("x1");
    let x2 = m.add_nonneg("x2");
    let x3 = m.add_nonneg("x3");
    let x4 = m.add_nonneg("x4");
    m.add_constr(
        "r1",
        x1 * 0.25 - x2 * 60.0 - x3 * (1.0 / 25.0) + x4 * 9.0,
        Cmp::Le,
        0.0,
    );
    m.add_constr(
        "r2",
        x1 * 0.5 - x2 * 90.0 - x3 * (1.0 / 50.0) + x4 * 3.0,
        Cmp::Le,
        0.0,
    );
    m.add_constr("r3", x3 + 0.0, Cmp::Le, 1.0);
    m.set_objective(x1 * -0.75 + x2 * 150.0 - x3 * (1.0 / 50.0) + x4 * 6.0);
    assert_pinned(&m, -0.05, "beale");
    let sol = simplex::solve(&m).unwrap();
    assert!((sol.value(x1) - 0.04).abs() < 1e-6, "{}", sol.value(x1));
    assert!((sol.value(x3) - 1.0).abs() < 1e-6, "{}", sol.value(x3));
}

#[test]
fn netlib_style_diet() {
    // min 2x + 3y + 4z  s.t.  x + 2y + z >= 4,  2x + y + 3z >= 6.
    // Optimal at the intersection with z = 0: x = 8/3, y = 2/3 -> 22/3.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x");
    let y = m.add_nonneg("y");
    let z = m.add_nonneg("z");
    m.add_constr("protein", x + y * 2.0 + z, Cmp::Ge, 4.0);
    m.add_constr("iron", x * 2.0 + y + z * 3.0, Cmp::Ge, 6.0);
    m.set_objective(x * 2.0 + y * 3.0 + z * 4.0);
    assert_pinned(&m, 22.0 / 3.0, "diet");
}

#[test]
fn netlib_style_transportation_2x3() {
    // Supplies [20, 30], demands [25, 15, 10], costs:
    //   s1: [2, 4, 5]
    //   s2: [3, 1, 7]
    // Hand-verified optimum (dual check: all reduced costs >= 0): 130
    //   s1->d1: 10, s1->d3: 10, s2->d1: 15, s2->d2: 15.
    let costs = [[2.0, 4.0, 5.0], [3.0, 1.0, 7.0]];
    let supply = [20.0, 30.0];
    let demand = [25.0, 15.0, 10.0];
    let mut m = Model::new(Sense::Minimize);
    let mut x = vec![Vec::new(); 2];
    for (i, row) in x.iter_mut().enumerate() {
        for j in 0..3 {
            row.push(m.add_nonneg(format!("x{i}{j}")));
        }
    }
    for i in 0..2 {
        m.add_constr(
            format!("s{i}"),
            LinExpr::sum(x[i].iter().copied()),
            Cmp::Le,
            supply[i],
        );
    }
    for j in 0..3 {
        m.add_constr(
            format!("d{j}"),
            LinExpr::term(x[0][j], 1.0) + x[1][j],
            Cmp::Ge,
            demand[j],
        );
    }
    let mut obj = LinExpr::new();
    for i in 0..2 {
        for j in 0..3 {
            obj.add_term(x[i][j], costs[i][j]);
        }
    }
    m.set_objective(obj);
    assert_pinned(&m, 130.0, "transport-2x3");
}

#[test]
fn netlib_style_product_mix() {
    // max 5a + 4b  s.t.  6a + 4b <= 24,  a + 2b <= 6  ->  (3, 1.5): 21.
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_nonneg("a");
    let b = m.add_nonneg("b");
    m.add_constr("wood", a * 6.0 + b * 4.0, Cmp::Le, 24.0);
    m.add_constr("labor", a + b * 2.0, Cmp::Le, 6.0);
    m.set_objective(a * 5.0 + b * 4.0);
    assert_pinned(&m, 21.0, "product-mix");
    let sol = simplex::solve(&m).unwrap();
    assert!((sol.value(a) - 3.0).abs() < 1e-6);
    assert!((sol.value(b) - 1.5).abs() < 1e-6);
}

#[test]
fn degenerate_tie_fan() {
    // Many constraints active at the optimum (massive degeneracy): both
    // engines must terminate and agree on the pinned optimum 8 at (4, 4).
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x");
    let y = m.add_nonneg("y");
    for i in 0..12 {
        let w = 1.0 + i as f64 * 0.125;
        m.add_constr(format!("fan{i}"), x * w + y * (2.0 - w), Cmp::Le, 8.0);
    }
    m.add_constr("cap", x + y, Cmp::Le, 8.0);
    m.set_objective(x + y);
    assert_pinned(&m, 8.0, "degenerate-fan");
}
