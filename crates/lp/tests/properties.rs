//! Property-based tests for the LP/MILP solver.
//!
//! Invariants checked:
//! * every returned solution is feasible for the model it came from;
//! * the reported LP optimum is at least as good as any feasible point we
//!   can construct by sampling;
//! * the MILP optimum matches brute-force enumeration on small binary
//!   models;
//! * the LP relaxation bound dominates the MILP optimum.

use proptest::prelude::*;
use xplain_lp::{Cmp, LinExpr, LpError, Model, Sense, VarType};

/// Build a random bounded LP: n vars in [0, ub], m "<=" constraints with
/// nonnegative coefficients (always feasible at the origin, never unbounded
/// because each variable is capped).
fn bounded_lp(
    n: usize,
    coefs: &[Vec<f64>],
    rhs: &[f64],
    obj: &[f64],
    ub: f64,
) -> (Model, Vec<xplain_lp::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, ub))
        .collect();
    for (k, row) in coefs.iter().enumerate() {
        let mut e = LinExpr::new();
        for (i, &c) in row.iter().enumerate() {
            e.add_term(vars[i], c);
        }
        m.add_constr(format!("c{k}"), e, Cmp::Le, rhs[k]);
    }
    let mut o = LinExpr::new();
    for (i, &c) in obj.iter().enumerate() {
        o.add_term(vars[i], c);
    }
    m.set_objective(o);
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solution_is_feasible_and_dominant(
        n in 1usize..6,
        mrows in 1usize..5,
        seedcoefs in proptest::collection::vec(0.0f64..3.0, 36),
        rhs in proptest::collection::vec(0.5f64..10.0, 6),
        obj in proptest::collection::vec(-2.0f64..4.0, 6),
        sample in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let coefs: Vec<Vec<f64>> = (0..mrows)
            .map(|k| (0..n).map(|i| seedcoefs[k * 6 + i]).collect())
            .collect();
        let (m, _) = bounded_lp(n, &coefs, &rhs, &obj[..n], 5.0);
        let sol = m.solve().expect("bounded LP must solve");

        // Feasibility of the returned point.
        prop_assert!(m.check_feasible(&sol.values, 1e-6).is_none(),
            "infeasible solution: {:?}", m.check_feasible(&sol.values, 1e-6));

        // Dominance: scale a random sample into the feasible region and
        // compare objectives.
        let mut point: Vec<f64> = sample[..n].iter().map(|s| s * 5.0).collect();
        // Shrink until feasible (coefficients are nonnegative so scaling
        // toward the origin preserves feasibility).
        for _ in 0..60 {
            if m.check_feasible(&point, 1e-9).is_none() { break; }
            for p in point.iter_mut() { *p *= 0.7; }
        }
        if m.check_feasible(&point, 1e-9).is_none() {
            let obj_at_point = m.objective().eval(&point);
            prop_assert!(sol.objective >= obj_at_point - 1e-6,
                "optimum {} beaten by sampled point {}", sol.objective, obj_at_point);
        }
    }

    #[test]
    fn milp_matches_brute_force_binary(
        n in 1usize..5,
        weights in proptest::collection::vec(0.1f64..4.0, 5),
        values in proptest::collection::vec(-1.0f64..5.0, 5),
        cap in 1.0f64..8.0,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for i in 0..n {
            w.add_term(vars[i], weights[i]);
            o.add_term(vars[i], values[i]);
        }
        m.add_constr("cap", w, Cmp::Le, cap);
        m.set_objective(o);
        let sol = m.solve().expect("feasible: all-zeros works");

        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let (mut tw, mut tv) = (0.0, 0.0);
            for i in 0..n {
                if mask >> i & 1 == 1 { tw += weights[i]; tv += values[i]; }
            }
            if tw <= cap + 1e-9 { best = best.max(tv); }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "milp {} vs brute force {}", sol.objective, best);
    }

    #[test]
    fn relaxation_bounds_milp(
        n in 1usize..5,
        weights in proptest::collection::vec(0.5f64..4.0, 5),
        values in proptest::collection::vec(0.0f64..5.0, 5),
        cap in 1.0f64..8.0,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for i in 0..n {
            w.add_term(vars[i], weights[i]);
            o.add_term(vars[i], values[i]);
        }
        m.add_constr("cap", w, Cmp::Le, cap);
        m.set_objective(o);
        let milp = m.solve().expect("feasible");
        let relax = m.solve_relaxation().expect("feasible");
        prop_assert!(relax.objective >= milp.objective - 1e-6,
            "relaxation {} below MILP {}", relax.objective, milp.objective);
    }

    #[test]
    fn infeasible_never_returns_solution(
        lo in 1.0f64..5.0,
    ) {
        // x in [0, lo], require x >= lo + 1: always infeasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, lo);
        m.add_constr("impossible", LinExpr::term(x, 1.0), Cmp::Ge, lo + 1.0);
        m.set_objective(LinExpr::term(x, 1.0));
        prop_assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn equality_systems_roundtrip(
        a in 0.5f64..3.0,
        b in 0.5f64..3.0,
        target in 1.0f64..6.0,
    ) {
        // a*x + b*y = target with x = y enforced -> x = target / (a + b).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        let mut e = LinExpr::new();
        e.add_term(x, a);
        e.add_term(y, b);
        m.add_constr("sum", e, Cmp::Eq, target);
        m.add_constr("eq", x - y, Cmp::Eq, 0.0);
        m.set_objective(x + y);
        let s = m.solve().expect("consistent system");
        let expect = target / (a + b);
        prop_assert!((s.value(x) - expect).abs() < 1e-6);
        prop_assert!((s.value(y) - expect).abs() < 1e-6);
    }
}
