//! Property-based tests for the LP/MILP solver.
//!
//! Invariants checked:
//! * every returned solution is feasible for the model it came from;
//! * the reported LP optimum is at least as good as any feasible point we
//!   can construct by sampling;
//! * the sparse-factorization revised engine agrees with the reference
//!   tableau on random models;
//! * a probe batch equals the same probes solved independently,
//!   byte-for-byte;
//! * the MILP optimum matches brute-force enumeration on small binary
//!   models;
//! * the LP relaxation bound dominates the MILP optimum.

use proptest::prelude::*;
use xplain_lp::{
    simplex, Cmp, LinExpr, LpError, Model, Prepared, Probe, Sense, SolverSession, VarType,
};

/// Build a random bounded LP: n vars in [0, ub], m "<=" constraints with
/// nonnegative coefficients (always feasible at the origin, never unbounded
/// because each variable is capped).
fn bounded_lp(
    n: usize,
    coefs: &[Vec<f64>],
    rhs: &[f64],
    obj: &[f64],
    ub: f64,
) -> (Model, Vec<xplain_lp::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, ub))
        .collect();
    for (k, row) in coefs.iter().enumerate() {
        let mut e = LinExpr::new();
        for (i, &c) in row.iter().enumerate() {
            e.add_term(vars[i], c);
        }
        m.add_constr(format!("c{k}"), e, Cmp::Le, rhs[k]);
    }
    let mut o = LinExpr::new();
    for (i, &c) in obj.iter().enumerate() {
        o.add_term(vars[i], c);
    }
    m.set_objective(o);
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solution_is_feasible_and_dominant(
        n in 1usize..6,
        mrows in 1usize..5,
        seedcoefs in proptest::collection::vec(0.0f64..3.0, 36),
        rhs in proptest::collection::vec(0.5f64..10.0, 6),
        obj in proptest::collection::vec(-2.0f64..4.0, 6),
        sample in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let coefs: Vec<Vec<f64>> = (0..mrows)
            .map(|k| (0..n).map(|i| seedcoefs[k * 6 + i]).collect())
            .collect();
        let (m, _) = bounded_lp(n, &coefs, &rhs, &obj[..n], 5.0);
        let sol = m.solve().expect("bounded LP must solve");

        // Feasibility of the returned point.
        prop_assert!(m.check_feasible(&sol.values, 1e-6).is_none(),
            "infeasible solution: {:?}", m.check_feasible(&sol.values, 1e-6));

        // Dominance: scale a random sample into the feasible region and
        // compare objectives.
        let mut point: Vec<f64> = sample[..n].iter().map(|s| s * 5.0).collect();
        // Shrink until feasible (coefficients are nonnegative so scaling
        // toward the origin preserves feasibility).
        for _ in 0..60 {
            if m.check_feasible(&point, 1e-9).is_none() { break; }
            for p in point.iter_mut() { *p *= 0.7; }
        }
        if m.check_feasible(&point, 1e-9).is_none() {
            let obj_at_point = m.objective().eval(&point);
            prop_assert!(sol.objective >= obj_at_point - 1e-6,
                "optimum {} beaten by sampled point {}", sol.objective, obj_at_point);
        }
    }

    #[test]
    fn revised_agrees_with_reference(
        n in 1usize..6,
        mrows in 1usize..5,
        seedcoefs in proptest::collection::vec(0.0f64..3.0, 36),
        rhs in proptest::collection::vec(0.5f64..10.0, 6),
        obj in proptest::collection::vec(-2.0f64..4.0, 6),
    ) {
        // The sparse-LU product-form engine and the dense reference
        // tableau must find the same optimum on any of these (always
        // feasible, always bounded) models.
        let coefs: Vec<Vec<f64>> = (0..mrows)
            .map(|k| (0..n).map(|i| seedcoefs[k * 6 + i]).collect())
            .collect();
        let (m, _) = bounded_lp(n, &coefs, &rhs, &obj[..n], 5.0);
        let revised = simplex::solve(&m).expect("bounded LP must solve");
        let reference = simplex::reference::solve(&m).expect("bounded LP must solve");
        prop_assert!((revised.objective - reference.objective).abs() < 1e-6,
            "revised {} vs reference {}", revised.objective, reference.objective);
        prop_assert!(m.check_feasible(&revised.values, 1e-6).is_none(),
            "revised point infeasible: {:?}", m.check_feasible(&revised.values, 1e-6));
    }

    #[test]
    fn batched_probes_match_independent_prepared_solves(
        n in 1usize..5,
        mrows in 1usize..4,
        seedcoefs in proptest::collection::vec(0.0f64..3.0, 24),
        rhs in proptest::collection::vec(0.5f64..10.0, 3),
        obj in proptest::collection::vec(-2.0f64..4.0, 4),
        probe_rhs in proptest::collection::vec(0.5f64..10.0, 18),
        probe_ub in proptest::collection::vec(0.5f64..5.0, 24),
    ) {
        // `solve_batch` must be indistinguishable — bit for bit — from
        // applying each probe's deltas by hand and solving through a
        // session with the same warm history.
        let coefs: Vec<Vec<f64>> = (0..mrows)
            .map(|k| (0..n).map(|i| seedcoefs[k * 6 + i]).collect())
            .collect();
        let (m, vars) = bounded_lp(n, &coefs, &rhs, &obj[..n], 5.0);
        let base = Prepared::new(&m).expect("valid model");
        let probes: Vec<Probe> = (0..6)
            .map(|p| Probe {
                rhs: (0..mrows).map(|k| (k, probe_rhs[p * mrows + k])).collect(),
                bounds: vec![(vars[p % n], 0.0, probe_ub[p * n % probe_ub.len()])],
            })
            .collect();

        let mut prep = base.clone();
        let mut session_a = SolverSession::new();
        let batch = session_a.solve_batch(&mut prep, &probes);

        let mut session_b = SolverSession::new();
        for (probe, out) in probes.iter().zip(&batch) {
            let mut edited = base.clone();
            for &(v, lo, hi) in &probe.bounds { edited.set_var_bounds(v, lo, hi); }
            for &(row, v) in &probe.rhs { edited.set_rhs(row, v); }
            let independent = session_b.solve_prepared(&edited);
            match (out, &independent) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.objective.to_bits(), b.objective.to_bits(),
                        "objective bits differ: {} vs {}", a.objective, b.objective);
                    prop_assert_eq!(a.values.len(), b.values.len());
                    for (x, y) in a.values.iter().zip(&b.values) {
                        prop_assert_eq!(x.to_bits(), y.to_bits(),
                            "value bits differ: {} vs {}", x, y);
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "batch {:?} vs independent {:?}", a, b),
            }
        }
        // The batch must leave the prepared model as it found it.
        prop_assert_eq!(prep.rhs(0).to_bits(), base.rhs(0).to_bits());
    }

    #[test]
    fn milp_matches_brute_force_binary(
        n in 1usize..5,
        weights in proptest::collection::vec(0.1f64..4.0, 5),
        values in proptest::collection::vec(-1.0f64..5.0, 5),
        cap in 1.0f64..8.0,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for i in 0..n {
            w.add_term(vars[i], weights[i]);
            o.add_term(vars[i], values[i]);
        }
        m.add_constr("cap", w, Cmp::Le, cap);
        m.set_objective(o);
        let sol = m.solve().expect("feasible: all-zeros works");

        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let (mut tw, mut tv) = (0.0, 0.0);
            for i in 0..n {
                if mask >> i & 1 == 1 { tw += weights[i]; tv += values[i]; }
            }
            if tw <= cap + 1e-9 { best = best.max(tv); }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "milp {} vs brute force {}", sol.objective, best);
    }

    #[test]
    fn relaxation_bounds_milp(
        n in 1usize..5,
        weights in proptest::collection::vec(0.5f64..4.0, 5),
        values in proptest::collection::vec(0.0f64..5.0, 5),
        cap in 1.0f64..8.0,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for i in 0..n {
            w.add_term(vars[i], weights[i]);
            o.add_term(vars[i], values[i]);
        }
        m.add_constr("cap", w, Cmp::Le, cap);
        m.set_objective(o);
        let milp = m.solve().expect("feasible");
        let relax = m.solve_relaxation().expect("feasible");
        prop_assert!(relax.objective >= milp.objective - 1e-6,
            "relaxation {} below MILP {}", relax.objective, milp.objective);
    }

    #[test]
    fn infeasible_never_returns_solution(
        lo in 1.0f64..5.0,
    ) {
        // x in [0, lo], require x >= lo + 1: always infeasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, lo);
        m.add_constr("impossible", LinExpr::term(x, 1.0), Cmp::Ge, lo + 1.0);
        m.set_objective(LinExpr::term(x, 1.0));
        prop_assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn equality_systems_roundtrip(
        a in 0.5f64..3.0,
        b in 0.5f64..3.0,
        target in 1.0f64..6.0,
    ) {
        // a*x + b*y = target with x = y enforced -> x = target / (a + b).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        let mut e = LinExpr::new();
        e.add_term(x, a);
        e.add_term(y, b);
        m.add_constr("sum", e, Cmp::Eq, target);
        m.add_constr("eq", x - y, Cmp::Eq, 0.0);
        m.set_objective(x + y);
        let s = m.solve().expect("consistent system");
        let expect = target / (a + b);
        prop_assert!((s.value(x) - expect).abs() < 1e-6);
        prop_assert!((s.value(y) - expect).abs() < 1e-6);
    }
}
